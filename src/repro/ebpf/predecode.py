"""Load-time predecoding: lower ``Insn`` objects into a dispatch table.

The decode-per-step interpreter re-derives the instruction class, size
bits, source mode and sign extensions of every instruction *on every
execution* — pure overhead, since none of it changes after load.  This
pass runs once per program (and is cached content-addressed by the
loader, see :mod:`repro.ebpf.progcache`) and emits one flat tuple per
instruction slot with everything pre-resolved:

* opcode class and operation mapped to dense small-integer kinds the
  fast interpreter dispatches on with literal comparisons,
* memory access sizes in bytes, store width masks, and ``BPF_ST``
  immediate payloads rendered to their little-endian byte strings,
* jump targets as absolute instruction indices (plus a backward-edge
  flag, which the fast path uses as a virtual-clock flush point),
* ``ld_imm64`` constants fully materialised, including the
  ``BPF_PSEUDO_MAP_FD`` / ``BPF_PSEUDO_FUNC`` sentinels,
* immediates pre-sign-extended in both the unsigned and signed
  interpretations a conditional jump needs.

Every slot is decoded independently of control flow, exactly like the
decode-per-step path: jumping into the second half of an ``ld_imm64``
lands on whatever that slot decodes to, which is what makes the
hidden-instruction attack (and its verifier rejection) faithful.

Predecoding is purely mechanical — it proves nothing.  An unverified
program predecodes fine and still oopses the kernel at run time; the
table only removes interpretive overhead from the hot path (the same
move Rex/MOAT make by pushing checks to load time).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ebpf import isa
from repro.ebpf.isa import Insn, sign_extend, to_u64

#: sentinel base address for map references in registers
MAP_PTR_BASE = 0xFFFF_C900_0000_0000
#: sentinel base address for callback (func) references
FUNC_PTR_BASE = 0xFFFF_FFFF_A000_0000

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1

# -- slot kinds (dense ints; the fast interpreter compares literals) ----------
K_BAD = 0           # (K_BAD, message)
K_EXIT = 1          # (K_EXIT,)
K_JA = 2            # (K_JA, target, backward)
K_MOV64_K = 3       # (kind, dst, value_u64)
K_MOV64_X = 4       # (kind, dst, src)
K_MOV32_K = 5       # (kind, dst, value_u32)
K_MOV32_X = 6       # (kind, dst, src)
K_ALU64_K = 7       # (kind, op, dst, imm_u64)
K_ALU64_X = 8       # (kind, op, dst, src)
K_ALU32_K = 9       # (kind, op, dst, imm_u32)
K_ALU32_X = 10      # (kind, op, dst, src)
K_LD_IMM64 = 11     # (kind, dst, value, next_idx)
K_LDX = 12          # (kind, dst, src, off, size)
K_ST = 13           # (kind, dst, off, data_bytes)
K_STX = 14          # (kind, dst, src, off, size, mask)
K_ATOMIC = 15       # (kind, dst, src, off, size, imm)
K_JMP_K = 16        # (kind, op, dst, imm_u64, imm_s64, target, backward)
K_JMP_X = 17        # (kind, op, dst, src, target, backward)
K_JMP32_K = 18      # (kind, op, dst, imm_u32, imm_s32, target, backward)
K_JMP32_X = 19      # (kind, op, dst, src, target, backward)
K_CALL_HELPER = 20  # (kind, helper_id)
K_CALL_SUB = 21     # (kind, target)

# -- dense ALU operation ids --------------------------------------------------
A_ADD, A_SUB, A_MUL, A_DIV, A_MOD, A_OR, A_AND, A_XOR, \
    A_LSH, A_RSH, A_ARSH, A_NEG, A_MOV = range(13)

_ALU_REMAP = {
    isa.BPF_ADD: A_ADD, isa.BPF_SUB: A_SUB, isa.BPF_MUL: A_MUL,
    isa.BPF_DIV: A_DIV, isa.BPF_MOD: A_MOD, isa.BPF_OR: A_OR,
    isa.BPF_AND: A_AND, isa.BPF_XOR: A_XOR, isa.BPF_LSH: A_LSH,
    isa.BPF_RSH: A_RSH, isa.BPF_ARSH: A_ARSH, isa.BPF_NEG: A_NEG,
    isa.BPF_MOV: A_MOV,
}

# -- dense conditional-jump operation ids -------------------------------------
J_EQ, J_NE, J_GT, J_GE, J_LT, J_LE, J_SET, \
    J_SGT, J_SGE, J_SLT, J_SLE = range(11)

_JMP_REMAP = {
    isa.BPF_JEQ: J_EQ, isa.BPF_JNE: J_NE, isa.BPF_JGT: J_GT,
    isa.BPF_JGE: J_GE, isa.BPF_JLT: J_LT, isa.BPF_JLE: J_LE,
    isa.BPF_JSET: J_SET, isa.BPF_JSGT: J_SGT, isa.BPF_JSGE: J_SGE,
    isa.BPF_JSLT: J_SLT, isa.BPF_JSLE: J_SLE,
}


class PredecodedProgram:
    """One program lowered to a flat dispatch table."""

    __slots__ = ("slots", "n_insns")

    def __init__(self, slots: Tuple[tuple, ...]) -> None:
        self.slots = slots
        self.n_insns = len(slots)


def _decode_alu(insn: Insn, is64: bool) -> tuple:
    op = _ALU_REMAP.get(insn.opcode & isa.ALU_OP_MASK)
    if op is None:
        return (K_BAD,
                f"unsupported ALU op {insn.opcode & isa.ALU_OP_MASK:#x}")
    use_reg = bool(insn.opcode & isa.BPF_X)
    if op == A_MOV:
        if use_reg:
            return ((K_MOV64_X if is64 else K_MOV32_X),
                    insn.dst, insn.src)
        value = to_u64(insn.imm)
        if not is64:
            value &= U32
        return ((K_MOV64_K if is64 else K_MOV32_K), insn.dst, value)
    if use_reg:
        return ((K_ALU64_X if is64 else K_ALU32_X), op, insn.dst,
                insn.src)
    imm = to_u64(insn.imm)
    if not is64:
        imm &= U32
    return ((K_ALU64_K if is64 else K_ALU32_K), op, insn.dst, imm)


def _decode_jump(insn: Insn, idx: int, is32: bool) -> tuple:
    op = insn.opcode & isa.JMP_OP_MASK
    if op == isa.BPF_EXIT:
        return (K_EXIT,)
    if op == isa.BPF_JA:
        target = idx + insn.off + 1
        return (K_JA, target, target <= idx)
    if op == isa.BPF_CALL:
        if insn.src == isa.BPF_PSEUDO_CALL:
            return (K_CALL_SUB, idx + insn.imm + 1)
        return (K_CALL_HELPER, insn.imm)
    cond = _JMP_REMAP.get(op)
    if cond is None:
        return (K_BAD, f"unsupported jump op {op:#x}")
    target = idx + insn.off + 1
    backward = target <= idx
    use_reg = bool(insn.opcode & isa.BPF_X)
    if is32:
        if use_reg:
            return (K_JMP32_X, cond, insn.dst, insn.src, target,
                    backward)
        imm_u = to_u64(insn.imm) & U32
        return (K_JMP32_K, cond, insn.dst, imm_u,
                sign_extend(imm_u, 32), target, backward)
    if use_reg:
        return (K_JMP_X, cond, insn.dst, insn.src, target, backward)
    return (K_JMP_K, cond, insn.dst, to_u64(insn.imm), insn.imm,
            target, backward)


def _decode_one(insns: Sequence[Insn], idx: int) -> tuple:
    insn = insns[idx]
    cls = insn.opcode & isa.CLASS_MASK

    if insn.is_ld_imm64:
        if idx + 1 >= len(insns):
            # every ld_imm64 form occupies two slots — the pseudo
            # forms too, even though their second slot carries no bits
            return (K_BAD, f"incomplete ld_imm64 at {idx}")
        if insn.src == isa.BPF_PSEUDO_MAP_FD:
            value = MAP_PTR_BASE + insn.imm
        elif insn.src == isa.BPF_PSEUDO_FUNC:
            value = FUNC_PTR_BASE + (idx + insn.imm + 1)
        else:
            hi = insns[idx + 1].imm & 0xFFFFFFFF
            value = (hi << 32) | (insn.imm & 0xFFFFFFFF)
        return (K_LD_IMM64, insn.dst, value, idx + 2)

    if cls == isa.BPF_ALU64 or cls == isa.BPF_ALU:
        return _decode_alu(insn, cls == isa.BPF_ALU64)

    if cls == isa.BPF_LDX:
        return (K_LDX, insn.dst, insn.src, insn.off,
                isa.SIZE_BYTES[insn.opcode & isa.SIZE_MASK])

    if cls == isa.BPF_STX or cls == isa.BPF_ST:
        size = isa.SIZE_BYTES[insn.opcode & isa.SIZE_MASK]
        mask = (1 << (size * 8)) - 1
        if cls == isa.BPF_STX:
            if (insn.opcode & isa.MODE_MASK) == isa.BPF_ATOMIC:
                return (K_ATOMIC, insn.dst, insn.src, insn.off, size,
                        insn.imm)
            return (K_STX, insn.dst, insn.src, insn.off, size, mask)
        data = (to_u64(insn.imm) & mask).to_bytes(size, "little")
        return (K_ST, insn.dst, insn.off, data)

    if cls == isa.BPF_JMP or cls == isa.BPF_JMP32:
        return _decode_jump(insn, idx, cls == isa.BPF_JMP32)

    return (K_BAD, f"unsupported opcode {insn.opcode:#04x} at {idx}")


def predecode(insns: Sequence[Insn]) -> PredecodedProgram:
    """Lower a program to its dispatch table (one slot per insn)."""
    slots: List[tuple] = [_decode_one(insns, idx)
                          for idx in range(len(insns))]
    return PredecodedProgram(tuple(slots))
