"""eBPF maps: the data plane shared between extensions and userspace.

Maps are backed by real allocations in the simulated kernel address
space, so a map-value pointer returned by ``bpf_map_lookup_elem`` is a
genuine kernel address that bytecode can (mis)use — which is what makes
the array-map 32-bit-overflow bug [36] and the §2.2 attacks executable.

Error convention (uniform across map types): the runtime interface
never raises for runtime failures.  ``lookup_addr`` answers None on a
miss *or* any invalid key; ``update``/``delete`` answer 0 or a
negative errno (``-EINVAL`` malformed key/value, ``-E2BIG`` capacity,
``-ENOENT`` missing, ``-ENOMEM``/``-ENOSPC`` allocation).  Python
exceptions are reserved for construction-time geometry errors and
userspace setup APIs (``read_value``, ``set_prog``) where a bad
argument is a test bug, not a runtime condition.

Failpoints: ``map.lookup`` / ``map.update`` / ``map.delete`` fire at
operation entry; ``map.alloc`` fires where an operation would allocate
kernel memory (hash values, ringbuf records, task storage), so chaos
schedules can model allocator pressure separately from op failures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BpfRuntimeError, KernelOops
from repro.ebpf.bugs import BugConfig
from repro.kernel.kernel import Kernel
from repro.kernel.locks import SpinLock

BPF_MAP_TYPE_ARRAY = "array"
BPF_MAP_TYPE_PERCPU_ARRAY = "percpu_array"
BPF_MAP_TYPE_HASH = "hash"
BPF_MAP_TYPE_PERCPU_HASH = "percpu_hash"
BPF_MAP_TYPE_RINGBUF = "ringbuf"
BPF_MAP_TYPE_TASK_STORAGE = "task_storage"
BPF_MAP_TYPE_PROG_ARRAY = "prog_array"
BPF_MAP_TYPE_DEVMAP = "devmap"

# errno numbers (ops return the negative value, kernel-style)
ENOENT = 2
E2BIG = 7
ENOMEM = 12
EINVAL = 22
ENOSPC = 28


class BpfMap:
    """Base class for all map types."""

    map_type = "abstract"

    def __init__(self, kernel: Kernel, map_fd: int, key_size: int,
                 value_size: int, max_entries: int) -> None:
        if key_size < 0 or value_size <= 0 or max_entries <= 0:
            raise BpfRuntimeError(
                f"invalid map geometry: key={key_size} value={value_size} "
                f"entries={max_entries}")
        self.kernel = kernel
        self.map_fd = map_fd
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries
        #: optional embedded bpf_spin_lock (verifier tracks its use)
        self.spin_lock: Optional[SpinLock] = None

    def add_spin_lock(self) -> None:
        """Embed a ``bpf_spin_lock`` in the map values."""
        self.spin_lock = self.kernel.locks.create(
            f"map{self.map_fd}.lock")

    def destroy(self) -> None:
        """Release every backing kernel allocation (map teardown).

        The base implementation frees the common storage shapes
        (``storage``, ``per_cpu_storage``, ``_entries``); map types
        with extra state override and chain up.  Idempotent."""
        storage = getattr(self, "storage", None)
        if storage is not None and not storage.freed:
            self.kernel.mem.kfree(storage)
        for alloc in getattr(self, "per_cpu_storage", ()) or ():
            if not alloc.freed:
                self.kernel.mem.kfree(alloc)
        entries = getattr(self, "_entries", None)
        if isinstance(entries, dict):
            for alloc in entries.values():
                if not getattr(alloc, "freed", True):
                    self.kernel.mem.kfree(alloc)
            entries.clear()

    # interface used by helpers; addresses are kernel virtual addresses
    def lookup_addr(self, key: bytes) -> Optional[int]:
        """Address of the value for ``key``, or None."""
        raise NotImplementedError

    def update(self, key: bytes, value: bytes) -> int:
        """Insert/overwrite; returns 0 or negative errno."""
        raise NotImplementedError

    def delete(self, key: bytes) -> int:
        """Remove; returns 0 or negative errno."""
        raise NotImplementedError

    def _key_ok(self, key: bytes) -> bool:
        return len(key) == self.key_size

    def _smp_point(self, op: str) -> None:
        """Shared-map operations are cross-CPU interleaving points
        while a deterministic SMP run is active (one attribute test
        otherwise).  Crucially this fires *before* the operation
        resolves any per-CPU slot, so the executing CPU — which the
        schedule may just have changed via migration — is the one the
        access lands on."""
        smp = self.kernel.smp
        if smp is not None:
            kind = op if "." in op else f"map.{op}"
            smp.yield_point(kind, f"map{self.map_fd}")

    def _fault(self, site: str) -> Optional[int]:
        """Consult the fault plane at a map failpoint.

        Returns the negative errno to fail with, or None to proceed.
        An injected panic oopses here, through the official path —
        only errno and delay make sense as *returned* map errors."""
        faults = self.kernel.faults
        if not faults.armed:
            return None
        action = faults.check(site)
        if action is None or action.kind == "delay":
            return None
        if action.kind == "panic":
            self.kernel.log.record_oops(
                self.kernel.clock.now_ns,
                f"injected panic in map{self.map_fd} {site}",
                category="fault-injection", source="bpf-map")
            raise KernelOops(
                f"injected panic in map{self.map_fd} {site}",
                source="bpf-map")
        return -action.errno


class ArrayMap(BpfMap):
    """Preallocated array map with u32 keys.

    The element-offset computation honours the
    ``array_map_32bit_overflow`` bug [36]: with the bug present the
    offset is computed modulo 2**32, so a huge ``index * value_size``
    product wraps and the returned pointer can fall outside the array.
    """

    map_type = BPF_MAP_TYPE_ARRAY

    def __init__(self, kernel: Kernel, map_fd: int, key_size: int,
                 value_size: int, max_entries: int,
                 bugs: Optional[BugConfig] = None) -> None:
        super().__init__(kernel, map_fd, key_size, value_size, max_entries)
        if key_size != 4:
            raise BpfRuntimeError("array map requires 4-byte keys")
        self._bugs = bugs or BugConfig()
        self.storage = kernel.mem.kmalloc(
            value_size * max_entries,
            type_name=f"array_map{map_fd}", owner="bpf-map")

    def element_offset(self, index: int) -> int:
        """Byte offset of element ``index`` — the buggy computation."""
        offset = index * self.value_size
        if self._bugs.array_map_32bit_overflow:
            # the [36] bug: 32-bit multiply on a 64-bit quantity
            offset &= 0xFFFFFFFF
        return offset

    def lookup_addr(self, key: bytes) -> Optional[int]:
        """See :meth:`BpfMap.lookup_addr`."""
        self._smp_point("lookup")
        if not self._key_ok(key) or self._fault("map.lookup"):
            return None
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            return None
        return self.storage.base + self.element_offset(index)

    def update(self, key: bytes, value: bytes) -> int:
        """See :meth:`BpfMap.update`."""
        self._smp_point("update")
        if not self._key_ok(key):
            return -EINVAL
        errno = self._fault("map.update")
        if errno:
            return errno
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            return -E2BIG
        if len(value) != self.value_size:
            return -EINVAL
        self.kernel.mem.write(
            self.storage.base + index * self.value_size, value)
        return 0

    def delete(self, key: bytes) -> int:
        """See :meth:`BpfMap.delete`."""
        return -EINVAL  # array elements cannot be deleted

    def read_value(self, index: int) -> bytes:
        """Userspace-style read of one element."""
        if not 0 <= index < self.max_entries:
            raise BpfRuntimeError(f"index {index} out of range")
        return self.kernel.mem.read(
            self.storage.base + index * self.value_size, self.value_size)


class PercpuArrayMap(BpfMap):
    """Per-CPU array: each CPU sees its own value slice, so updates
    need no synchronization — the idiom hot counters use."""

    map_type = BPF_MAP_TYPE_PERCPU_ARRAY

    def __init__(self, kernel: Kernel, map_fd: int, key_size: int,
                 value_size: int, max_entries: int) -> None:
        super().__init__(kernel, map_fd, key_size, value_size,
                         max_entries)
        if key_size != 4:
            raise BpfRuntimeError("percpu array requires 4-byte keys")
        self.per_cpu_storage = [
            kernel.mem.kmalloc(value_size * max_entries,
                               type_name=f"percpu_array{map_fd}",
                               owner=f"bpf-map:cpu{cpu.cpu_id}")
            for cpu in kernel.cpus
        ]

    def _slot_addr(self, index: int) -> int:
        """Slice of the *executing* CPU.  Only ever called after the
        operation's yield point fired, so the CPU consulted here is
        the one the schedule chose — a migration at the yield lands
        the access on the new CPU's slice, not the one current at
        program load or helper entry."""
        storage = self.per_cpu_storage[self.kernel.current_cpu.cpu_id]
        return storage.base + index * self.value_size

    def lookup_addr(self, key: bytes) -> Optional[int]:
        """See :meth:`BpfMap.lookup_addr`."""
        self._smp_point("lookup")
        if not self._key_ok(key) or self._fault("map.lookup"):
            return None
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            return None
        return self._slot_addr(index)

    def update(self, key: bytes, value: bytes) -> int:
        """See :meth:`BpfMap.update`."""
        self._smp_point("update")
        if not self._key_ok(key):
            return -EINVAL
        errno = self._fault("map.update")
        if errno:
            return errno
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            return -E2BIG
        if len(value) != self.value_size:
            return -EINVAL
        self.kernel.mem.write(self._slot_addr(index), value)
        return 0

    def delete(self, key: bytes) -> int:
        """See :meth:`BpfMap.delete`."""
        return -EINVAL

    def read_values(self, index: int) -> List[bytes]:
        """Userspace view: this element's value on every CPU."""
        if not 0 <= index < self.max_entries:
            raise BpfRuntimeError(f"index {index} out of range")
        return [
            self.kernel.mem.read(storage.base + index * self.value_size,
                                 self.value_size)
            for storage in self.per_cpu_storage
        ]

    def sum_u64(self, index: int) -> int:
        """Userspace aggregation across CPUs (8-byte values)."""
        return sum(int.from_bytes(raw[:8], "little")
                   for raw in self.read_values(index))


class HashMap(BpfMap):
    """Hash map: dynamically allocated values."""

    map_type = BPF_MAP_TYPE_HASH

    def __init__(self, kernel: Kernel, map_fd: int, key_size: int,
                 value_size: int, max_entries: int) -> None:
        super().__init__(kernel, map_fd, key_size, value_size, max_entries)
        self._entries: Dict[bytes, "Allocation"] = {}

    def lookup_addr(self, key: bytes) -> Optional[int]:
        """See :meth:`BpfMap.lookup_addr`."""
        self._smp_point("lookup")
        if not self._key_ok(key) or self._fault("map.lookup"):
            return None
        alloc = self._entries.get(key)
        return alloc.base if alloc is not None else None

    def update(self, key: bytes, value: bytes) -> int:
        """See :meth:`BpfMap.update`."""
        self._smp_point("update")
        if not self._key_ok(key):
            return -EINVAL
        errno = self._fault("map.update")
        if errno:
            return errno
        if len(value) != self.value_size:
            return -EINVAL
        alloc = self._entries.get(key)
        if alloc is None:
            if len(self._entries) >= self.max_entries:
                return -E2BIG
            errno = self._fault("map.alloc")
            if errno:
                return errno
            alloc = self.kernel.mem.kmalloc(
                self.value_size, type_name=f"hash_map{self.map_fd}_val",
                owner="bpf-map")
            self._entries[key] = alloc
        self.kernel.mem.write(alloc.base, value)
        return 0

    def delete(self, key: bytes) -> int:
        """See :meth:`BpfMap.delete`."""
        self._smp_point("delete")
        if not self._key_ok(key):
            return -EINVAL
        errno = self._fault("map.delete")
        if errno:
            return errno
        alloc = self._entries.pop(key, None)
        if alloc is None:
            return -ENOENT
        self.kernel.mem.kfree(alloc)
        return 0

    def read_value(self, key: bytes) -> Optional[bytes]:
        """Userspace-style read."""
        alloc = self._entries.get(key) if self._key_ok(key) else None
        if alloc is None:
            return None
        return self.kernel.mem.read(alloc.base, self.value_size)

    def __len__(self) -> int:
        return len(self._entries)


class PercpuHashMap(BpfMap):
    """Per-CPU hash map (``BPF_MAP_TYPE_PERCPU_HASH``): every key owns
    one value slice *per CPU*, and a program only ever touches the
    slice of the CPU it is executing on — resolved at the operation's
    yield point, exactly like :class:`PercpuArrayMap`, so a migration
    scheduled at the yield lands the access on the new CPU's slice."""

    map_type = BPF_MAP_TYPE_PERCPU_HASH

    def __init__(self, kernel: Kernel, map_fd: int, key_size: int,
                 value_size: int, max_entries: int) -> None:
        super().__init__(kernel, map_fd, key_size, value_size, max_entries)
        #: key -> one Allocation per CPU (index = cpu_id)
        self._entries: Dict[bytes, List["Allocation"]] = {}

    def _slices_for(self, key: bytes, create: bool) \
            -> Optional[List["Allocation"]]:
        slices = self._entries.get(key)
        if slices is None and create:
            if len(self._entries) >= self.max_entries:
                return None
            if self._fault("map.alloc"):
                return None
            slices = [
                self.kernel.mem.kmalloc(
                    self.value_size,
                    type_name=f"percpu_hash{self.map_fd}_val",
                    owner=f"bpf-map:cpu{cpu.cpu_id}")
                for cpu in self.kernel.cpus
            ]
            self._entries[key] = slices
        return slices

    def lookup_addr(self, key: bytes) -> Optional[int]:
        """See :meth:`BpfMap.lookup_addr` — the executing CPU's slice."""
        self._smp_point("lookup")
        if not self._key_ok(key) or self._fault("map.lookup"):
            return None
        slices = self._entries.get(key)
        if slices is None:
            return None
        return slices[self.kernel.current_cpu.cpu_id].base

    def update(self, key: bytes, value: bytes) -> int:
        """See :meth:`BpfMap.update` — writes the executing CPU's
        slice (other CPUs' slices are created zeroed on first insert,
        like the real map's percpu allocation)."""
        self._smp_point("update")
        if not self._key_ok(key):
            return -EINVAL
        errno = self._fault("map.update")
        if errno:
            return errno
        if len(value) != self.value_size:
            return -EINVAL
        slices = self._slices_for(key, create=True)
        if slices is None:
            return -E2BIG if len(self._entries) >= self.max_entries \
                else -ENOMEM
        self.kernel.mem.write(
            slices[self.kernel.current_cpu.cpu_id].base, value)
        return 0

    def delete(self, key: bytes) -> int:
        """See :meth:`BpfMap.delete` — drops every CPU's slice."""
        self._smp_point("delete")
        if not self._key_ok(key):
            return -EINVAL
        errno = self._fault("map.delete")
        if errno:
            return errno
        slices = self._entries.pop(key, None)
        if slices is None:
            return -ENOENT
        for alloc in slices:
            self.kernel.mem.kfree(alloc)
        return 0

    def read_values(self, key: bytes) -> Optional[List[bytes]]:
        """Userspace view: this key's value on every CPU."""
        slices = self._entries.get(key) if self._key_ok(key) else None
        if slices is None:
            return None
        return [self.kernel.mem.read(alloc.base, self.value_size)
                for alloc in slices]

    def sum_u64(self, key: bytes) -> int:
        """Userspace aggregation across CPUs (8-byte values)."""
        values = self.read_values(key)
        if values is None:
            return 0
        return sum(int.from_bytes(raw[:8], "little") for raw in values)

    def destroy(self) -> None:
        """See :meth:`BpfMap.destroy` — frees every CPU's slices."""
        for slices in self._entries.values():
            for alloc in slices:
                if not alloc.freed:
                    self.kernel.mem.kfree(alloc)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class RingBufMap(BpfMap):
    """Ring buffer for extension -> userspace streaming.

    Reservation lifecycle matches the kernel's: ``reserve`` hands out
    real kernel memory that stays live until the record is *consumed*
    — ``submit`` copies it into the record stream and frees the
    backing allocation, ``discard`` frees it and returns the space.
    ``-ENOSPC`` refusals are counted (``drops`` /``dropped_bytes``)
    and fed to the kernel's telemetry, and teardown releases any
    reservation an extension abandoned."""

    map_type = BPF_MAP_TYPE_RINGBUF

    def __init__(self, kernel: Kernel, map_fd: int,
                 max_entries: int) -> None:
        # ringbuf has no keys; value_size is a placeholder
        super().__init__(kernel, map_fd, 0, 8, max_entries)
        self.capacity_bytes = max_entries
        self._used = 0
        self._records: List[bytes] = []
        self._reserved: Dict[int, "Allocation"] = {}
        #: records refused with -ENOSPC since creation
        self.drops = 0
        #: bytes those refused records would have occupied
        self.dropped_bytes = 0

    def _note_drop(self, size: int) -> None:
        self.drops += 1
        self.dropped_bytes += size
        self.kernel.telemetry.record_ringbuf_drop(self.map_fd, size)

    def output(self, data: bytes) -> int:
        """Copy a record in; returns 0 or -ENOSPC (counted)."""
        self._smp_point("ringbuf.produce")
        errno = self._fault("map.alloc")
        if errno:
            self._note_drop(len(data))
            return -ENOSPC
        if self._used + len(data) > self.capacity_bytes:
            self._note_drop(len(data))
            return -ENOSPC
        self._records.append(data)
        self._used += len(data)
        return 0

    def output_batch(self, records: Sequence[bytes]) -> Tuple[int, int]:
        """Publish a burst of records; returns ``(accepted, refused)``.

        This is the data plane's per-poll flush: every per-CPU RX
        queue delivers its batch of PASS packets in one call.  The
        ENOSPC-exactness contract is the point of the method: *every*
        record of the batch is attempted, so a ring that fills (or a
        ``map.alloc`` fault that fires) mid-batch still counts each
        refused record individually in ``drops`` / ``dropped_bytes``
        and the kernel's telemetry — a caller that stopped at the
        first ``-ENOSPC`` would undercount drops by however much of
        the batch it never tried, and the drop counters would no
        longer reconcile against the producer's attempt counts.
        """
        accepted = 0
        refused = 0
        for record in records:
            if self.output(record) == 0:
                accepted += 1
            else:
                refused += 1
        return accepted, refused

    def reserve(self, size: int) -> Optional[int]:
        """Reserve a record, returning its kernel address (None on
        bad size or -ENOSPC, the latter counted as a drop)."""
        self._smp_point("ringbuf.produce")
        if size <= 0:
            return None
        if self._fault("map.alloc"):
            self._note_drop(size)
            return None
        if self._used + size > self.capacity_bytes:
            self._note_drop(size)
            return None
        alloc = self.kernel.mem.kmalloc(
            size, type_name=f"ringbuf{self.map_fd}_rec", owner="bpf-map")
        self._reserved[alloc.base] = alloc
        self._used += size
        return alloc.base

    def submit(self, addr: int) -> int:
        """Commit a reserved record: copy it into the stream and free
        the backing allocation."""
        alloc = self._reserved.pop(addr, None)
        if alloc is None:
            return -EINVAL
        self._records.append(
            self.kernel.mem.read(alloc.base, alloc.size))
        self.kernel.mem.kfree(alloc)
        return 0

    def discard(self, addr: int) -> int:
        """Abandon a reserved record: free the backing allocation and
        return its space to the ring."""
        alloc = self._reserved.pop(addr, None)
        if alloc is None:
            return -EINVAL
        self._used -= alloc.size
        self.kernel.mem.kfree(alloc)
        return 0

    def outstanding_reservations(self) -> int:
        """Reservations neither submitted nor discarded yet."""
        return len(self._reserved)

    def drain(self) -> List[bytes]:
        """Userspace consumes all records."""
        records, self._records = self._records, []
        self._used = sum(a.size for a in self._reserved.values())
        return records

    def destroy(self) -> None:
        """See :meth:`BpfMap.destroy` — also frees any outstanding
        reservations (the leak this method exists to prevent)."""
        for alloc in self._reserved.values():
            if not alloc.freed:
                self.kernel.mem.kfree(alloc)
        self._reserved.clear()
        self._records.clear()
        self._used = 0
        super().destroy()

    def lookup_addr(self, key: bytes) -> Optional[int]:
        """See :meth:`BpfMap.lookup_addr`."""
        return None

    def update(self, key: bytes, value: bytes) -> int:
        """See :meth:`BpfMap.update`."""
        return -EINVAL

    def delete(self, key: bytes) -> int:
        """See :meth:`BpfMap.delete`."""
        return -EINVAL


class PerfEventArrayMap(BpfMap):
    """Perf-event buffer for ``bpf_perf_event_output``.

    Unlike the single shared ring it used to inherit, this is an
    honest per-CPU structure: each CPU owns an independent record
    stream of ``max_entries`` bytes (the per-CPU mmap'd buffer of the
    real ``BPF_MAP_TYPE_PERF_EVENT_ARRAY``), records land on whichever
    CPU the program is running on, and a reader that falls behind
    loses records on *that* CPU only — counted per CPU, like the perf
    buffer's lost-sample records."""

    map_type = "perf_event_array"

    def __init__(self, kernel: Kernel, map_fd: int,
                 max_entries: int) -> None:
        super().__init__(kernel, map_fd, 0, 8, max_entries)
        self.capacity_bytes = max_entries
        ncpu = len(kernel.cpus)
        self._cpu_records: List[List[bytes]] = [[] for _ in range(ncpu)]
        self._cpu_used: List[int] = [0] * ncpu
        #: per-CPU counts of records refused with -ENOSPC
        self.cpu_drops: List[int] = [0] * ncpu

    def output(self, data: bytes) -> int:
        """Append a record to the running CPU's stream; returns 0 or
        -ENOSPC (counted against that CPU)."""
        cpu = self.kernel.current_cpu.cpu_id
        if self._fault("map.alloc") \
                or self._cpu_used[cpu] + len(data) > self.capacity_bytes:
            self.cpu_drops[cpu] += 1
            self.kernel.telemetry.record_ringbuf_drop(
                self.map_fd, len(data), cpu=cpu)
            return -ENOSPC
        self._cpu_records[cpu].append(data)
        self._cpu_used[cpu] += len(data)
        return 0

    def records_for_cpu(self, cpu_id: int) -> List[bytes]:
        """Peek at one CPU's pending records (no consumption)."""
        return list(self._cpu_records[cpu_id])

    def drain(self, cpu_id: Optional[int] = None) -> List[bytes]:
        """Consume pending records — one CPU's stream, or (default)
        every CPU's in CPU order."""
        cpus = range(len(self._cpu_records)) if cpu_id is None \
            else (cpu_id,)
        out: List[bytes] = []
        for cpu in cpus:
            out.extend(self._cpu_records[cpu])
            self._cpu_records[cpu] = []
            self._cpu_used[cpu] = 0
        return out

    def lookup_addr(self, key: bytes) -> Optional[int]:
        """See :meth:`BpfMap.lookup_addr`."""
        return None

    def update(self, key: bytes, value: bytes) -> int:
        """See :meth:`BpfMap.update`."""
        return -EINVAL

    def delete(self, key: bytes) -> int:
        """See :meth:`BpfMap.delete`."""
        return -EINVAL


class TaskStorageMap(BpfMap):
    """Per-task local storage (``BPF_MAP_TYPE_TASK_STORAGE``)."""

    map_type = BPF_MAP_TYPE_TASK_STORAGE

    def __init__(self, kernel: Kernel, map_fd: int,
                 value_size: int) -> None:
        super().__init__(kernel, map_fd, 8, value_size, 4096)
        self._by_task_addr: Dict[int, "Allocation"] = {}

    def storage_for(self, task_addr: int, create: bool) -> Optional[int]:
        """Address of this task's storage; optionally create it."""
        alloc = self._by_task_addr.get(task_addr)
        if alloc is None and create:
            if self._fault("map.alloc"):
                return None
            alloc = self.kernel.mem.kmalloc(
                self.value_size,
                type_name=f"task_storage{self.map_fd}", owner="bpf-map")
            self._by_task_addr[task_addr] = alloc
        return alloc.base if alloc is not None else None

    def delete_for(self, task_addr: int) -> int:
        """Drop this task's storage."""
        alloc = self._by_task_addr.pop(task_addr, None)
        if alloc is None:
            return -ENOENT
        self.kernel.mem.kfree(alloc)
        return 0

    def destroy(self) -> None:
        """See :meth:`BpfMap.destroy` — frees every task's slot."""
        for alloc in self._by_task_addr.values():
            if not alloc.freed:
                self.kernel.mem.kfree(alloc)
        self._by_task_addr.clear()
        super().destroy()

    def lookup_addr(self, key: bytes) -> Optional[int]:
        """See :meth:`BpfMap.lookup_addr`."""
        if not self._key_ok(key) or self._fault("map.lookup"):
            return None
        return self.storage_for(int.from_bytes(key, "little"), False)

    def update(self, key: bytes, value: bytes) -> int:
        """See :meth:`BpfMap.update`."""
        if not self._key_ok(key):
            return -EINVAL
        errno = self._fault("map.update")
        if errno:
            return errno
        if len(value) != self.value_size:
            return -EINVAL
        addr = self.storage_for(int.from_bytes(key, "little"), True)
        if addr is None:
            return -ENOMEM
        self.kernel.mem.write(addr, value)
        return 0

    def delete(self, key: bytes) -> int:
        """See :meth:`BpfMap.delete`."""
        if not self._key_ok(key):
            return -EINVAL
        errno = self._fault("map.delete")
        if errno:
            return errno
        return self.delete_for(int.from_bytes(key, "little"))


class ProgArrayMap(BpfMap):
    """Program array for ``bpf_tail_call`` [44]."""

    map_type = BPF_MAP_TYPE_PROG_ARRAY

    def __init__(self, kernel: Kernel, map_fd: int,
                 max_entries: int) -> None:
        super().__init__(kernel, map_fd, 4, 4, max_entries)
        self._progs: Dict[int, object] = {}  # index -> LoadedProgram

    def set_prog(self, index: int, prog: object) -> None:
        """Install a program at ``index``."""
        if not 0 <= index < self.max_entries:
            raise BpfRuntimeError(f"prog array index {index} out of range")
        self._progs[index] = prog

    def get_prog(self, index: int) -> Optional[object]:
        """The program at ``index``, if any."""
        return self._progs.get(index)

    def lookup_addr(self, key: bytes) -> Optional[int]:
        """See :meth:`BpfMap.lookup_addr`."""
        return None

    def update(self, key: bytes, value: bytes) -> int:
        """See :meth:`BpfMap.update`."""
        return -EINVAL

    def delete(self, key: bytes) -> int:
        """See :meth:`BpfMap.delete`."""
        if not self._key_ok(key):
            return -EINVAL
        index = int.from_bytes(key, "little")
        return 0 if self._progs.pop(index, None) is not None else -ENOENT


class DevMap(BpfMap):
    """Device map (``BPF_MAP_TYPE_DEVMAP``): u32 index -> ifindex.

    The redirect table of the XDP data plane: userspace populates it
    with NIC ifindexes and programs pick a slot via
    ``bpf_redirect_map``.  Entries live in real kernel storage (an
    array of u32 slots; 0 means empty) so programs could in principle
    read them — but the interesting consumer is the data plane, which
    resolves the ifindex stashed by the redirect helper against its
    device registry *after* the program returns, exactly like
    ``xdp_do_redirect`` runs after the program's verdict."""

    map_type = BPF_MAP_TYPE_DEVMAP

    def __init__(self, kernel: Kernel, map_fd: int,
                 max_entries: int) -> None:
        super().__init__(kernel, map_fd, 4, 4, max_entries)
        self.storage = kernel.mem.kmalloc(
            4 * max_entries, type_name=f"devmap{map_fd}",
            owner="bpf-map")

    def set_target(self, index: int, ifindex: int) -> None:
        """Userspace-style install of a redirect target."""
        errno = self.update(index.to_bytes(4, "little"),
                            ifindex.to_bytes(4, "little"))
        if errno:
            raise BpfRuntimeError(
                f"devmap{self.map_fd}: set_target({index}) "
                f"failed with {errno}")

    def target(self, index: int) -> Optional[int]:
        """The ifindex at ``index`` (None when empty / out of range)."""
        if not 0 <= index < self.max_entries:
            return None
        raw = self.kernel.mem.read(self.storage.base + 4 * index, 4)
        ifindex = int.from_bytes(raw, "little")
        return ifindex if ifindex else None

    def lookup_addr(self, key: bytes) -> Optional[int]:
        """See :meth:`BpfMap.lookup_addr`."""
        if not self._key_ok(key) or self._fault("map.lookup"):
            return None
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            return None
        return self.storage.base + 4 * index

    def update(self, key: bytes, value: bytes) -> int:
        """See :meth:`BpfMap.update`."""
        if not self._key_ok(key) or len(value) != self.value_size:
            return -EINVAL
        errno = self._fault("map.update")
        if errno:
            return errno
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            return -E2BIG
        self.kernel.mem.write(self.storage.base + 4 * index, value)
        return 0

    def delete(self, key: bytes) -> int:
        """See :meth:`BpfMap.delete`."""
        if not self._key_ok(key):
            return -EINVAL
        errno = self._fault("map.delete")
        if errno:
            return errno
        index = int.from_bytes(key, "little")
        if index >= self.max_entries:
            return -ENOENT
        self.kernel.mem.write(self.storage.base + 4 * index, b"\x00" * 4)
        return 0
