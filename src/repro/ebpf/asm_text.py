"""Text-format eBPF assembler.

Parses the same surface syntax the disassembler emits (bpftool-style),
so programs can be written as text, and ``disasm`` output round-trips::

    prog = assemble_text('''
        r0 = 0
        if r1 != 0 goto +2
        r0 = 2
        exit
        r0 = 1
        exit
    ''')

Supported forms:

* ``rD = IMM`` / ``rD = rS`` / ``rD OP= IMM`` / ``rD OP= rS``
  (64-bit ALU; OP in + - * / % & | ^ << >> s>>),
* ``rD = -rD`` (negation),
* ``rD = IMM ll`` (64-bit immediate), ``rD = map_fd[N]``,
* ``rD = *(u8|u16|u32|u64 *)(rS +OFF)`` and the store forms,
* ``if rD CMP (rS|IMM) goto (+N|-N|label)``, ``goto ...``,
* ``call helper#N`` / ``call N``, ``exit``,
* ``label:`` lines and ``; comments``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.ebpf import isa
from repro.ebpf.asm import Asm
from repro.errors import InvalidProgram

_SIZES = {"u8": 1, "u16": 2, "u32": 4, "u64": 8}

_ALU_SYMBOL_OPS = {
    "+=": "add", "-=": "sub", "*=": "mul", "/=": "div", "%=": "mod",
    "&=": "and", "|=": "or", "^=": "xor", "<<=": "lsh", ">>=": "rsh",
    "s>>=": "arsh",
}

_CMP_OPS = {
    "==": "jeq", "!=": "jne", ">": "jgt", ">=": "jge",
    "<": "jlt", "<=": "jle", "s>": "jsgt", "s>=": "jsge",
    "s<": "jslt", "s<=": "jsle", "&": "jset",
}

_REG = r"r(\d+)"
_IMM = r"(-?(?:0x[0-9a-fA-F]+|\d+))"
_TARGET = r"([+-]\d+|\w+)"

_PATTERNS: List[Tuple[re.Pattern, str]] = [
    (re.compile(rf"^lock \*\((u32|u64) \*\)\({_REG} ([+-]\d+)\)"
                rf" \+= {_REG}$"), "atomic_add"),
    (re.compile(rf"^if w(\d+) (s>=|s<=|s>|s<|==|!=|>=|<=|>|<|&) "
                rf"w(\d+) goto {_TARGET}$"), "jmp32_reg"),
    (re.compile(rf"^if w(\d+) (s>=|s<=|s>|s<|==|!=|>=|<=|>|<|&) "
                rf"{_IMM} goto {_TARGET}$"), "jmp32_imm"),
    (re.compile(rf"^{_REG} = \*\((u8|u16|u32|u64) \*\)"
                rf"\({_REG} ([+-]\d+)\)$"), "load"),
    (re.compile(rf"^\*\((u8|u16|u32|u64) \*\)\({_REG} ([+-]\d+)\)"
                rf" = {_REG}$"), "store_reg"),
    (re.compile(rf"^\*\((u8|u16|u32|u64) \*\)\({_REG} ([+-]\d+)\)"
                rf" = {_IMM}$"), "store_imm"),
    (re.compile(rf"^{_REG} = {_IMM} ll$"), "ld64"),
    (re.compile(rf"^{_REG} = map_fd\[(\d+)\]$"), "ld_map"),
    (re.compile(rf"^{_REG} = -r(\d+)$"), "neg"),
    (re.compile(rf"^{_REG} = {_REG}$"), "mov_reg"),
    (re.compile(rf"^{_REG} = {_IMM}$"), "mov_imm"),
    (re.compile(rf"^{_REG} (s>>=|<<=|>>=|[-+*/%&|^]=) {_REG}$"),
     "alu_reg"),
    (re.compile(rf"^{_REG} (s>>=|<<=|>>=|[-+*/%&|^]=) {_IMM}$"),
     "alu_imm"),
    (re.compile(rf"^if {_REG} (s>=|s<=|s>|s<|==|!=|>=|<=|>|<|&) "
                rf"{_REG} goto {_TARGET}$"), "jmp_reg"),
    (re.compile(rf"^if {_REG} (s>=|s<=|s>|s<|==|!=|>=|<=|>|<|&) "
                rf"{_IMM} goto {_TARGET}$"), "jmp_imm"),
    (re.compile(rf"^goto {_TARGET}$"), "ja"),
    (re.compile(r"^call helper#(\d+)$"), "call"),
    (re.compile(r"^call (\d+)$"), "call"),
    (re.compile(r"^exit$"), "exit"),
]

_LABEL = re.compile(r"^(\w+):$")


def _to_int(text: str) -> int:
    return int(text, 0)


def _target(asm_target: str):
    """A '+N'/'-N' relative offset or a label name."""
    if asm_target[0] in "+-":
        return int(asm_target)
    return asm_target


def assemble_text(source: str) -> List[isa.Insn]:
    """Assemble a text program into instructions."""
    asm = Asm()
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";")[0].strip()
        # normalize instruction-index prefixes from disasm output
        line = re.sub(r"^\d+:\s*", "", line)
        if not line:
            continue
        label_match = _LABEL.match(line)
        if label_match:
            asm.label(label_match.group(1))
            continue
        for pattern, kind in _PATTERNS:
            match = pattern.match(line)
            if match is None:
                continue
            groups = match.groups()
            if kind == "atomic_add":
                size, dst, off, src = groups
                asm.atomic_add(_SIZES[size], int(dst), int(off),
                               int(src))
            elif kind == "jmp32_reg":
                dst, op, src, target = groups
                asm.jmp32_reg(_CMP_OPS[op], int(dst), int(src),
                              _target(target))
            elif kind == "jmp32_imm":
                dst, op, imm, target = groups
                asm.jmp32_imm(_CMP_OPS[op], int(dst), _to_int(imm),
                              _target(target))
            elif kind == "load":
                dst, size, src, off = groups
                asm.ldx(_SIZES[size], int(dst), int(src), int(off))
            elif kind == "store_reg":
                size, dst, off, src = groups
                asm.stx(_SIZES[size], int(dst), int(off), int(src))
            elif kind == "store_imm":
                size, dst, off, imm = groups
                asm.st_imm(_SIZES[size], int(dst), int(off),
                           _to_int(imm))
            elif kind == "ld64":
                dst, imm = groups
                asm.ld_imm64(int(dst), _to_int(imm))
            elif kind == "ld_map":
                dst, fd = groups
                asm.ld_map_fd(int(dst), int(fd))
            elif kind == "neg":
                dst, src = groups
                if dst != src:
                    raise InvalidProgram(
                        f"line {line_no}: negation must be in-place")
                asm.neg64(int(dst))
            elif kind == "mov_reg":
                dst, src = groups
                asm.mov64_reg(int(dst), int(src))
            elif kind == "mov_imm":
                dst, imm = groups
                asm.mov64_imm(int(dst), _to_int(imm))
            elif kind == "alu_reg":
                dst, op, src = groups
                asm.alu64_reg(_ALU_SYMBOL_OPS[op], int(dst), int(src))
            elif kind == "alu_imm":
                dst, op, imm = groups
                asm.alu64_imm(_ALU_SYMBOL_OPS[op], int(dst),
                              _to_int(imm))
            elif kind == "jmp_reg":
                dst, op, src, target = groups
                asm.jmp_reg(_CMP_OPS[op], int(dst), int(src),
                            _target(target))
            elif kind == "jmp_imm":
                dst, op, imm, target = groups
                asm.jmp_imm(_CMP_OPS[op], int(dst), _to_int(imm),
                            _target(target))
            elif kind == "ja":
                asm.ja(_target(groups[0]))
            elif kind == "call":
                asm.call(int(groups[0]))
            elif kind == "exit":
                asm.exit_()
            break
        else:
            raise InvalidProgram(
                f"line {line_no}: cannot parse {line!r}")
    return asm.program()
