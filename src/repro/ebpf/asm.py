"""Program-builder assembler for eBPF bytecode.

The builder exposes one method per instruction form plus symbolic
labels, so tests, attacks and examples can write programs the way
kernel selftests do::

    asm = Asm()
    (asm
        .mov64_imm(R0, 0)
        .jmp_imm("jne", R1, 0, "nonzero")
        .exit_()
        .label("nonzero")
        .mov64_imm(R0, 1)
        .exit_())
    prog = asm.program()
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.ebpf import isa
from repro.ebpf.isa import Insn

LabelOrOff = Union[str, int]

_ALU_OPS = {
    "add": isa.BPF_ADD, "sub": isa.BPF_SUB, "mul": isa.BPF_MUL,
    "div": isa.BPF_DIV, "or": isa.BPF_OR, "and": isa.BPF_AND,
    "lsh": isa.BPF_LSH, "rsh": isa.BPF_RSH, "mod": isa.BPF_MOD,
    "xor": isa.BPF_XOR, "mov": isa.BPF_MOV, "arsh": isa.BPF_ARSH,
}

_JMP_OPS = {
    "jeq": isa.BPF_JEQ, "jgt": isa.BPF_JGT, "jge": isa.BPF_JGE,
    "jset": isa.BPF_JSET, "jne": isa.BPF_JNE, "jsgt": isa.BPF_JSGT,
    "jsge": isa.BPF_JSGE, "jlt": isa.BPF_JLT, "jle": isa.BPF_JLE,
    "jslt": isa.BPF_JSLT, "jsle": isa.BPF_JSLE,
}

_SIZES = {1: isa.BPF_B, 2: isa.BPF_H, 4: isa.BPF_W, 8: isa.BPF_DW}


class Asm:
    """Incremental eBPF program builder with label resolution."""

    def __init__(self) -> None:
        self._insns: List[Insn] = []
        self._labels: Dict[str, int] = {}
        # (insn index, label, field) triples awaiting resolution;
        # field is "off" for jumps, "imm" for pseudo call/func targets
        self._fixups: List[Tuple[int, str, str]] = []

    def __len__(self) -> int:
        return len(self._insns)

    # -- labels ---------------------------------------------------------------

    def label(self, name: str) -> "Asm":
        """Bind ``name`` to the next instruction's index."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insns)
        return self

    def _emit(self, insn: Insn) -> "Asm":
        self._insns.append(insn)
        return self

    def _emit_jump(self, opcode: int, dst: int, src: int, imm: int,
                   target: LabelOrOff) -> "Asm":
        if isinstance(target, str):
            self._fixups.append((len(self._insns), target, "off"))
            off = 0
        else:
            off = target
        return self._emit(Insn(opcode, dst, src, off, imm))

    # -- ALU ------------------------------------------------------------------

    def alu64_imm(self, op: str, dst: int, imm: int) -> "Asm":
        """64-bit ALU with immediate operand."""
        return self._emit(Insn(isa.BPF_ALU64 | _ALU_OPS[op] | isa.BPF_K,
                               dst, 0, 0, imm))

    def alu64_reg(self, op: str, dst: int, src: int) -> "Asm":
        """64-bit ALU with register operand."""
        return self._emit(Insn(isa.BPF_ALU64 | _ALU_OPS[op] | isa.BPF_X,
                               dst, src, 0, 0))

    def alu32_imm(self, op: str, dst: int, imm: int) -> "Asm":
        """32-bit ALU with immediate operand (zero-extends the result)."""
        return self._emit(Insn(isa.BPF_ALU | _ALU_OPS[op] | isa.BPF_K,
                               dst, 0, 0, imm))

    def alu32_reg(self, op: str, dst: int, src: int) -> "Asm":
        """32-bit ALU with register operand."""
        return self._emit(Insn(isa.BPF_ALU | _ALU_OPS[op] | isa.BPF_X,
                               dst, src, 0, 0))

    def mov64_imm(self, dst: int, imm: int) -> "Asm":
        """dst = imm (sign-extended to 64 bits)."""
        return self.alu64_imm("mov", dst, imm)

    def mov64_reg(self, dst: int, src: int) -> "Asm":
        """dst = src."""
        return self.alu64_reg("mov", dst, src)

    def neg64(self, dst: int) -> "Asm":
        """dst = -dst."""
        return self._emit(Insn(isa.BPF_ALU64 | isa.BPF_NEG, dst, 0, 0, 0))

    # -- memory ---------------------------------------------------------------

    def ld_imm64(self, dst: int, value: int) -> "Asm":
        """Two-slot 64-bit immediate load."""
        lo = value & 0xFFFFFFFF
        hi = (value >> 32) & 0xFFFFFFFF
        self._emit(Insn(isa.BPF_LD | isa.BPF_IMM | isa.BPF_DW,
                        dst, 0, 0, lo))
        return self._emit(Insn(0, 0, 0, 0, hi))

    def ld_map_fd(self, dst: int, map_fd: int) -> "Asm":
        """Load a map reference (``BPF_PSEUDO_MAP_FD``)."""
        self._emit(Insn(isa.BPF_LD | isa.BPF_IMM | isa.BPF_DW,
                        dst, isa.BPF_PSEUDO_MAP_FD, 0, map_fd))
        return self._emit(Insn(0, 0, 0, 0, 0))

    def ld_func(self, dst: int, target: LabelOrOff) -> "Asm":
        """Load a callback reference (``BPF_PSEUDO_FUNC``), e.g. the
        bpf_loop callback.  ``imm`` is relative to the next insn."""
        if isinstance(target, str):
            self._fixups.append((len(self._insns), target, "imm"))
            imm = 0
        else:
            imm = target
        self._emit(Insn(isa.BPF_LD | isa.BPF_IMM | isa.BPF_DW,
                        dst, isa.BPF_PSEUDO_FUNC, 0, imm))
        return self._emit(Insn(0, 0, 0, 0, 0))

    def ldx(self, size: int, dst: int, src: int, off: int) -> "Asm":
        """dst = *(size*)(src + off)."""
        return self._emit(Insn(isa.BPF_LDX | _SIZES[size] | isa.BPF_MEM,
                               dst, src, off, 0))

    def stx(self, size: int, dst: int, off: int, src: int) -> "Asm":
        """*(size*)(dst + off) = src."""
        return self._emit(Insn(isa.BPF_STX | _SIZES[size] | isa.BPF_MEM,
                               dst, src, off, 0))

    def st_imm(self, size: int, dst: int, off: int, imm: int) -> "Asm":
        """*(size*)(dst + off) = imm."""
        return self._emit(Insn(isa.BPF_ST | _SIZES[size] | isa.BPF_MEM,
                               dst, 0, off, imm))

    def atomic_add(self, size: int, dst: int, off: int,
                   src: int) -> "Asm":
        """Atomic ``*(size*)(dst + off) += src`` (XADD); size 4 or 8."""
        return self.atomic_op("add", size, dst, off, src)

    def atomic_op(self, op: str, size: int, dst: int, off: int,
                  src: int, *, fetch: bool = False) -> "Asm":
        """Atomic ``*(size*)(dst + off) <op>= src``; ``fetch`` also
        loads the old value into ``src``.  Ops: add/or/and/xor."""
        ops = {"add": isa.BPF_ADD, "or": isa.BPF_OR,
               "and": isa.BPF_AND, "xor": isa.BPF_XOR}
        if op not in ops:
            raise ValueError(f"unknown atomic op {op!r}")
        if size not in (4, 8):
            raise ValueError("atomic ops are 4 or 8 bytes")
        imm = ops[op] | (isa.BPF_FETCH if fetch else 0)
        return self._emit(Insn(
            isa.BPF_STX | _SIZES[size] | isa.BPF_ATOMIC,
            dst, src, off, imm))

    def atomic_xchg(self, size: int, dst: int, off: int,
                    src: int) -> "Asm":
        """Atomic exchange: old value lands in ``src``."""
        if size not in (4, 8):
            raise ValueError("atomic ops are 4 or 8 bytes")
        return self._emit(Insn(
            isa.BPF_STX | _SIZES[size] | isa.BPF_ATOMIC,
            dst, src, off, isa.BPF_XCHG))

    def atomic_cmpxchg(self, size: int, dst: int, off: int,
                       src: int) -> "Asm":
        """Atomic compare-exchange: R0 is the comparand and receives
        the old value; ``src`` is the replacement."""
        if size not in (4, 8):
            raise ValueError("atomic ops are 4 or 8 bytes")
        return self._emit(Insn(
            isa.BPF_STX | _SIZES[size] | isa.BPF_ATOMIC,
            dst, src, off, isa.BPF_CMPXCHG))

    # -- control flow -----------------------------------------------------------

    def ja(self, target: LabelOrOff) -> "Asm":
        """Unconditional jump."""
        return self._emit_jump(isa.BPF_JMP | isa.BPF_JA, 0, 0, 0, target)

    def jmp_imm(self, op: str, dst: int, imm: int,
                target: LabelOrOff) -> "Asm":
        """Conditional jump comparing ``dst`` with an immediate."""
        return self._emit_jump(isa.BPF_JMP | _JMP_OPS[op] | isa.BPF_K,
                               dst, 0, imm, target)

    def jmp_reg(self, op: str, dst: int, src: int,
                target: LabelOrOff) -> "Asm":
        """Conditional jump comparing two registers."""
        return self._emit_jump(isa.BPF_JMP | _JMP_OPS[op] | isa.BPF_X,
                               dst, src, 0, target)

    def jmp32_imm(self, op: str, dst: int, imm: int,
                  target: LabelOrOff) -> "Asm":
        """Conditional jump on the low 32 bits vs an immediate."""
        return self._emit_jump(isa.BPF_JMP32 | _JMP_OPS[op] | isa.BPF_K,
                               dst, 0, imm, target)

    def jmp32_reg(self, op: str, dst: int, src: int,
                  target: LabelOrOff) -> "Asm":
        """Conditional jump on the low 32 bits of two registers."""
        return self._emit_jump(isa.BPF_JMP32 | _JMP_OPS[op] | isa.BPF_X,
                               dst, src, 0, target)

    def call(self, helper_id: int) -> "Asm":
        """Call a helper function by id."""
        return self._emit(Insn(isa.BPF_JMP | isa.BPF_CALL, 0, 0, 0,
                               helper_id))

    def call_subprog(self, target: LabelOrOff) -> "Asm":
        """BPF-to-BPF call (``BPF_PSEUDO_CALL``) [45]."""
        if isinstance(target, str):
            self._fixups.append((len(self._insns), target, "imm"))
            imm = 0
        else:
            imm = target
        return self._emit(Insn(isa.BPF_JMP | isa.BPF_CALL, 0,
                               isa.BPF_PSEUDO_CALL, 0, imm))

    def exit_(self) -> "Asm":
        """Return R0 to the kernel."""
        return self._emit(Insn(isa.BPF_JMP | isa.BPF_EXIT, 0, 0, 0, 0))

    # -- raw escape hatch -------------------------------------------------------

    def raw(self, insn: Insn) -> "Asm":
        """Emit a pre-built instruction (used by attack programs that
        need encodings no sane builder would produce)."""
        return self._emit(insn)

    # -- finalization -------------------------------------------------------------

    def program(self) -> List[Insn]:
        """Resolve labels and return the instruction list."""
        insns = list(self._insns)
        for index, label, fixup_field in self._fixups:
            if label not in self._labels:
                raise ValueError(f"undefined label {label!r}")
            # targets are relative to the *next* instruction
            delta = self._labels[label] - index - 1
            old = insns[index]
            if fixup_field == "off":
                insns[index] = Insn(old.opcode, old.dst, old.src,
                                    delta, old.imm)
            else:
                insns[index] = Insn(old.opcode, old.dst, old.src,
                                    old.off, delta)
        return insns
