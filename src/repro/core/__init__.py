"""The paper's proposal: safe kernel extensions without verification.

This package is the primary contribution being reproduced (paper §3):

* :mod:`repro.core.lang` — **SafeLang**, a Rust-like extension
  language with ownership, borrows, RAII and no ``unsafe``; its
  compiler "takes the role of the verifier",
* :mod:`repro.core.kcrate` — the trusted *kernel crate*: the safe
  interface between extensions and the (unsafe) kernel, where
  refcounts become RAII handles, integer logic moves into safe code,
  and remaining unsafe helpers sit behind sanitizing wrappers (§3.2),
* :mod:`repro.core.signing` / :mod:`repro.core.toolchain` — the
  trusted userspace toolchain that compiles, checks and *signs*
  extensions,
* :mod:`repro.core.loader` — the kernel side: signature validation
  plus load-time fixup only; no in-kernel analysis,
* :mod:`repro.core.runtime` — lightweight runtime mechanisms:
  watchdog termination, stack protection, on-the-fly resource/
  destructor recording with trusted cleanup, and a per-CPU memory
  pool (§3.1),
* :mod:`repro.core.vm` — the execution engine with the above engaged,
* :mod:`repro.core.framework` — the one-stop facade used by examples
  and experiments.
"""

from repro.core.framework import SafeExtensionFramework
from repro.core.toolchain import TrustedToolchain, CompiledExtension
from repro.core.loader import SafeLoader

__all__ = [
    "SafeExtensionFramework",
    "TrustedToolchain",
    "CompiledExtension",
    "SafeLoader",
]
