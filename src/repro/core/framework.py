"""One-stop facade over the proposed extension framework.

Wires together toolchain, loader (with key bootstrap), and the
protected VM, and provides the same run entry points as
:class:`repro.ebpf.loader.BpfSubsystem` so experiments can drive both
frameworks with identical workloads.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.kcrate.api import XDP_CTX, build_api_table
from repro.core.kcrate.resources import KernelResource
from repro.core.loader import LoadedExtension, SafeLoader
from repro.core.signing import SigningKey
from repro.core.toolchain import CompiledExtension, TrustedToolchain
from repro.core.vm import ExtensionVm, RunResult
from repro.kernel.kernel import Kernel


class SafeExtensionFramework:
    """The paper's proposal, assembled."""

    def __init__(self, kernel: Kernel,
                 watchdog_budget_ns: int = 1_000_000) -> None:
        self.kernel = kernel
        self.api = build_api_table()
        # key bootstrap: the kernel trusts exactly the keys provisioned
        # at boot (modeling IMA/secure-boot key distribution [43])
        self.toolchain_key = SigningKey.generate("toolchain-v1")
        self.toolchain = TrustedToolchain(self.toolchain_key, self.api)
        self.loader = SafeLoader(
            kernel, {self.toolchain_key.key_id: self.toolchain_key},
            self.api)
        self.vm = ExtensionVm(kernel, self.api,
                              watchdog_budget_ns=watchdog_budget_ns)

    def shutdown(self) -> None:
        """Tear the framework down, returning its kernel memory (the
        per-CPU pool region) — without this, every framework instance
        leaks one pool region for the kernel's lifetime."""
        self.vm.shutdown()

    # -- developer workflow --------------------------------------------------

    def compile(self, source: str, name: str) -> CompiledExtension:
        """Userspace: check + sign."""
        return self.toolchain.compile(source, name)

    def load(self, ext: CompiledExtension,
             maps: Optional[List[object]] = None,
             watchdog_budget_ns: Optional[int] = None
             ) -> LoadedExtension:
        """Kernel: validate signature + fix up.  An operator may cap
        this extension tighter than the framework default (hot-path
        hooks get microseconds, housekeeping gets milliseconds)."""
        loaded = self.loader.load(ext, maps)
        loaded.watchdog_budget_ns = watchdog_budget_ns
        return loaded

    def install(self, source: str, name: str,
                maps: Optional[List[object]] = None,
                watchdog_budget_ns: Optional[int] = None
                ) -> LoadedExtension:
        """compile + load in one step."""
        return self.load(self.compile(source, name), maps,
                         watchdog_budget_ns=watchdog_budget_ns)

    # -- execution -----------------------------------------------------------------

    def run(self, loaded: LoadedExtension,
            ctx: Optional[KernelResource] = None) -> RunResult:
        """Run with a pre-built context handle (or none).

        The per-extension budget is passed *through* to the VM rather
        than swapped into shared VM state, so nested runs (one
        extension's hook firing another) each keep their own budget —
        the save/restore this replaces was not re-entrancy-safe."""
        return self.vm.run(loaded.program, loaded.name, loaded.maps,
                           ctx,
                           watchdog_budget_ns=loaded.watchdog_budget_ns)

    def run_on_packet(self, loaded: LoadedExtension,
                      payload: bytes) -> RunResult:
        """Build an skb context and run (XDP-style hook)."""
        skb = self.kernel.create_skb(payload)
        ctx = KernelResource("xdp_ctx", f"skb@{skb.address:#x}",
                             lambda: None, payload=skb)
        return self.run(loaded, ctx)

    def run_on_trace(self, loaded: LoadedExtension) -> RunResult:
        """Run a tracing extension (no packet context)."""
        return self.run(loaded, None)

    # -- attachment points --------------------------------------------------------

    def attach_xdp(self, loaded: LoadedExtension,
                   priority: int = 0) -> None:
        """Attach an extension to the kernel's XDP hook chain,
        alongside any eBPF programs already there."""
        def run_on_skb(skb) -> int:
            ctx = KernelResource("xdp_ctx", f"skb@{skb.address:#x}",
                                 lambda: None, payload=skb)
            return self.run(loaded, ctx).value
        self.kernel.hooks.attach("xdp", f"safelang:{loaded.name}",
                                 run_on_skb, priority=priority)

    def attach_trace(self, loaded: LoadedExtension,
                     priority: int = 0) -> None:
        """Attach an extension to the tracing hook."""
        self.kernel.hooks.attach(
            "trace", f"safelang:{loaded.name}",
            lambda __: self.run(loaded, None).value,
            priority=priority)
