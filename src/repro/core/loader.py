"""The kernel-side loader: signature validation + load-time fixup.

The whole point of the architecture (Figure 5): at load time the
kernel does **no safety analysis**.  It (1) validates the toolchain
signature against its trusted keys, (2) parses the image structurally
(the moral equivalent of ELF loading), and (3) performs load-time
fixups — resolving kcrate symbol references and binding map slots.
Compare this O(image size) pipeline with the verifier's
path-exponential symbolic execution in the verification-cost bench.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.kcrate.api import ApiTable, build_api_table
from repro.core.lang import ast
from repro.core.lang.serialize import dict_to_program
from repro.core.signing import SigningKey
from repro.core.toolchain import KCRATE_ABI_VERSION, CompiledExtension
from repro.errors import SignatureError
from repro.kernel.kernel import Kernel


@dataclass
class LoadedExtension:
    """An extension resident in the kernel."""

    ext_id: int
    name: str
    program: ast.Program
    #: map slot index -> bound BpfMap (the load-time fixup result)
    maps: List[object] = field(default_factory=list)
    #: resolved kcrate symbol table
    symbols: List[str] = field(default_factory=list)
    load_time_s: float = 0.0
    #: per-extension watchdog budget; None = the framework default
    watchdog_budget_ns: Optional[int] = None


class SafeLoader:
    """Kernel-side loading for the proposed framework."""

    def __init__(self, kernel: Kernel,
                 trusted_keys: Dict[str, SigningKey],
                 api: Optional[ApiTable] = None) -> None:
        self.kernel = kernel
        self.trusted_keys = dict(trusted_keys)
        self.api = api or build_api_table()
        self._next_id = 1
        self.loaded: List[LoadedExtension] = []

    def load(self, ext: CompiledExtension,
             maps: Optional[List[object]] = None) -> LoadedExtension:
        """Validate, parse, fix up.  Raises
        :class:`~repro.errors.SignatureError` on any trust failure."""
        start = time.perf_counter()

        faults = self.kernel.faults
        if faults.armed:
            fault = faults.check("load.signature")
            if fault is not None and fault.kind != "delay":
                # any injected fault here is a trust failure: a
                # corrupted image and a flaky key store look the same
                # to the loader, and both must refuse the extension
                raise SignatureError(
                    f"extension {ext.name!r}: injected signature "
                    "validation failure")

        key = self.trusted_keys.get(ext.key_id)
        if key is None:
            raise SignatureError(
                f"extension {ext.name!r} signed by unknown key "
                f"{ext.key_id!r}")
        if not key.verify(ext.image_bytes(), ext.signature):
            raise SignatureError(
                f"extension {ext.name!r}: signature validation failed "
                "(image modified after signing?)")
        if ext.abi_version != KCRATE_ABI_VERSION:
            raise SignatureError(
                f"extension {ext.name!r}: kcrate ABI {ext.abi_version} "
                f"!= kernel {KCRATE_ABI_VERSION}")

        # structural decode only — no semantic analysis in the kernel
        program = dict_to_program(ext.payload)

        # load-time fixup: every referenced kcrate symbol must resolve
        resolved: List[str] = []
        for symbol in ext.required_symbols:
            if "::" in symbol:
                recv, method = symbol.split("::", 1)
                if (recv, method) not in self.api.methods:
                    raise SignatureError(
                        f"extension {ext.name!r}: unresolved kcrate "
                        f"symbol {symbol}")
            elif symbol not in self.api.functions:
                raise SignatureError(
                    f"extension {ext.name!r}: unresolved kcrate "
                    f"symbol {symbol}")
            resolved.append(symbol)

        loaded = LoadedExtension(
            ext_id=self._next_id, name=ext.name, program=program,
            maps=list(maps or []), symbols=resolved,
            load_time_s=time.perf_counter() - start)
        self._next_id += 1
        self.loaded.append(loaded)
        # the signature check + fixup IS this framework's load-time
        # validation, so it lands in the same "verify" stage column
        # the eBPF verifier reports into — that is the paper's
        # comparison (Figure 5 vs Figure 1)
        self.kernel.telemetry.record_load(
            "safelang", ext.name, prog_id=loaded.ext_id,
            cache_hit=False,
            verify_ns=int(loaded.load_time_s * 1e9))
        self.kernel.log.log(
            self.kernel.clock.now_ns,
            f"safelang: loaded extension {loaded.ext_id} ({ext.name}) "
            f"sig=ok key={ext.key_id} symbols={len(resolved)}")
        return loaded
