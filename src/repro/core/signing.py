"""Extension signing.

§3.1: "our architecture involves a trusted compiler that checks and
signs an extension program ... At load time, the kernel checks the
signature to ensure safety."  The scheme here is HMAC-SHA256 over the
canonical extension image with an in-simulator key bootstrap — the
paper's requirement is a secure key-distribution mechanism (it points
at signed kernel modules / signed BPF programs [43]), not a specific
algorithm.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass


@dataclass(frozen=True)
class SigningKey:
    """One toolchain signing key."""

    key_id: str
    secret: bytes

    @classmethod
    def generate(cls, key_id: str, seed: bytes = b"repro") -> "SigningKey":
        """Deterministic key derivation for the simulation."""
        secret = hashlib.sha256(b"toolchain-key:" + key_id.encode()
                                + b":" + seed).digest()
        return cls(key_id=key_id, secret=secret)

    def sign(self, image: bytes) -> str:
        """Sign an extension image."""
        return hmac.new(self.secret, image, hashlib.sha256).hexdigest()

    def verify(self, image: bytes, signature: str) -> bool:
        """Constant-time signature check."""
        expected = self.sign(image)
        return hmac.compare_digest(expected, signature)
