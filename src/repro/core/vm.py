"""SafeLang execution engine.

Interprets the checked AST against the simulated kernel with all three
runtime mechanisms engaged (§3.1): the watchdog bounds run time, the
stack guard bounds recursion, and the cleanup list guarantees that any
termination — normal exit, panic, or watchdog kill — releases every
kernel resource through trusted destructors.

Extensions run under ``rcu_read_lock`` with preemption off, exactly
like eBPF programs; the difference is that a runaway extension is
*terminated by the watchdog* before the RCU stall detector would fire,
instead of spinning forever.

Integer arithmetic is checked: overflow, division by zero and
oversized shifts panic (contained), never wrap silently — Rust's
debug-profile semantics, which the paper relies on to move integer
logic out of unsafe helpers (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.kcrate.api import ApiTable
from repro.core.kcrate.resources import KernelResource, VecHandle
from repro.core.lang import ast
from repro.core.lang import types as T
from repro.core.runtime.cleanup import CleanupList
from repro.core.runtime.mempool import MemoryPool
from repro.core.runtime.stack import StackGuard
from repro.core.runtime.watchdog import Watchdog
from repro.recovery.domain import FaultDomain
from repro.errors import (
    ExtensionPanic,
    KernelSafetyViolation,
    StackOverflow,
    WatchdogTimeout,
)
from repro.kernel.kernel import Kernel

#: virtual nanoseconds charged per interpreted AST step
STEP_COST_NS = 2

#: errnos surfaced through RunResult.value on supervised paths
_EAGAIN = 11
_EFAULT = 14

_MOVED = object()


class Cell:
    """One variable slot."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value


@dataclass
class RefVal:
    """A reference value (``&x`` / ``&mut x``)."""

    cell: Cell
    mut: bool


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: object) -> None:
        super().__init__("return")
        self.value = value


class RtEnv:
    """What the kcrate implementations see at run time."""

    def __init__(self, kernel: Kernel, prog_name: str,
                 maps: Sequence[object], cleanup: CleanupList,
                 pool: MemoryPool) -> None:
        self.kernel = kernel
        self.prog_name = prog_name
        self.maps = list(maps)
        self.cleanup = cleanup
        self.pool = pool
        self.prandom_state = 0x853C49E6748FEA9B
        #: crossings from safe code into the trusted kcrate boundary
        self.kcrate_calls = 0

    @property
    def holder(self) -> str:
        """Attribution tag for refcounts/locks."""
        return f"safelang:{self.prog_name}"

    def map_by_slot(self, slot: int):
        """Load-time-fixed map binding -> BpfMap."""
        if 0 <= slot < len(self.maps):
            return self.maps[slot]
        return None

    def register_resource(self, resource: KernelResource) -> None:
        """Record a resource for RAII + safe termination."""
        self.cleanup.register(resource)

    def panic(self, message: str) -> None:
        """Raise a contained extension panic."""
        raise ExtensionPanic(message)


@dataclass
class RunResult:
    """Outcome of one extension invocation."""

    value: int
    steps: int
    terminated: bool = False
    panicked: bool = False
    reason: str = ""
    #: crossings into the trusted kcrate boundary during the run
    kcrate_calls: int = 0


class ExtensionVm:
    """Interpreter for one loaded extension."""

    def __init__(self, kernel: Kernel, api: ApiTable,
                 watchdog_budget_ns: int = 1_000_000) -> None:
        self.kernel = kernel
        self.api = api
        self.watchdog_budget_ns = watchdog_budget_ns
        self.pool = MemoryPool(kernel, kernel.current_cpu)

    def shutdown(self) -> None:
        """Release the per-CPU pool region (framework teardown)."""
        self.pool.destroy()

    # -- public API ---------------------------------------------------------

    def run(self, program: ast.Program, prog_name: str,
            maps: Sequence[object], ctx: Optional[KernelResource],
            entry: str = "prog",
            watchdog_budget_ns: Optional[int] = None) -> RunResult:
        """Run the entry function with full runtime protection.

        Returns a :class:`RunResult`; watchdog kills and panics are
        *contained* — recorded in the result, kernel intact.

        ``watchdog_budget_ns`` overrides the VM default for this
        invocation only — the budget travels with the call rather
        than through shared VM state, so per-extension budgets stay
        correct even when one extension's run nests inside another's
        (a hook chain running two extensions, say).

        While ``telemetry.stats_enabled`` is on, the invocation is
        folded into the program's run stats (``run_cnt``,
        ``run_time_ns``, steps, kcrate crossings); watchdog fires and
        panics are counted unconditionally."""
        fn = program.function(entry)
        if fn is None:
            raise ExtensionPanic(f"no entry function {entry!r}")

        telemetry = self.kernel.telemetry
        budget = self.watchdog_budget_ns \
            if watchdog_budget_ns is None else watchdog_budget_ns
        supervisor = self.kernel.recovery
        supervised = supervisor is not None and supervisor.active
        tag = f"safelang:{prog_name}"
        if supervised and supervisor.gate(tag):
            # breaker open: refuse the run without touching the kernel
            return RunResult(value=-_EAGAIN, steps=0,
                             reason="refused: program is quarantined")
        cleanup = CleanupList(pool=self.pool)
        rt = RtEnv(self.kernel, prog_name, maps, cleanup, self.pool)
        watchdog = Watchdog(
            self.kernel.clock, budget, name=prog_name,
            on_fire=lambda wd: telemetry.record_watchdog_fire(
                "safelang", prog_name, wd.budget_ns),
            faults=self.kernel.faults, log=self.kernel.log)
        guard = StackGuard()
        runner = _Runner(self, program, rt, watchdog, guard)
        # the fault domain wraps OUTSIDE the balancing finally below:
        # it snapshots entry state here and unwinds only *above* that
        # snapshot, so containment after the finally is idempotent
        domain = FaultDomain(self.kernel, tag, cleanup=cleanup,
                             pool=self.pool) if supervised else None
        contained = False

        rcu = self.kernel.rcu
        cpu = self.kernel.current_cpu
        start_ns = self.kernel.clock.now_ns
        rcu.read_lock(holder=rt.holder)
        cpu.preempt_disable()
        watchdog.arm()
        try:
            try:
                args: List[object] = [ctx] if fn.params else []
                value = runner.call_fn(fn, args)
                result = RunResult(value=_as_int(value),
                                   steps=runner.steps)
            except WatchdogTimeout as exc:
                ran = cleanup.terminate()
                result = RunResult(value=-1, steps=runner.steps,
                                   terminated=True,
                                   reason=f"{exc} ({ran} resources "
                                          "cleaned)")
            except (ExtensionPanic, StackOverflow, MemoryError) as exc:
                telemetry.record_panic("safelang", prog_name, str(exc))
                ran = cleanup.terminate()
                result = RunResult(value=-1, steps=runner.steps,
                                   panicked=True,
                                   reason=f"{exc} ({ran} resources "
                                          "cleaned)")
            finally:
                watchdog.disarm()
                cleanup.teardown()
                self.pool.reset()
                cpu.preempt_enable()
                rcu.read_unlock()
        except KernelSafetyViolation as exc:
            if domain is None:
                raise
            supervisor.contain(tag, exc, domain)
            supervisor.note_fault(
                tag, f"oops:{getattr(exc, 'category', 'oops')}")
            contained = True
            result = RunResult(value=-_EFAULT, steps=runner.steps,
                               panicked=True,
                               reason=f"contained by supervisor: "
                                      f"{exc}")
        result.kcrate_calls = rt.kcrate_calls
        if supervised and not contained:
            if result.terminated:
                supervisor.note_fault(tag, "watchdog")
            elif result.panicked:
                supervisor.note_fault(tag, "panic")
            else:
                supervisor.note_success(tag)
        if telemetry.stats_enabled:
            telemetry.record_run(
                "safelang", prog_name,
                run_time_ns=self.kernel.clock.now_ns - start_ns,
                insns=runner.steps,
                helper_calls=rt.kcrate_calls)
        return result


def _as_int(value: object) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    return 0


class _Runner:
    """Interprets one invocation."""

    def __init__(self, vm: ExtensionVm, program: ast.Program,
                 rt: RtEnv, watchdog: Watchdog,
                 guard: StackGuard) -> None:
        self.vm = vm
        self.program = program
        self.rt = rt
        self.watchdog = watchdog
        self.guard = guard
        self.steps = 0

    # -- stepping / protection ------------------------------------------------

    def _step(self) -> None:
        self.steps += 1
        self.vm.kernel.work(STEP_COST_NS)
        if self.watchdog.fired:
            raise WatchdogTimeout(
                f"extension {self.rt.prog_name!r} exceeded its "
                f"{self.watchdog.budget_ns}ns budget",
                source=self.rt.holder)

    def _panic(self, line: int, message: str) -> None:
        raise ExtensionPanic(f"line {line}: {message}")

    # -- function calls -----------------------------------------------------------

    def call_fn(self, fn: ast.FnDef, args: List[object]) -> object:
        """Invoke a user function under the stack guard."""
        frame_bytes = 64 + 16 * len(fn.params)
        self.guard.push(frame_bytes, where=fn.name)
        scope: Dict[str, Cell] = {}
        for param, arg in zip(fn.params, args):
            scope[param.name] = Cell(arg)
        scopes = [scope]
        try:
            self._exec_block(fn.body, scopes, new_scope=False)
            return None  # fell off the end: unit
        except _Return as ret:
            return ret.value
        finally:
            self._drop_scope(scopes[0])
            self.guard.pop(frame_bytes)

    # -- scopes + RAII ---------------------------------------------------------------

    def _drop_scope(self, scope: Dict[str, Cell]) -> None:
        """RAII: release resources still owned by dying bindings, in
        reverse declaration order."""
        for cell in reversed(list(scope.values())):
            value = cell.value
            if isinstance(value, KernelResource):
                value.release()
            elif isinstance(value, tuple) and value[0] == "some" \
                    and isinstance(value[1], KernelResource):
                value[1].release()
            cell.value = _MOVED

    def _exec_block(self, body: List[ast.Stmt],
                    scopes: List[Dict[str, Cell]],
                    new_scope: bool = True) -> None:
        if new_scope:
            scopes.append({})
        try:
            for stmt in body:
                self._exec_stmt(stmt, scopes)
        finally:
            if new_scope:
                self._drop_scope(scopes.pop())

    def _find_cell(self, scopes: List[Dict[str, Cell]],
                   name: str) -> Cell:
        for scope in reversed(scopes):
            if name in scope:
                return scope[name]
        raise ExtensionPanic(f"unknown variable {name!r}")

    # -- statements ----------------------------------------------------------------------

    def _exec_stmt(self, stmt: ast.Stmt,
                   scopes: List[Dict[str, Cell]]) -> None:
        self._step()

        if isinstance(stmt, ast.Let):
            value = self._eval(stmt.value, scopes, consume=True)
            scopes[-1][stmt.name] = Cell(value)
            return
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, scopes, consume=True)
            cell = self._find_cell(scopes, stmt.target)
            if stmt.through_ref:
                ref = cell.value
                assert isinstance(ref, RefVal)
                ref.cell.value = value
            else:
                old = cell.value
                if isinstance(old, KernelResource):
                    old.release()  # overwritten resource drops
                cell.value = value
            return
        if isinstance(stmt, ast.ExprStmt):
            value = self._eval(stmt.expr, scopes, consume=True)
            # an unbound resource temporary drops immediately
            if isinstance(value, KernelResource):
                value.release()
            elif isinstance(value, tuple) and value[0] == "some" \
                    and isinstance(value[1], KernelResource):
                value[1].release()
            return
        if isinstance(stmt, ast.If):
            cond = self._truth(self._eval(stmt.cond, scopes))
            if cond:
                self._exec_block(stmt.then_body, scopes)
            elif stmt.else_body is not None:
                self._exec_block(stmt.else_body, scopes)
            return
        if isinstance(stmt, ast.While):
            while True:
                self._step()
                if not self._truth(self._eval(stmt.cond, scopes)):
                    break
                try:
                    self._exec_block(stmt.body, scopes)
                except _Break:
                    break
                except _Continue:
                    continue
            return
        if isinstance(stmt, ast.For):
            lo = self._int(self._eval(stmt.lo, scopes))
            hi = self._int(self._eval(stmt.hi, scopes))
            index = lo
            while index < hi:
                self._step()
                scopes.append({stmt.var: Cell(index)})
                try:
                    for inner in stmt.body:
                        self._exec_stmt(inner, scopes)
                except _Break:
                    self._drop_scope(scopes.pop())
                    break
                except _Continue:
                    pass
                self._drop_scope(scopes.pop())
                index += 1
            return
        if isinstance(stmt, ast.Match):
            value = self._eval(stmt.scrutinee, scopes, consume=True)
            if isinstance(value, RefVal):
                value = value.cell.value
            if not (isinstance(value, tuple) and value[0] in
                    ("some", "none")):
                self._panic(stmt.line, "match on a non-Option value")
            if value[0] == "some":
                scopes.append({stmt.some_var: Cell(value[1])})
                try:
                    for inner in stmt.some_body:
                        self._exec_stmt(inner, scopes)
                finally:
                    self._drop_scope(scopes.pop())
            else:
                self._exec_block(stmt.none_body, scopes)
            return
        if isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                value = self._eval(stmt.value, scopes, consume=True)
            raise _Return(value)
        if isinstance(stmt, ast.Break):
            raise _Break()
        if isinstance(stmt, ast.Continue):
            raise _Continue()
        if isinstance(stmt, ast.DropStmt):
            cell = self._find_cell(scopes, stmt.name)
            value = cell.value
            if isinstance(value, KernelResource):
                value.release()
            cell.value = _MOVED
            return
        raise ExtensionPanic(
            f"unsupported statement {type(stmt).__name__}")

    # -- expressions -------------------------------------------------------------------------

    def _truth(self, value: object) -> bool:
        if isinstance(value, RefVal):
            value = value.cell.value
        return bool(value)

    def _int(self, value: object) -> int:
        if isinstance(value, RefVal):
            value = value.cell.value
        if isinstance(value, bool):
            return int(value)
        if not isinstance(value, int):
            raise ExtensionPanic(f"expected an integer, got "
                                 f"{type(value).__name__}")
        return value

    def _eval(self, node: ast.Expr, scopes: List[Dict[str, Cell]],
              consume: bool = False) -> object:
        self._step()

        if isinstance(node, ast.IntLit):
            return node.value
        if isinstance(node, ast.BoolLit):
            return node.value
        if isinstance(node, ast.StrLit):
            return node.value
        if isinstance(node, ast.NoneLit):
            return ("none", None)
        if isinstance(node, ast.SomeExpr):
            return ("some", self._eval(node.inner, scopes,
                                       consume=True))
        if isinstance(node, ast.Panic):
            self._panic(node.line, f"explicit panic: {node.message}")
        if isinstance(node, ast.Name):
            cell = self._find_cell(scopes, node.ident)
            value = cell.value
            if value is _MOVED:
                # borrowck should make this unreachable; containment
                # anyway
                self._panic(node.line,
                            f"use of moved value {node.ident!r}")
            if consume and node.ty is not None \
                    and not node.ty.is_copy():
                cell.value = _MOVED
            return value
        if isinstance(node, ast.Unary):
            return self._eval_unary(node, scopes)
        if isinstance(node, ast.Binary):
            return self._eval_binary(node, scopes)
        if isinstance(node, ast.Cast):
            raw = self._int(self._eval(node.operand, scopes))
            lo, hi = T.int_range(node.target)
            width = hi - lo + 1
            wrapped = (raw - lo) % width + lo
            return wrapped
        if isinstance(node, ast.Borrow):
            cell = self._find_cell(scopes, node.operand.ident)
            return RefVal(cell, node.mut)
        if isinstance(node, ast.Call):
            return self._eval_call(node, scopes)
        if isinstance(node, ast.MethodCall):
            return self._eval_method(node, scopes)
        raise ExtensionPanic(
            f"unsupported expression {type(node).__name__}")

    def _eval_unary(self, node: ast.Unary,
                    scopes: List[Dict[str, Cell]]) -> object:
        if node.op == "*":
            ref = self._eval(node.operand, scopes)
            if not isinstance(ref, RefVal):
                self._panic(node.line, "dereference of non-reference")
            return ref.cell.value
        value = self._eval(node.operand, scopes)
        if node.op == "!":
            return not self._truth(value)
        # signed negation, checked
        raw = self._int(value)
        result = -raw
        lo, hi = T.int_range(node.ty)
        if not lo <= result <= hi:
            self._panic(node.line, f"integer overflow negating {raw}")
        return result

    def _eval_binary(self, node: ast.Binary,
                     scopes: List[Dict[str, Cell]]) -> object:
        if node.op == "&&":
            return self._truth(self._eval(node.left, scopes)) and \
                self._truth(self._eval(node.right, scopes))
        if node.op == "||":
            return self._truth(self._eval(node.left, scopes)) or \
                self._truth(self._eval(node.right, scopes))

        left = self._eval(node.left, scopes)
        right = self._eval(node.right, scopes)

        if node.op in ("==", "!="):
            lhs = left.cell.value if isinstance(left, RefVal) else left
            rhs = right.cell.value if isinstance(right, RefVal) \
                else right
            return (lhs == rhs) if node.op == "==" else (lhs != rhs)

        lhs = self._int(left)
        rhs = self._int(right)
        if node.op in ("<", "<=", ">", ">="):
            return {"<": lhs < rhs, "<=": lhs <= rhs,
                    ">": lhs > rhs, ">=": lhs >= rhs}[node.op]

        # checked arithmetic on node.ty
        ty = node.ty
        lo, hi = T.int_range(ty)
        if node.op == "+":
            result = lhs + rhs
        elif node.op == "-":
            result = lhs - rhs
        elif node.op == "*":
            result = lhs * rhs
        elif node.op == "/":
            if rhs == 0:
                self._panic(node.line, "division by zero")
            result = int(lhs / rhs) if (lhs < 0) != (rhs < 0) \
                else lhs // rhs
        elif node.op == "%":
            if rhs == 0:
                self._panic(node.line, "remainder by zero")
            result = lhs - rhs * (int(lhs / rhs) if (lhs < 0) != (rhs < 0)
                                  else lhs // rhs)
        elif node.op == "&":
            return lhs & rhs if lhs >= 0 and rhs >= 0 \
                else (lhs & hi) & (rhs & hi)
        elif node.op == "|":
            return (lhs | rhs) if lhs >= 0 and rhs >= 0 \
                else ((lhs & hi) | (rhs & hi))
        elif node.op == "^":
            return (lhs ^ rhs) if lhs >= 0 and rhs >= 0 \
                else ((lhs ^ rhs) & hi)
        elif node.op in ("<<", ">>"):
            width = 64 if ty.name.endswith("64") else \
                (32 if ty.name.endswith("32") else 8)
            if rhs >= width or rhs < 0:
                self._panic(node.line, f"shift by {rhs} exceeds the "
                            f"{width}-bit width")
            result = (lhs << rhs) if node.op == "<<" else (lhs >> rhs)
        else:
            self._panic(node.line, f"unknown operator {node.op!r}")
        if not lo <= result <= hi:
            self._panic(node.line,
                        f"integer overflow: {lhs} {node.op} {rhs} "
                        f"out of {ty!r} range")
        return result

    def _eval_call(self, node: ast.Call,
                   scopes: List[Dict[str, Cell]]) -> object:
        api_fn = self.vm.api.functions.get(node.func)
        if api_fn is not None:
            args = [self._eval(arg, scopes, consume=True)
                    for arg in node.args]
            self.rt.kcrate_calls += 1
            telemetry = self.vm.kernel.telemetry
            if telemetry.stats_enabled:
                telemetry.record_helper("safelang", self.rt.prog_name,
                                        node.func)
            self.vm.kernel.work(api_fn.cost)
            resolved = [a.cell.value if isinstance(a, RefVal) else a
                        for a in args]
            return api_fn.impl(self.rt, *resolved)
        fn = self.program.function(node.func)
        if fn is None:
            self._panic(node.line, f"unknown function {node.func!r}")
        args = [self._eval(arg, scopes, consume=True)
                for arg in node.args]
        return self.call_fn(fn, args)

    def _eval_method(self, node: ast.MethodCall,
                     scopes: List[Dict[str, Cell]]) -> object:
        receiver = self._eval(node.receiver, scopes)
        if isinstance(receiver, RefVal):
            receiver = receiver.cell.value
        # built-in Option combinators
        if isinstance(receiver, tuple) and receiver \
                and receiver[0] in ("some", "none"):
            if node.method == "is_some":
                return receiver[0] == "some"
            if node.method == "is_none":
                return receiver[0] == "none"
            if node.method == "unwrap_or":
                default = self._eval(node.args[0], scopes,
                                     consume=True)
                return receiver[1] if receiver[0] == "some" \
                    else default
        method = self.vm.api.method_for(node.receiver.ty, node.method)
        if method is None:
            self._panic(node.line, f"unknown method {node.method!r}")
        args = [self._eval(arg, scopes, consume=True)
                for arg in node.args]
        resolved = [a.cell.value if isinstance(a, RefVal) else a
                    for a in args]
        telemetry = self.vm.kernel.telemetry
        if telemetry.stats_enabled:
            telemetry.record_helper(
                "safelang", self.rt.prog_name,
                f"{node.receiver.ty}::{node.method}")
        self.vm.kernel.work(method.cost)
        return method.impl(self.rt, receiver, *resolved)
