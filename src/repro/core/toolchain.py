"""The trusted userspace toolchain (Figure 5, left side).

Static analysis is decoupled from the kernel: the *toolchain* runs the
full check pipeline — unsafe-gate, type checker, borrow checker — and
signs what passes.  The kernel never re-analyzes; it trusts the
signature.  This is where the paper cashes in "leveraging the broader
(userspace) communities working on type checkers and formal software
verification" (§3).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.kcrate.api import ApiTable, build_api_table
from repro.core.lang import ast
from repro.core.lang.borrowck import BorrowChecker
from repro.core.lang.parser import parse_program
from repro.core.lang.serialize import program_to_dict
from repro.core.lang.typecheck import TypeChecker
from repro.core.lang.unsafeck import reject_unsafe
from repro.core.signing import SigningKey

#: bumped when the kcrate ABI changes; checked at load time
KCRATE_ABI_VERSION = 1


@dataclass
class CompiledExtension:
    """A checked, signed extension ready for loading.

    ``payload`` is the serialized *typed* AST — the compiled artifact.
    The signature covers the payload (plus metadata), so the kernel
    can trust the embedded type information without re-analysis."""

    name: str
    source: str
    key_id: str
    signature: str
    #: serialized typed AST (see repro.core.lang.serialize)
    payload: Dict = field(default_factory=dict)
    abi_version: int = KCRATE_ABI_VERSION
    #: kcrate symbols the extension references (fixed up at load)
    required_symbols: List[str] = field(default_factory=list)
    #: toolchain wall time, for the load-cost comparison benches
    compile_time_s: float = 0.0

    def image_bytes(self) -> bytes:
        """The canonical signed image."""
        return json.dumps({
            "name": self.name,
            "abi": self.abi_version,
            "symbols": self.required_symbols,
            "payload": self.payload,
        }, sort_keys=True).encode()

    def image_digest(self) -> str:
        """Content digest, for logs."""
        return hashlib.sha256(self.image_bytes()).hexdigest()[:16]


def _collect_symbols(program: ast.Program, api: ApiTable) -> List[str]:
    """Every kcrate function/method the program references."""
    symbols = set()

    def walk_expr(node: ast.Expr) -> None:
        if isinstance(node, ast.Call):
            if node.func in api.functions:
                symbols.add(node.func)
            for arg in node.args:
                walk_expr(arg)
        elif isinstance(node, ast.MethodCall):
            method = api.method_for(node.receiver.ty, node.method) \
                if node.receiver.ty is not None else None
            if method is not None:
                symbols.add(f"{method.recv}::{method.name}")
            walk_expr(node.receiver)
            for arg in node.args:
                walk_expr(arg)
        else:
            for attr in ("inner", "operand", "left", "right", "value"):
                child = getattr(node, attr, None)
                if isinstance(child, ast.Expr):
                    walk_expr(child)

    def walk_block(body) -> None:
        for stmt in body:
            for attr in ("value", "expr", "cond", "lo", "hi",
                         "scrutinee"):
                child = getattr(stmt, attr, None)
                if isinstance(child, ast.Expr):
                    walk_expr(child)
            for attr in ("then_body", "else_body", "body", "some_body",
                         "none_body"):
                inner = getattr(stmt, attr, None)
                if inner:
                    walk_block(inner)

    for fn in program.functions:
        walk_block(fn.body)
    return sorted(symbols)


class TrustedToolchain:
    """Compile + check + sign pipeline."""

    def __init__(self, key: Optional[SigningKey] = None,
                 api: Optional[ApiTable] = None) -> None:
        self.key = key or SigningKey.generate("toolchain-v1")
        self.api = api or build_api_table()

    def check(self, source: str) -> ast.Program:
        """Run the full static pipeline; returns the checked AST.
        Raises the appropriate :class:`~repro.errors.SafeLangError`
        subclass on the first violation."""
        program = parse_program(source)
        reject_unsafe(program)
        TypeChecker(program, self.api).check()
        BorrowChecker(program, self.api).check()
        return program

    def compile(self, source: str, name: str) -> CompiledExtension:
        """Check and sign an extension."""
        start = time.perf_counter()
        program = self.check(source)
        symbols = _collect_symbols(program, self.api)
        ext = CompiledExtension(
            name=name, source=source, key_id=self.key.key_id,
            signature="", payload=program_to_dict(program),
            required_symbols=symbols,
        )
        ext.signature = self.key.sign(ext.image_bytes())
        ext.compile_time_s = time.perf_counter() - start
        return ext
