"""SafeLang recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional

from repro.core.lang import ast
from repro.core.lang import types as T
from repro.core.lang.lexer import Token, tokenize
from repro.errors import ParseError


class Parser:
    """One parse over a token stream."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing --------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, ahead: int = 1) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _error(self, message: str) -> None:
        tok = self._cur
        raise ParseError(f"{message} (found {tok.kind} {tok.text!r})",
                         line=tok.line, col=tok.col)

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._cur
        return tok.kind == kind and (text is None or tok.text == text)

    def _accept(self, kind: str, text: Optional[str] = None
                ) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            expected = text if text is not None else kind
            self._error(f"expected {expected!r}")
        return self._advance()

    # -- items ---------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse the whole token stream into a Program."""
        functions: List[ast.FnDef] = []
        while not self._check("eof"):
            functions.append(self._parse_fn())
        return ast.Program(functions=functions)

    def _parse_fn(self) -> ast.FnDef:
        start = self._expect("kw", "fn")
        name = self._expect("ident").text
        self._expect("op", "(")
        params: List[ast.Param] = []
        while not self._check("op", ")"):
            if params:
                self._expect("op", ",")
            pname = self._expect("ident").text
            self._expect("op", ":")
            pty = self._parse_type()
            params.append(ast.Param(pname, pty, line=self._cur.line))
        self._expect("op", ")")
        if self._accept("op", "->"):
            ret_ty = self._parse_type()
        else:
            ret_ty = T.UNIT
        body = self._parse_block()
        return ast.FnDef(name=name, params=params, ret_ty=ret_ty,
                         body=body, line=start.line)

    def _parse_type(self) -> T.Ty:
        if self._accept("op", "&"):
            mut = self._accept("kw", "mut") is not None
            return T.RefTy(self._parse_type(), mut=mut)
        name = self._expect("ident").text
        if name in ("Option", "Vec"):
            self._expect("op", "<")
            inner = self._parse_type()
            self._expect("op", ">")
            return T.OptionTy(inner) if name == "Option" \
                else T.VecTy(inner)
        primitive = T.prim(name)
        if primitive is not None:
            return primitive
        # anything else is a (kcrate-defined) resource/handle type
        return T.ResourceTy(name)

    # -- statements --------------------------------------------------------------------

    def _parse_block(self) -> List[ast.Stmt]:
        self._expect("op", "{")
        body: List[ast.Stmt] = []
        while not self._check("op", "}"):
            body.append(self._parse_stmt())
        self._expect("op", "}")
        return body

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._cur

        if self._accept("kw", "let"):
            mut = self._accept("kw", "mut") is not None
            name = self._expect("ident").text
            declared: Optional[T.Ty] = None
            if self._accept("op", ":"):
                declared = self._parse_type()
            self._expect("op", "=")
            value = self._parse_expr()
            self._expect("op", ";")
            return ast.Let(name=name, mut=mut, declared_ty=declared,
                           value=value, line=tok.line)

        if self._accept("kw", "if"):
            return self._parse_if(tok.line)

        if self._accept("kw", "while"):
            cond = self._parse_expr()
            body = self._parse_block()
            return ast.While(cond=cond, body=body, line=tok.line)

        if self._accept("kw", "for"):
            var = self._expect("ident").text
            self._expect("kw", "in")
            lo = self._parse_expr()
            self._expect("op", "..")
            hi = self._parse_expr()
            body = self._parse_block()
            return ast.For(var=var, lo=lo, hi=hi, body=body,
                           line=tok.line)

        if self._accept("kw", "match"):
            return self._parse_match(tok.line)

        if self._accept("kw", "return"):
            value: Optional[ast.Expr] = None
            if not self._check("op", ";"):
                value = self._parse_expr()
            self._expect("op", ";")
            return ast.Return(value=value, line=tok.line)

        if self._accept("kw", "break"):
            self._expect("op", ";")
            return ast.Break(line=tok.line)

        if self._accept("kw", "continue"):
            self._expect("op", ";")
            return ast.Continue(line=tok.line)

        if self._accept("kw", "drop"):
            self._expect("op", "(")
            name = self._expect("ident").text
            self._expect("op", ")")
            self._expect("op", ";")
            return ast.DropStmt(name=name, line=tok.line)

        if self._accept("kw", "unsafe"):
            body = self._parse_block()
            return ast.UnsafeBlock(body=body, line=tok.line)

        # *target = value;  (store through &mut)
        if self._check("op", "*") and self._peek().kind == "ident" \
                and self._peek(2).kind == "op" \
                and self._peek(2).text == "=":
            self._advance()
            target = self._expect("ident").text
            self._expect("op", "=")
            value = self._parse_expr()
            self._expect("op", ";")
            return ast.Assign(target=target, value=value,
                              line=tok.line, through_ref=True)

        # target = value;
        if self._check("ident") and self._peek().kind == "op" \
                and self._peek().text == "=" \
                and self._peek(2).text != "=":
            target = self._advance().text
            self._expect("op", "=")
            value = self._parse_expr()
            self._expect("op", ";")
            return ast.Assign(target=target, value=value, line=tok.line)

        expr = self._parse_expr()
        self._expect("op", ";")
        return ast.ExprStmt(expr=expr, line=tok.line)

    def _parse_if(self, line: int) -> ast.If:
        cond = self._parse_expr()
        then_body = self._parse_block()
        else_body: Optional[List[ast.Stmt]] = None
        if self._accept("kw", "else"):
            if self._check("kw", "if"):
                self._advance()
                else_body = [self._parse_if(self._cur.line)]
            else:
                else_body = self._parse_block()
        return ast.If(cond=cond, then_body=then_body,
                      else_body=else_body, line=line)

    def _parse_match(self, line: int) -> ast.Match:
        scrutinee = self._parse_expr()
        self._expect("op", "{")
        some_var, some_body, none_body = "", None, None
        for __ in range(2):
            if self._accept("kw", "Some"):
                self._expect("op", "(")
                some_var = self._expect("ident").text
                self._expect("op", ")")
                self._expect("op", "=>")
                some_body = self._parse_block()
            elif self._accept("kw", "None"):
                self._expect("op", "=>")
                none_body = self._parse_block()
            else:
                self._error("expected Some(...) or None match arm")
            self._accept("op", ",")
        self._expect("op", "}")
        if some_body is None or none_body is None:
            self._error("match must have exactly one Some and one "
                        "None arm")
        return ast.Match(scrutinee=scrutinee, some_var=some_var,
                         some_body=some_body, none_body=none_body,
                         line=line)

    # -- expressions (precedence climbing) ---------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _binary_level(self, sub, ops) -> ast.Expr:
        left = sub()
        while self._cur.kind == "op" and self._cur.text in ops:
            op = self._advance().text
            right = sub()
            left = ast.Binary(op=op, left=left, right=right,
                              line=self._cur.line)
        return left

    def _parse_or(self) -> ast.Expr:
        return self._binary_level(self._parse_and, {"||"})

    def _parse_and(self) -> ast.Expr:
        return self._binary_level(self._parse_cmp, {"&&"})

    def _parse_cmp(self) -> ast.Expr:
        left = self._parse_bitor()
        if self._cur.kind == "op" and self._cur.text in \
                ("==", "!=", "<", "<=", ">", ">="):
            op = self._advance().text
            right = self._parse_bitor()
            return ast.Binary(op=op, left=left, right=right,
                              line=self._cur.line)
        return left

    def _parse_bitor(self) -> ast.Expr:
        return self._binary_level(self._parse_bitxor, {"|"})

    def _parse_bitxor(self) -> ast.Expr:
        return self._binary_level(self._parse_bitand, {"^"})

    def _parse_bitand(self) -> ast.Expr:
        return self._binary_level(self._parse_shift, {"&"})

    def _parse_shift(self) -> ast.Expr:
        return self._binary_level(self._parse_add, {"<<", ">>"})

    def _parse_add(self) -> ast.Expr:
        return self._binary_level(self._parse_mul, {"+", "-"})

    def _parse_mul(self) -> ast.Expr:
        return self._binary_level(self._parse_cast, {"*", "/", "%"})

    def _parse_cast(self) -> ast.Expr:
        expr = self._parse_unary()
        while self._accept("kw", "as"):
            target = self._parse_type()
            expr = ast.Cast(operand=expr, target=target,
                            line=self._cur.line)
        return expr

    def _parse_unary(self) -> ast.Expr:
        tok = self._cur
        if tok.kind == "op" and tok.text in ("-", "!", "*"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=tok.text, operand=operand,
                             line=tok.line)
        if tok.kind == "op" and tok.text == "&":
            self._advance()
            mut = self._accept("kw", "mut") is not None
            operand = self._parse_unary()
            return ast.Borrow(operand=operand, mut=mut, line=tok.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._check("op", ".") and self._peek().kind in \
                ("ident",):
            self._advance()
            method = self._expect("ident").text
            self._expect("op", "(")
            args = self._parse_args()
            expr = ast.MethodCall(receiver=expr, method=method,
                                  args=args, line=self._cur.line)
        return expr

    def _parse_args(self) -> List[ast.Expr]:
        args: List[ast.Expr] = []
        while not self._check("op", ")"):
            if args:
                self._expect("op", ",")
            args.append(self._parse_expr())
        self._expect("op", ")")
        return args

    def _parse_primary(self) -> ast.Expr:
        tok = self._cur

        if tok.kind == "int":
            self._advance()
            text = tok.text.replace("_", "")
            value = int(text, 16) if text.lower().startswith("0x") \
                else int(text)
            return ast.IntLit(value=value, line=tok.line)

        if tok.kind == "str":
            self._advance()
            return ast.StrLit(value=tok.text, line=tok.line)

        if self._accept("kw", "true"):
            return ast.BoolLit(value=True, line=tok.line)
        if self._accept("kw", "false"):
            return ast.BoolLit(value=False, line=tok.line)
        if self._accept("kw", "None"):
            return ast.NoneLit(line=tok.line)
        if self._accept("kw", "Some"):
            self._expect("op", "(")
            inner = self._parse_expr()
            self._expect("op", ")")
            return ast.SomeExpr(inner=inner, line=tok.line)

        if tok.kind == "ident":
            # panic!("message")
            if tok.text == "panic" and self._peek().kind == "op" \
                    and self._peek().text == "!":
                self._advance()
                self._advance()
                self._expect("op", "(")
                message = ""
                if self._check("str"):
                    message = self._advance().text
                self._expect("op", ")")
                return ast.Panic(message=message, line=tok.line)
            # call or bare name
            if self._peek().kind == "op" and self._peek().text == "(":
                name = self._advance().text
                self._expect("op", "(")
                args = self._parse_args()
                return ast.Call(func=name, args=args, line=tok.line)
            self._advance()
            return ast.Name(ident=tok.text, line=tok.line)

        if self._accept("op", "("):
            expr = self._parse_expr()
            self._expect("op", ")")
            return expr

        self._error("expected an expression")
        raise AssertionError("unreachable")  # pragma: no cover


def parse_program(source: str) -> ast.Program:
    """Parse SafeLang source into an AST."""
    return Parser(tokenize(source)).parse_program()
