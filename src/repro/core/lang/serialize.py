"""Typed-AST serialization: the compiled extension image format.

The toolchain's output artifact is the *checked, type-annotated* AST,
serialized deterministically.  The signature covers this serialized
form, so whatever the kernel deserializes at load time is exactly what
the toolchain verified — the loader performs structural decoding and
symbol fixup only, never semantic analysis (§3.1's decoupling).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.lang import ast
from repro.core.lang import types as T
from repro.errors import SafeLangError


# -- types --------------------------------------------------------------------

def ty_to_str(ty: Optional[T.Ty]) -> Optional[str]:
    """Render a type to its canonical string form."""
    if ty is None:
        return None
    if isinstance(ty, T.PrimTy):
        return ty.name
    if isinstance(ty, T.RefTy):
        prefix = "&mut " if ty.mut else "&"
        return prefix + ty_to_str(ty.inner)
    if isinstance(ty, T.OptionTy):
        return f"Option<{ty_to_str(ty.inner)}>"
    if isinstance(ty, T.VecTy):
        return f"Vec<{ty_to_str(ty.inner)}>"
    if isinstance(ty, T.ResourceTy):
        return ty.name
    raise SafeLangError(f"unserializable type {ty!r}")


def str_to_ty(text: Optional[str]) -> Optional[T.Ty]:
    """Parse the canonical string form back to a type."""
    if text is None:
        return None
    text = text.strip()
    if text.startswith("&mut "):
        return T.RefTy(str_to_ty(text[5:]), mut=True)
    if text.startswith("&"):
        return T.RefTy(str_to_ty(text[1:]), mut=False)
    if text.startswith("Option<") and text.endswith(">"):
        return T.OptionTy(str_to_ty(text[7:-1]))
    if text.startswith("Vec<") and text.endswith(">"):
        return T.VecTy(str_to_ty(text[4:-1]))
    primitive = T.prim(text)
    if primitive is not None:
        return primitive
    return T.ResourceTy(text)


# -- expressions -----------------------------------------------------------------

def expr_to_dict(node: Optional[ast.Expr]) -> Optional[Dict[str, Any]]:
    """Serialize one expression subtree."""
    if node is None:
        return None
    data: Dict[str, Any] = {
        "k": type(node).__name__,
        "line": node.line,
        "ty": ty_to_str(node.ty),
    }
    if isinstance(node, ast.IntLit):
        data["value"] = node.value
    elif isinstance(node, ast.BoolLit):
        data["value"] = node.value
    elif isinstance(node, ast.StrLit):
        data["value"] = node.value
    elif isinstance(node, ast.NoneLit):
        pass
    elif isinstance(node, ast.SomeExpr):
        data["inner"] = expr_to_dict(node.inner)
    elif isinstance(node, ast.Name):
        data["ident"] = node.ident
    elif isinstance(node, ast.Unary):
        data["op"] = node.op
        data["operand"] = expr_to_dict(node.operand)
    elif isinstance(node, ast.Binary):
        data["op"] = node.op
        data["left"] = expr_to_dict(node.left)
        data["right"] = expr_to_dict(node.right)
    elif isinstance(node, ast.Cast):
        data["operand"] = expr_to_dict(node.operand)
        data["target"] = ty_to_str(node.target)
    elif isinstance(node, ast.Borrow):
        data["operand"] = expr_to_dict(node.operand)
        data["mut"] = node.mut
    elif isinstance(node, ast.Call):
        data["func"] = node.func
        data["args"] = [expr_to_dict(a) for a in node.args]
    elif isinstance(node, ast.MethodCall):
        data["receiver"] = expr_to_dict(node.receiver)
        data["method"] = node.method
        data["args"] = [expr_to_dict(a) for a in node.args]
    elif isinstance(node, ast.Panic):
        data["message"] = node.message
    else:
        raise SafeLangError(f"unserializable expr {type(node).__name__}")
    return data


def dict_to_expr(data: Optional[Dict[str, Any]]) -> Optional[ast.Expr]:
    """Deserialize one expression subtree."""
    if data is None:
        return None
    kind = data["k"]
    line = data.get("line", 0)
    ty = str_to_ty(data.get("ty"))
    if kind == "IntLit":
        node: ast.Expr = ast.IntLit(value=data["value"], line=line)
    elif kind == "BoolLit":
        node = ast.BoolLit(value=data["value"], line=line)
    elif kind == "StrLit":
        node = ast.StrLit(value=data["value"], line=line)
    elif kind == "NoneLit":
        node = ast.NoneLit(line=line)
    elif kind == "SomeExpr":
        node = ast.SomeExpr(inner=dict_to_expr(data["inner"]), line=line)
    elif kind == "Name":
        node = ast.Name(ident=data["ident"], line=line)
    elif kind == "Unary":
        node = ast.Unary(op=data["op"],
                         operand=dict_to_expr(data["operand"]),
                         line=line)
    elif kind == "Binary":
        node = ast.Binary(op=data["op"], left=dict_to_expr(data["left"]),
                          right=dict_to_expr(data["right"]), line=line)
    elif kind == "Cast":
        node = ast.Cast(operand=dict_to_expr(data["operand"]),
                        target=str_to_ty(data["target"]), line=line)
    elif kind == "Borrow":
        node = ast.Borrow(operand=dict_to_expr(data["operand"]),
                          mut=data["mut"], line=line)
    elif kind == "Call":
        node = ast.Call(func=data["func"],
                        args=[dict_to_expr(a) for a in data["args"]],
                        line=line)
    elif kind == "MethodCall":
        node = ast.MethodCall(receiver=dict_to_expr(data["receiver"]),
                              method=data["method"],
                              args=[dict_to_expr(a)
                                    for a in data["args"]],
                              line=line)
    elif kind == "Panic":
        node = ast.Panic(message=data["message"], line=line)
    else:
        raise SafeLangError(f"unknown expr kind {kind!r} in image")
    node.ty = ty
    return node


# -- statements --------------------------------------------------------------------

def stmt_to_dict(stmt: ast.Stmt) -> Dict[str, Any]:
    """Serialize one statement."""
    data: Dict[str, Any] = {"k": type(stmt).__name__,
                            "line": stmt.line}
    if isinstance(stmt, ast.Let):
        data.update(name=stmt.name, mut=stmt.mut,
                    declared=ty_to_str(stmt.declared_ty),
                    value=expr_to_dict(stmt.value))
    elif isinstance(stmt, ast.Assign):
        data.update(target=stmt.target, value=expr_to_dict(stmt.value),
                    through_ref=stmt.through_ref)
    elif isinstance(stmt, ast.ExprStmt):
        data.update(expr=expr_to_dict(stmt.expr))
    elif isinstance(stmt, ast.If):
        data.update(cond=expr_to_dict(stmt.cond),
                    then=[stmt_to_dict(s) for s in stmt.then_body],
                    els=[stmt_to_dict(s) for s in stmt.else_body]
                    if stmt.else_body is not None else None)
    elif isinstance(stmt, ast.While):
        data.update(cond=expr_to_dict(stmt.cond),
                    body=[stmt_to_dict(s) for s in stmt.body])
    elif isinstance(stmt, ast.For):
        data.update(var=stmt.var, lo=expr_to_dict(stmt.lo),
                    hi=expr_to_dict(stmt.hi),
                    body=[stmt_to_dict(s) for s in stmt.body])
    elif isinstance(stmt, ast.Match):
        data.update(scrutinee=expr_to_dict(stmt.scrutinee),
                    some_var=stmt.some_var,
                    some=[stmt_to_dict(s) for s in stmt.some_body],
                    none=[stmt_to_dict(s) for s in stmt.none_body])
    elif isinstance(stmt, ast.Return):
        data.update(value=expr_to_dict(stmt.value))
    elif isinstance(stmt, (ast.Break, ast.Continue)):
        pass
    elif isinstance(stmt, ast.DropStmt):
        data.update(name=stmt.name)
    else:
        raise SafeLangError(
            f"unserializable stmt {type(stmt).__name__}")
    return data


def dict_to_stmt(data: Dict[str, Any]) -> ast.Stmt:
    """Deserialize one statement."""
    kind = data["k"]
    line = data.get("line", 0)
    if kind == "Let":
        return ast.Let(name=data["name"], mut=data["mut"],
                       declared_ty=str_to_ty(data.get("declared")),
                       value=dict_to_expr(data["value"]), line=line)
    if kind == "Assign":
        return ast.Assign(target=data["target"],
                          value=dict_to_expr(data["value"]),
                          line=line,
                          through_ref=data.get("through_ref", False))
    if kind == "ExprStmt":
        return ast.ExprStmt(expr=dict_to_expr(data["expr"]), line=line)
    if kind == "If":
        return ast.If(cond=dict_to_expr(data["cond"]),
                      then_body=[dict_to_stmt(s) for s in data["then"]],
                      else_body=[dict_to_stmt(s) for s in data["els"]]
                      if data.get("els") is not None else None,
                      line=line)
    if kind == "While":
        return ast.While(cond=dict_to_expr(data["cond"]),
                         body=[dict_to_stmt(s) for s in data["body"]],
                         line=line)
    if kind == "For":
        return ast.For(var=data["var"], lo=dict_to_expr(data["lo"]),
                       hi=dict_to_expr(data["hi"]),
                       body=[dict_to_stmt(s) for s in data["body"]],
                       line=line)
    if kind == "Match":
        return ast.Match(scrutinee=dict_to_expr(data["scrutinee"]),
                         some_var=data["some_var"],
                         some_body=[dict_to_stmt(s)
                                    for s in data["some"]],
                         none_body=[dict_to_stmt(s)
                                    for s in data["none"]],
                         line=line)
    if kind == "Return":
        return ast.Return(value=dict_to_expr(data.get("value")),
                          line=line)
    if kind == "Break":
        return ast.Break(line=line)
    if kind == "Continue":
        return ast.Continue(line=line)
    if kind == "DropStmt":
        return ast.DropStmt(name=data["name"], line=line)
    raise SafeLangError(f"unknown stmt kind {kind!r} in image")


# -- programs -----------------------------------------------------------------------

def program_to_dict(program: ast.Program) -> Dict[str, Any]:
    """Serialize a whole (typed) program."""
    return {
        "functions": [
            {
                "name": fn.name,
                "params": [{"name": p.name, "ty": ty_to_str(p.ty)}
                           for p in fn.params],
                "ret": ty_to_str(fn.ret_ty),
                "body": [stmt_to_dict(s) for s in fn.body],
                "line": fn.line,
            }
            for fn in program.functions
        ],
    }


def dict_to_program(data: Dict[str, Any]) -> ast.Program:
    """Deserialize a program image."""
    functions: List[ast.FnDef] = []
    for fn_data in data["functions"]:
        functions.append(ast.FnDef(
            name=fn_data["name"],
            params=[ast.Param(p["name"], str_to_ty(p["ty"]))
                    for p in fn_data["params"]],
            ret_ty=str_to_ty(fn_data["ret"]),
            body=[dict_to_stmt(s) for s in fn_data["body"]],
            line=fn_data.get("line", 0),
        ))
    return ast.Program(functions=functions)
