"""SafeLang ownership and borrow checker.

Enforces the move/borrow discipline the paper's proposal rests on
(§3.1-3.2): kernel resource handles are move-only values, so exactly
one owner exists at any time, the trusted destructor runs exactly
once, and a handle cannot be used after it was consumed.  Borrows
follow the one-``&mut``-xor-many-``&`` rule, lexically scoped to the
binding that holds them.

The checker is deliberately lexical (no non-lexical lifetimes): it is
*stricter* than rustc, never more permissive, which is the sound
direction for a safety argument.
"""

from __future__ import annotations

import copy as copymod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.core.lang import ast
from repro.core.lang import types as T
from repro.errors import BorrowCheckError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kcrate.api import ApiTable


@dataclass
class BVar:
    """Ownership state of one binding."""

    ty: T.Ty
    state: str = "live"                      # live | moved
    shared_by: Set[str] = field(default_factory=set)
    mut_by: Optional[str] = None
    #: variable this binding borrows, when it holds a reference
    borrow_of: Optional[str] = None
    borrow_mut: bool = False

    @property
    def borrowed(self) -> bool:
        """True while any borrow of this binding is live."""
        return bool(self.shared_by) or self.mut_by is not None


class BorrowChecker:
    """Check one (already type-annotated) program."""

    def __init__(self, program: ast.Program, api: "ApiTable") -> None:
        self.program = program
        self.api = api
        self._scopes: List[Dict[str, BVar]] = []

    def check(self) -> None:
        """Raises :class:`BorrowCheckError` on any violation."""
        for fn in self.program.functions:
            self._scopes = [{}]
            for param in fn.params:
                self._scopes[-1][param.name] = BVar(ty=param.ty)
            self._check_block(fn.body)
            self._scopes.pop()

    def _fail(self, line: int, message: str) -> None:
        raise BorrowCheckError(f"line {line}: {message}")

    # -- scope management -----------------------------------------------------

    def _push(self) -> None:
        self._scopes.append({})

    def _pop(self) -> None:
        # bindings dying at scope exit release the borrows they hold
        dying = self._scopes.pop()
        for name, var in dying.items():
            if var.borrow_of is not None:
                self._release_borrow(name, var)

    def _release_borrow(self, holder: str, var: BVar) -> None:
        target = self._find(var.borrow_of)
        if target is None:
            return
        target.shared_by.discard(holder)
        if target.mut_by == holder:
            target.mut_by = None

    def _find(self, name: str) -> Optional[BVar]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    # -- statements -------------------------------------------------------------

    def _check_block(self, body: List[ast.Stmt]) -> None:
        self._push()
        for stmt in body:
            self._check_stmt(stmt)
        self._pop()

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Let):
            self._check_expr(stmt.value, consume=True)
            var = BVar(ty=stmt.value.ty if stmt.declared_ty is None
                       else stmt.declared_ty)
            if isinstance(stmt.value, ast.Borrow):
                target_name = stmt.value.operand.ident
                var.borrow_of = target_name
                var.borrow_mut = stmt.value.mut
                self._register_borrow(stmt.line, stmt.name, target_name,
                                      stmt.value.mut)
            self._scopes[-1][stmt.name] = var
            return
        if isinstance(stmt, ast.Assign):
            self._check_expr(stmt.value, consume=True)
            var = self._find(stmt.target)
            if var is None:
                self._fail(stmt.line, f"unknown variable {stmt.target!r}")
            if stmt.through_ref:
                if var.state == "moved":
                    self._fail(stmt.line, f"use of moved reference "
                               f"{stmt.target!r}")
                return
            if var.borrowed:
                self._fail(stmt.line, f"cannot assign to "
                           f"{stmt.target!r} while it is borrowed")
            # overwriting releases any borrow the old value held
            if var.borrow_of is not None:
                self._release_borrow(stmt.target, var)
                var.borrow_of = None
            if isinstance(stmt.value, ast.Borrow):
                target_name = stmt.value.operand.ident
                var.borrow_of = target_name
                var.borrow_mut = stmt.value.mut
                self._register_borrow(stmt.line, stmt.target,
                                      target_name, stmt.value.mut)
            var.state = "live"
            return
        if isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, consume=True)
            return
        if isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, consume=True)
            before = self._snapshot()
            self._check_block(stmt.then_body)
            after_then = self._snapshot()
            self._restore(before)
            if stmt.else_body is not None:
                self._check_block(stmt.else_body)
            self._merge_moves(after_then)
            return
        if isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, consume=True)
            # two passes: a move of an outer variable inside the body
            # fails on the second pass, modeling "moved in a previous
            # loop iteration"
            self._check_block(stmt.body)
            self._check_block(stmt.body)
            self._check_expr(stmt.cond, consume=True)
            return
        if isinstance(stmt, ast.For):
            self._check_expr(stmt.lo, consume=True)
            self._check_expr(stmt.hi, consume=True)
            for __ in range(2):
                self._push()
                self._scopes[-1][stmt.var] = BVar(ty=stmt.lo.ty)
                for inner in stmt.body:
                    self._check_stmt(inner)
                self._pop()
            return
        if isinstance(stmt, ast.Match):
            self._check_expr(stmt.scrutinee, consume=True)
            before = self._snapshot()
            self._push()
            scrut_ty = stmt.scrutinee.ty
            inner_ty = scrut_ty.inner if isinstance(scrut_ty,
                                                    T.OptionTy) else scrut_ty
            self._scopes[-1][stmt.some_var] = BVar(ty=inner_ty)
            for inner in stmt.some_body:
                self._check_stmt(inner)
            self._pop()
            after_some = self._snapshot()
            self._restore(before)
            self._check_block(stmt.none_body)
            self._merge_moves(after_some)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, consume=True)
            return
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return
        if isinstance(stmt, ast.DropStmt):
            var = self._find(stmt.name)
            if var is None:
                self._fail(stmt.line, f"drop of unknown {stmt.name!r}")
            if var.state == "moved":
                self._fail(stmt.line, f"drop of moved value "
                           f"{stmt.name!r}")
            if var.borrowed:
                self._fail(stmt.line, f"cannot drop {stmt.name!r} "
                           "while it is borrowed")
            if var.borrow_of is not None:
                self._release_borrow(stmt.name, var)
                var.borrow_of = None
            var.state = "moved"
            return
        if isinstance(stmt, ast.UnsafeBlock):
            return  # rejected earlier by unsafeck

    # -- merge machinery for branching control flow ---------------------------------

    def _snapshot(self) -> List[Dict[str, BVar]]:
        return copymod.deepcopy(self._scopes)

    def _restore(self, snap: List[Dict[str, BVar]]) -> None:
        self._scopes = copymod.deepcopy(snap)

    def _merge_moves(self, other: List[Dict[str, BVar]]) -> None:
        """A value moved in either branch is moved afterwards."""
        for scope, other_scope in zip(self._scopes, other):
            for name, var in scope.items():
                theirs = other_scope.get(name)
                if theirs is not None and theirs.state == "moved":
                    var.state = "moved"

    # -- borrows --------------------------------------------------------------------

    def _register_borrow(self, line: int, holder: str, target: str,
                         mut: bool) -> None:
        var = self._find(target)
        if var is None:
            self._fail(line, f"borrow of unknown variable {target!r}")
        if var.state == "moved":
            self._fail(line, f"borrow of moved value {target!r}")
        if mut:
            if var.borrowed:
                self._fail(line, f"cannot borrow {target!r} as mutable:"
                           " already borrowed")
            var.mut_by = holder
        else:
            if var.mut_by is not None:
                self._fail(line, f"cannot borrow {target!r} as shared: "
                           "already mutably borrowed")
            var.shared_by.add(holder)

    # -- expressions -------------------------------------------------------------------

    def _check_expr(self, node: ast.Expr, consume: bool) -> None:
        """Walk an expression; ``consume`` means the value is used
        (moved if move-typed)."""
        if isinstance(node, (ast.IntLit, ast.BoolLit, ast.StrLit,
                             ast.NoneLit, ast.Panic)):
            return
        if isinstance(node, ast.SomeExpr):
            self._check_expr(node.inner, consume=True)
            return
        if isinstance(node, ast.Name):
            self._use_name(node, consume)
            return
        if isinstance(node, ast.Unary):
            if node.op == "*" and isinstance(node.operand, ast.Name):
                # dereference reads through the reference; it does not
                # move the reference itself (Rust: a reborrow)
                self._use_name(node.operand, consume=False)
                return
            self._check_expr(node.operand, consume=True)
            return
        if isinstance(node, ast.Binary):
            self._check_expr(node.left, consume=True)
            self._check_expr(node.right, consume=True)
            return
        if isinstance(node, ast.Cast):
            self._check_expr(node.operand, consume=True)
            return
        if isinstance(node, ast.Borrow):
            # a temporary borrow: legal iff a borrow could be taken now
            target = node.operand.ident
            var = self._find(target)
            if var is None:
                self._fail(node.line, f"borrow of unknown {target!r}")
            if var.state == "moved":
                self._fail(node.line, f"borrow of moved value "
                           f"{target!r}")
            if node.mut and var.borrowed:
                self._fail(node.line, f"cannot borrow {target!r} as "
                           "mutable: already borrowed")
            if not node.mut and var.mut_by is not None:
                self._fail(node.line, f"cannot borrow {target!r}: "
                           "already mutably borrowed")
            return
        if isinstance(node, ast.Call):
            for arg in node.args:
                self._check_expr(arg, consume=True)
            return
        if isinstance(node, ast.MethodCall):
            # receiver is borrowed for the duration of the call
            if isinstance(node.receiver, ast.Name):
                self._use_name(node.receiver, consume=False)
            else:
                self._check_expr(node.receiver, consume=True)
            for arg in node.args:
                self._check_expr(arg, consume=True)
            return

    def _use_name(self, node: ast.Name, consume: bool) -> None:
        var = self._find(node.ident)
        if var is None:
            self._fail(node.line, f"unknown variable {node.ident!r}")
        if var.state == "moved":
            self._fail(node.line, f"use of moved value {node.ident!r}")
        ty = var.ty
        if consume and not ty.is_copy():
            if var.borrowed:
                self._fail(node.line, f"cannot move {node.ident!r} "
                           "while it is borrowed")
            if var.borrow_of is not None:
                self._release_borrow(node.ident, var)
                var.borrow_of = None
            var.state = "moved"
        elif var.mut_by is not None and consume:
            self._fail(node.line, f"cannot read {node.ident!r} while "
                       "it is mutably borrowed")
