"""SafeLang abstract syntax tree.

Every node carries its source line for diagnostics.  The type checker
annotates expression nodes in-place (``node.ty``); the borrow checker
and the runtime interpreter both walk this same tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.lang.types import Ty


class Node:
    """Base class for AST nodes."""

    line: int = 0


# -- expressions ---------------------------------------------------------------

class Expr(Node):
    """Base class for expressions; ``ty`` is filled by the checker."""

    ty: Optional[Ty] = None


@dataclass
class IntLit(Expr):
    """Integer literal."""

    value: int
    line: int = 0
    ty: Optional[Ty] = None


@dataclass
class BoolLit(Expr):
    """Boolean literal."""

    value: bool
    line: int = 0
    ty: Optional[Ty] = None


@dataclass
class StrLit(Expr):
    """String literal."""

    value: str
    line: int = 0
    ty: Optional[Ty] = None


@dataclass
class NoneLit(Expr):
    """``None`` literal (needs an Option context)."""

    line: int = 0
    ty: Optional[Ty] = None


@dataclass
class SomeExpr(Expr):
    """``Some(inner)``."""

    inner: Expr = None
    line: int = 0
    ty: Optional[Ty] = None


@dataclass
class Name(Expr):
    """A variable reference."""

    ident: str = ""
    line: int = 0
    ty: Optional[Ty] = None


@dataclass
class Unary(Expr):
    """Unary operator: ``-``, ``!``, or deref ``*``."""

    op: str = ""          # "-" or "!"
    operand: Expr = None
    line: int = 0
    ty: Optional[Ty] = None


@dataclass
class Binary(Expr):
    """Binary operator application."""

    op: str = ""
    left: Expr = None
    right: Expr = None
    line: int = 0
    ty: Optional[Ty] = None


@dataclass
class Cast(Expr):
    """``expr as u32`` — explicit truncating conversion (never UB)."""

    operand: Expr = None
    target: Ty = None
    line: int = 0
    ty: Optional[Ty] = None


@dataclass
class Borrow(Expr):
    """``&x`` / ``&mut x``."""

    operand: Expr = None
    mut: bool = False
    line: int = 0
    ty: Optional[Ty] = None


@dataclass
class Call(Expr):
    """Free function call: user function or kcrate API."""

    func: str = ""
    args: List[Expr] = field(default_factory=list)
    line: int = 0
    ty: Optional[Ty] = None


@dataclass
class MethodCall(Expr):
    """``receiver.method(args)`` — resolved against the receiver type."""

    receiver: Expr = None
    method: str = ""
    args: List[Expr] = field(default_factory=list)
    line: int = 0
    ty: Optional[Ty] = None


@dataclass
class Panic(Expr):
    """``panic!(msg)`` — contained by the runtime, never a crash."""

    message: str = ""
    line: int = 0
    ty: Optional[Ty] = None


# -- statements ----------------------------------------------------------------

class Stmt(Node):
    """Base class for statements."""


@dataclass
class Let(Stmt):
    """``let [mut] name [: ty] = value;``."""

    name: str = ""
    mut: bool = False
    declared_ty: Optional[Ty] = None
    value: Expr = None
    line: int = 0


@dataclass
class Assign(Stmt):
    """``name = value;`` or ``*name = value;``."""

    target: str = ""
    value: Expr = None
    line: int = 0
    #: assignment through a &mut reference (``*r = v``)
    through_ref: bool = False


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect."""

    expr: Expr = None
    line: int = 0


@dataclass
class If(Stmt):
    """``if cond { } [else { }]``."""

    cond: Expr = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: Optional[List[Stmt]] = None
    line: int = 0


@dataclass
class While(Stmt):
    """``while cond { }``."""

    cond: Expr = None
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class For(Stmt):
    """``for i in lo..hi { ... }``."""

    var: str = ""
    lo: Expr = None
    hi: Expr = None
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Match(Stmt):
    """``match expr { Some(x) => {...}, None => {...} }``."""

    scrutinee: Expr = None
    some_var: str = ""
    some_body: List[Stmt] = field(default_factory=list)
    none_body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Return(Stmt):
    """``return [expr];``."""

    value: Optional[Expr] = None
    line: int = 0


@dataclass
class Break(Stmt):
    """``break;``."""

    line: int = 0


@dataclass
class Continue(Stmt):
    """``continue;``."""

    line: int = 0


@dataclass
class DropStmt(Stmt):
    """``drop(x)`` — explicit early destruction."""

    name: str = ""
    line: int = 0


@dataclass
class UnsafeBlock(Stmt):
    """Parsed only so :mod:`unsafeck` can reject it with a good
    message (extensions must be 100% safe code, §3.1)."""

    body: List[Stmt] = field(default_factory=list)
    line: int = 0


# -- items -----------------------------------------------------------------------

@dataclass
class Param:
    """One function parameter."""

    name: str
    ty: Ty
    line: int = 0


@dataclass
class FnDef(Node):
    """One function definition."""

    name: str
    params: List[Param]
    ret_ty: Ty
    body: List[Stmt]
    line: int = 0


@dataclass
class Program(Node):
    """A SafeLang compilation unit: a set of functions, one of which
    is the entry point (named ``prog``)."""

    functions: List[FnDef] = field(default_factory=list)

    def function(self, name: str) -> Optional[FnDef]:
        """Find a function by name."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None
