"""The unsafe-code gate.

Paper §3.1: extensions are restricted "to only use safe Rust (i.e., no
unsafe blocks)", so the compiler's guarantees actually hold.  The
parser accepts ``unsafe { ... }`` syntactically — this pass is what
rejects it, with a diagnostic pointing at the offending block.  Unsafe
code exists only inside the trusted kernel crate, which extensions
cannot modify.
"""

from __future__ import annotations

from typing import List

from repro.core.lang import ast
from repro.errors import UnsafeCodeError


def reject_unsafe(program: ast.Program) -> None:
    """Raise :class:`UnsafeCodeError` if any function contains an
    ``unsafe`` block."""
    for fn in program.functions:
        _walk(fn.body, fn.name)


def _walk(body: List[ast.Stmt], fn_name: str) -> None:
    for stmt in body:
        if isinstance(stmt, ast.UnsafeBlock):
            raise UnsafeCodeError(
                f"line {stmt.line}: function {fn_name!r} contains an "
                "unsafe block; extensions must be written entirely in "
                "safe code")
        for attr in ("then_body", "else_body", "body", "some_body",
                     "none_body"):
            inner = getattr(stmt, attr, None)
            if inner:
                _walk(inner, fn_name)
