"""SafeLang lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import LexError

KEYWORDS = {
    "fn", "let", "mut", "if", "else", "while", "for", "in", "return",
    "true", "false", "match", "break", "continue", "unsafe", "drop",
    "Some", "None", "as",
}

#: multi-character operators, longest first
_MULTI_OPS = [
    "..", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
]

_SINGLE_OPS = set("+-*/%&|^<>=!(){}[],;:.#")


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str   # "ident", "int", "str", "kw", "op", "eof"
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


def tokenize(source: str) -> List[Token]:
    """Tokenize SafeLang source.  Raises :class:`LexError`."""
    tokens: List[Token] = []
    line, col = 1, 1
    index = 0
    length = len(source)

    def error(message: str) -> None:
        raise LexError(message, line=line, col=col)

    while index < length:
        ch = source[index]

        # whitespace
        if ch == "\n":
            line += 1
            col = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            col += 1
            continue

        # line comments
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue

        start_line, start_col = line, col

        # numbers (decimal and hex)
        if ch.isdigit():
            end = index
            if source.startswith("0x", index) \
                    or source.startswith("0X", index):
                end = index + 2
                while end < length and (source[end] in "0123456789abcdefABCDEF_"):
                    end += 1
            else:
                while end < length and (source[end].isdigit()
                                        or source[end] == "_"):
                    end += 1
            text = source[index:end]
            tokens.append(Token("int", text, start_line, start_col))
            col += end - index
            index = end
            continue

        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            end = index
            while end < length and (source[end].isalnum()
                                    or source[end] == "_"):
                end += 1
            text = source[index:end]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_col))
            col += end - index
            index = end
            continue

        # string literals
        if ch == '"':
            end = index + 1
            chunks: List[str] = []
            while end < length and source[end] != '"':
                if source[end] == "\n":
                    error("unterminated string literal")
                if source[end] == "\\" and end + 1 < length:
                    escape = source[end + 1]
                    chunks.append({"n": "\n", "t": "\t", '"': '"',
                                   "\\": "\\"}.get(escape, escape))
                    end += 2
                    continue
                chunks.append(source[end])
                end += 1
            if end >= length:
                error("unterminated string literal")
            tokens.append(Token("str", "".join(chunks),
                                start_line, start_col))
            col += end - index + 1
            index = end + 1
            continue

        # operators
        matched = None
        for op in _MULTI_OPS:
            if source.startswith(op, index):
                matched = op
                break
        if matched is None and ch in _SINGLE_OPS:
            matched = ch
        if matched is None:
            error(f"unexpected character {ch!r}")
        tokens.append(Token("op", matched, start_line, start_col))
        col += len(matched)
        index += len(matched)

    tokens.append(Token("eof", "", line, col))
    return tokens
