"""SafeLang's type system values.

Types are immutable and compared structurally.  Resource types (kernel
handles like ``Socket``) are *move-only*: the ownership system tracks
them so the kcrate destructor runs exactly once — the RAII property
the paper uses to kill the reference-leak bug class (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

INT_TYPES = {"i64", "u64", "i32", "u32", "u8"}

#: (umin, umax) or (smin, smax) per width
INT_RANGES = {
    "i64": (-(1 << 63), (1 << 63) - 1),
    "u64": (0, (1 << 64) - 1),
    "i32": (-(1 << 31), (1 << 31) - 1),
    "u32": (0, (1 << 32) - 1),
    "u8": (0, 255),
}


class Ty:
    """Base class for all SafeLang types."""

    def is_copy(self) -> bool:
        """Copy types duplicate on assignment; move types transfer
        ownership."""
        return False

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == \
            getattr(other, "__dict__", None)

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(
            (k, str(v)) for k, v in self.__dict__.items()))))


@dataclass(frozen=True, eq=False)
class PrimTy(Ty):
    """Primitive: integers, bool, str, unit."""

    name: str

    def is_copy(self) -> bool:
        """Primitives copy freely."""
        return True

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class RefTy(Ty):
    """``&T`` or ``&mut T``."""

    inner: Ty
    mut: bool = False

    def is_copy(self) -> bool:
        """Shared refs are Copy; a ``&mut`` moves."""
        return not self.mut

    def __repr__(self) -> str:
        return f"&{'mut ' if self.mut else ''}{self.inner!r}"


@dataclass(frozen=True, eq=False)
class OptionTy(Ty):
    """``Option<T>`` — SafeLang's replacement for nullable pointers."""

    inner: Ty

    def is_copy(self) -> bool:
        """An Option copies iff its payload does."""
        return self.inner.is_copy()

    def __repr__(self) -> str:
        return f"Option<{self.inner!r}>"


@dataclass(frozen=True, eq=False)
class ResourceTy(Ty):
    """A kernel resource handle (Socket, SpinGuard, RingRecord, ...).

    Move-only; carries a trusted destructor in the kcrate."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class VecTy(Ty):
    """``Vec<T>`` backed by the per-CPU memory pool (§4's dynamic
    allocation extension)."""

    inner: Ty

    def __repr__(self) -> str:
        return f"Vec<{self.inner!r}>"


# canonical instances
I64 = PrimTy("i64")
U64 = PrimTy("u64")
I32 = PrimTy("i32")
U32 = PrimTy("u32")
U8 = PrimTy("u8")
BOOL = PrimTy("bool")
STR = PrimTy("str")
UNIT = PrimTy("unit")

_PRIM_BY_NAME = {t.name: t for t in (I64, U64, I32, U32, U8, BOOL, STR,
                                     UNIT)}


def prim(name: str) -> Optional[PrimTy]:
    """Primitive type by name, if it exists."""
    return _PRIM_BY_NAME.get(name)


def is_int(ty: Ty) -> bool:
    """True for integer primitives."""
    return isinstance(ty, PrimTy) and ty.name in INT_TYPES


def int_range(ty: Ty) -> Tuple[int, int]:
    """Value range of an integer type."""
    assert isinstance(ty, PrimTy)
    return INT_RANGES[ty.name]


def is_signed(ty: Ty) -> bool:
    """True for signed integer primitives."""
    return isinstance(ty, PrimTy) and ty.name.startswith("i")
