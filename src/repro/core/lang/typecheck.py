"""SafeLang type checker.

Annotates every expression with its type and rejects ill-typed
programs.  Together with the borrow checker this is the userspace
replacement for the in-kernel verifier (§3.1: "the Rust compiler
takes the role of the verifier").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.lang import ast
from repro.core.lang import types as T
from repro.errors import TypeCheckError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kcrate.api import ApiTable

_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}
_BOOL_OPS = {"&&", "||"}
_ARITH_OPS = {"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}


@dataclass
class FnSig:
    """Signature of a user-defined function."""

    params: List[T.Ty]
    ret: T.Ty


@dataclass
class VarInfo:
    """One binding in scope."""

    ty: T.Ty
    mut: bool


def _stmt_diverges(stmt: ast.Stmt) -> bool:
    """Conservative: does this statement always leave the function?"""
    if isinstance(stmt, ast.Return):
        return True
    if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr,
                                                     ast.Panic):
        return True
    if isinstance(stmt, ast.If):
        return (stmt.else_body is not None
                and _block_diverges(stmt.then_body)
                and _block_diverges(stmt.else_body))
    if isinstance(stmt, ast.Match):
        return _block_diverges(stmt.some_body) \
            and _block_diverges(stmt.none_body)
    return False


def _block_diverges(body) -> bool:
    """Does the block always return/panic before falling off its end?"""
    return any(_stmt_diverges(stmt) for stmt in body)


class TypeChecker:
    """Check one program against the kcrate API."""

    def __init__(self, program: ast.Program, api: "ApiTable") -> None:
        self.program = program
        self.api = api
        self.fn_sigs: Dict[str, FnSig] = {}
        self._scopes: List[Dict[str, VarInfo]] = []
        self._current_ret: T.Ty = T.UNIT

    # -- entry ----------------------------------------------------------------

    def check(self) -> None:
        """Type-check every function.  Raises :class:`TypeCheckError`."""
        for fn in self.program.functions:
            if fn.name in self.api.functions:
                self._fail(fn.line, f"function {fn.name!r} shadows a "
                           "kernel-crate function")
            if fn.name in self.fn_sigs:
                self._fail(fn.line, f"duplicate function {fn.name!r}")
            self.fn_sigs[fn.name] = FnSig(
                [p.ty for p in fn.params], fn.ret_ty)
        for fn in self.program.functions:
            self._check_fn(fn)

    def _fail(self, line: int, message: str) -> None:
        raise TypeCheckError(f"line {line}: {message}")

    # -- scopes ---------------------------------------------------------------

    def _push(self) -> None:
        self._scopes.append({})

    def _pop(self) -> None:
        self._scopes.pop()

    def _declare(self, name: str, ty: T.Ty, mut: bool,
                 line: int) -> None:
        self._scopes[-1][name] = VarInfo(ty, mut)

    def _lookup(self, name: str) -> Optional[VarInfo]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    # -- functions -------------------------------------------------------------

    def _check_fn(self, fn: ast.FnDef) -> None:
        self._scopes = []
        self._push()
        seen = set()
        for param in fn.params:
            if param.name in seen:
                self._fail(fn.line,
                           f"duplicate parameter {param.name!r}")
            seen.add(param.name)
            self._declare(param.name, param.ty, mut=False, line=fn.line)
        self._current_ret = fn.ret_ty
        self._check_block(fn.body)
        self._pop()
        if fn.ret_ty != T.UNIT and not _block_diverges(fn.body):
            self._fail(fn.line,
                       f"function {fn.name!r} may reach the end "
                       f"without returning {fn.ret_ty!r}")

    def _check_block(self, body: List[ast.Stmt]) -> None:
        self._push()
        for stmt in body:
            self._check_stmt(stmt)
        self._pop()

    # -- statements ----------------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Let):
            ty = self._check_expr(stmt.value, expected=stmt.declared_ty)
            if stmt.declared_ty is not None:
                ty = self._coerce(stmt.value, ty, stmt.declared_ty,
                                  stmt.line)
            self._declare(stmt.name, ty, stmt.mut, stmt.line)
            return
        if isinstance(stmt, ast.Assign):
            info = self._lookup(stmt.target)
            if info is None:
                self._fail(stmt.line,
                           f"assignment to undeclared {stmt.target!r}")
            if stmt.through_ref:
                if not isinstance(info.ty, T.RefTy) or not info.ty.mut:
                    self._fail(stmt.line,
                               f"*{stmt.target} requires a &mut "
                               "reference")
                target_ty = info.ty.inner
            else:
                if not info.mut:
                    self._fail(stmt.line, f"cannot assign to immutable "
                               f"binding {stmt.target!r} (missing mut)")
                target_ty = info.ty
            value_ty = self._check_expr(stmt.value, expected=target_ty)
            self._coerce(stmt.value, value_ty, target_ty, stmt.line)
            return
        if isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr)
            return
        if isinstance(stmt, ast.If):
            cond_ty = self._check_expr(stmt.cond, expected=T.BOOL)
            self._coerce(stmt.cond, cond_ty, T.BOOL, stmt.line)
            self._check_block(stmt.then_body)
            if stmt.else_body is not None:
                self._check_block(stmt.else_body)
            return
        if isinstance(stmt, ast.While):
            cond_ty = self._check_expr(stmt.cond, expected=T.BOOL)
            self._coerce(stmt.cond, cond_ty, T.BOOL, stmt.line)
            self._check_block(stmt.body)
            return
        if isinstance(stmt, ast.For):
            if isinstance(stmt.lo, ast.IntLit) \
                    and isinstance(stmt.hi, ast.IntLit) \
                    and stmt.lo.value >= 0 and stmt.hi.value >= 0:
                # literal ranges are counts: default to u64
                lo_ty = self._check_expr(stmt.lo, expected=T.U64)
                hi_ty = self._check_expr(stmt.hi, expected=T.U64)
            elif isinstance(stmt.lo, ast.IntLit) \
                    and not isinstance(stmt.hi, ast.IntLit):
                # a literal lower bound adopts the upper bound's type
                hi_ty = self._deref(self._check_expr(stmt.hi))
                lo_ty = self._check_expr(stmt.lo, expected=hi_ty)
                lo_ty = self._coerce(stmt.lo, lo_ty, hi_ty, stmt.line)
            else:
                lo_ty = self._deref(self._check_expr(stmt.lo))
                hi_ty = self._check_expr(stmt.hi, expected=lo_ty)
                self._coerce(stmt.hi, hi_ty, lo_ty, stmt.line)
            if not T.is_int(lo_ty):
                self._fail(stmt.line, "for-range bounds must be "
                           "integers")
            self._push()
            self._declare(stmt.var, lo_ty, mut=False, line=stmt.line)
            for inner in stmt.body:
                self._check_stmt(inner)
            self._pop()
            return
        if isinstance(stmt, ast.Match):
            scrut_ty = self._check_expr(stmt.scrutinee)
            scrut_ty = self._deref(scrut_ty)
            if not isinstance(scrut_ty, T.OptionTy):
                self._fail(stmt.line,
                           f"match requires an Option, got {scrut_ty!r}")
            self._push()
            self._declare(stmt.some_var, scrut_ty.inner, mut=False,
                          line=stmt.line)
            for inner in stmt.some_body:
                self._check_stmt(inner)
            self._pop()
            self._check_block(stmt.none_body)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                if self._current_ret != T.UNIT:
                    self._fail(stmt.line, "missing return value")
                return
            value_ty = self._check_expr(stmt.value,
                                        expected=self._current_ret)
            self._coerce(stmt.value, value_ty, self._current_ret,
                         stmt.line)
            return
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return
        if isinstance(stmt, ast.DropStmt):
            if self._lookup(stmt.name) is None:
                self._fail(stmt.line, f"drop of undeclared "
                           f"{stmt.name!r}")
            return
        if isinstance(stmt, ast.UnsafeBlock):
            # unsafeck rejects these before we ever run; belt-and-braces
            self._fail(stmt.line, "unsafe block in extension code")
        self._fail(getattr(stmt, "line", 0),
                   f"unhandled statement {type(stmt).__name__}")

    # -- expressions -------------------------------------------------------------------

    def _deref(self, ty: T.Ty) -> T.Ty:
        """Auto-deref shared references for value contexts."""
        if isinstance(ty, T.RefTy):
            return ty.inner
        return ty

    def _coerce(self, node: ast.Expr, actual: T.Ty, expected: T.Ty,
                line: int) -> T.Ty:
        """Unify ``actual`` into ``expected`` or fail."""
        if actual == expected:
            return expected
        # integer literals adopt the expected integer type
        if isinstance(node, ast.IntLit) and T.is_int(expected):
            lo, hi = T.int_range(expected)
            if lo <= node.value <= hi:
                node.ty = expected
                return expected
            self._fail(line, f"literal {node.value} out of range for "
                       f"{expected!r}")
        # None adopts any Option type
        if isinstance(node, ast.NoneLit) \
                and isinstance(expected, T.OptionTy):
            node.ty = expected
            return expected
        if isinstance(node, ast.SomeExpr) \
                and isinstance(expected, T.OptionTy) \
                and isinstance(actual, T.OptionTy):
            inner = self._coerce(node.inner, actual.inner,
                                 expected.inner, line)
            node.ty = T.OptionTy(inner)
            return node.ty
        # panic! never returns; it satisfies any expectation
        if isinstance(node, ast.Panic):
            node.ty = expected
            return expected
        # auto-deref &T -> T for Copy T
        if isinstance(actual, T.RefTy) and actual.inner == expected \
                and expected.is_copy():
            return expected
        self._fail(line, f"type mismatch: expected {expected!r}, "
                   f"got {actual!r}")
        raise AssertionError  # pragma: no cover

    def _check_expr(self, node: ast.Expr,
                    expected: Optional[T.Ty] = None) -> T.Ty:
        ty = self._infer(node, expected)
        node.ty = ty
        return ty

    def _infer(self, node: ast.Expr,
               expected: Optional[T.Ty]) -> T.Ty:
        if isinstance(node, ast.IntLit):
            if expected is not None and T.is_int(expected):
                lo, hi = T.int_range(expected)
                if lo <= node.value <= hi:
                    return expected
            if node.value > T.INT_RANGES["i64"][1]:
                return T.U64
            return T.I64
        if isinstance(node, ast.BoolLit):
            return T.BOOL
        if isinstance(node, ast.StrLit):
            return T.STR
        if isinstance(node, ast.NoneLit):
            if isinstance(expected, T.OptionTy):
                return expected
            self._fail(node.line, "cannot infer the type of None here")
        if isinstance(node, ast.SomeExpr):
            inner_expected = expected.inner \
                if isinstance(expected, T.OptionTy) else None
            inner = self._check_expr(node.inner, inner_expected)
            return T.OptionTy(inner)
        if isinstance(node, ast.Name):
            info = self._lookup(node.ident)
            if info is None:
                self._fail(node.line, f"undeclared name {node.ident!r}")
            return info.ty
        if isinstance(node, ast.Panic):
            return expected if expected is not None else T.UNIT
        if isinstance(node, ast.Unary):
            return self._infer_unary(node, expected)
        if isinstance(node, ast.Binary):
            return self._infer_binary(node, expected)
        if isinstance(node, ast.Cast):
            src_ty = self._deref(self._check_expr(node.operand))
            if not (T.is_int(src_ty) and T.is_int(node.target)):
                self._fail(node.line, "as-casts are integer-to-integer "
                           "only")
            return node.target
        if isinstance(node, ast.Borrow):
            return self._infer_borrow(node)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.MethodCall):
            return self._infer_method(node)
        self._fail(getattr(node, "line", 0),
                   f"unhandled expression {type(node).__name__}")
        raise AssertionError  # pragma: no cover

    def _infer_unary(self, node: ast.Unary,
                     expected: Optional[T.Ty]) -> T.Ty:
        if node.op == "*":
            ty = self._check_expr(node.operand)
            if not isinstance(ty, T.RefTy):
                self._fail(node.line, "cannot dereference a "
                           "non-reference")
            return ty.inner
        ty = self._deref(self._check_expr(node.operand, expected))
        if node.op == "-":
            if not T.is_int(ty):
                self._fail(node.line, "unary minus requires an integer")
            if not T.is_signed(ty):
                self._fail(node.line, "unary minus requires a signed "
                           "integer")
            return ty
        if node.op == "!":
            if ty != T.BOOL:
                self._fail(node.line, "! requires a bool")
            return T.BOOL
        self._fail(node.line, f"unknown unary op {node.op!r}")
        raise AssertionError  # pragma: no cover

    def _infer_binary(self, node: ast.Binary,
                      expected: Optional[T.Ty]) -> T.Ty:
        if node.op in _BOOL_OPS:
            for side in (node.left, node.right):
                ty = self._deref(self._check_expr(side, T.BOOL))
                self._coerce(side, ty, T.BOOL, node.line)
            return T.BOOL

        left_ty = self._deref(self._check_expr(
            node.left, expected if node.op in _ARITH_OPS else None))
        # literals on the left adopt the right side's type
        if isinstance(node.left, ast.IntLit):
            right_ty = self._deref(self._check_expr(
                node.right,
                expected if node.op in _ARITH_OPS else None))
            left_ty = self._coerce(node.left, left_ty, right_ty,
                                   node.line) if T.is_int(right_ty) \
                else left_ty
        else:
            right_ty = self._deref(self._check_expr(node.right,
                                                    left_ty))
            right_ty = self._coerce(node.right, right_ty, left_ty,
                                    node.line)

        if node.op in _CMP_OPS:
            if left_ty in (T.BOOL, T.STR) and node.op in ("==", "!="):
                return T.BOOL
            if not T.is_int(left_ty):
                self._fail(node.line, f"cannot compare {left_ty!r}")
            return T.BOOL
        if node.op in _ARITH_OPS:
            if not T.is_int(left_ty):
                self._fail(node.line,
                           f"arithmetic requires integers, got "
                           f"{left_ty!r}")
            return left_ty
        self._fail(node.line, f"unknown operator {node.op!r}")
        raise AssertionError  # pragma: no cover

    def _infer_borrow(self, node: ast.Borrow) -> T.Ty:
        if not isinstance(node.operand, ast.Name):
            self._fail(node.line, "can only borrow a variable")
        info = self._lookup(node.operand.ident)
        if info is None:
            self._fail(node.line,
                       f"undeclared name {node.operand.ident!r}")
        if node.mut and not info.mut:
            self._fail(node.line,
                       f"cannot borrow {node.operand.ident!r} as "
                       "mutable: not declared mut")
        self._check_expr(node.operand)
        return T.RefTy(info.ty, mut=node.mut)

    def _infer_call(self, node: ast.Call) -> T.Ty:
        api_fn = self.api.functions.get(node.func)
        if api_fn is not None:
            params, ret = api_fn.params, api_fn.ret
        elif node.func in self.fn_sigs:
            sig = self.fn_sigs[node.func]
            params, ret = sig.params, sig.ret
        else:
            self._fail(node.line, f"unknown function {node.func!r}")
        if len(node.args) != len(params):
            self._fail(node.line,
                       f"{node.func} expects {len(params)} args, got "
                       f"{len(node.args)}")
        for arg, param_ty in zip(node.args, params):
            arg_ty = self._check_expr(arg, expected=param_ty)
            self._coerce(arg, arg_ty, param_ty, node.line)
        return ret

    def _infer_method(self, node: ast.MethodCall) -> T.Ty:
        recv_ty = self._check_expr(node.receiver)
        option_ty = recv_ty.inner if isinstance(recv_ty, T.RefTy) \
            else recv_ty
        if isinstance(option_ty, T.OptionTy):
            return self._infer_option_method(node, option_ty)
        method = self.api.method_for(recv_ty, node.method)
        if method is None:
            self._fail(node.line,
                       f"type {recv_ty!r} has no method "
                       f"{node.method!r}")
        if len(node.args) != len(method.params):
            self._fail(node.line,
                       f"{node.method} expects {len(method.params)} "
                       f"args, got {len(node.args)}")
        for arg, param_ty in zip(node.args, method.params):
            arg_ty = self._check_expr(arg, expected=param_ty)
            self._coerce(arg, arg_ty, param_ty, node.line)
        return method.ret

    def _infer_option_method(self, node: ast.MethodCall,
                             option_ty: T.OptionTy) -> T.Ty:
        """Built-in Option combinators: is_some, is_none, unwrap_or."""
        if node.method in ("is_some", "is_none"):
            if node.args:
                self._fail(node.line,
                           f"{node.method} takes no arguments")
            return T.BOOL
        if node.method == "unwrap_or":
            if len(node.args) != 1:
                self._fail(node.line, "unwrap_or takes one argument")
            if not option_ty.inner.is_copy():
                self._fail(node.line,
                           "unwrap_or requires a Copy inner type "
                           "(use match for resources)")
            arg_ty = self._check_expr(node.args[0],
                                      expected=option_ty.inner)
            self._coerce(node.args[0], arg_ty, option_ty.inner,
                         node.line)
            return option_ty.inner
        self._fail(node.line,
                   f"Option has no method {node.method!r}")
        raise AssertionError  # pragma: no cover
