"""SafeLang: the Rust-like extension language.

The pipeline (all in trusted userspace, per Figure 5):

    source --lex--> tokens --parse--> AST
           --unsafeck--> (reject ``unsafe``)
           --typecheck--> typed AST
           --borrowck--> ownership-checked AST

The language deliberately mirrors the Rust features the paper leans
on: move semantics and borrow rules for kernel resources (RAII release
on scope exit), ``Option`` instead of nullable pointers, and
overflow-checked integer arithmetic that panics instead of wrapping.
"""

from repro.core.lang.lexer import tokenize
from repro.core.lang.parser import parse_program
from repro.core.lang.typecheck import TypeChecker
from repro.core.lang.borrowck import BorrowChecker
from repro.core.lang.unsafeck import reject_unsafe

__all__ = ["tokenize", "parse_program", "TypeChecker", "BorrowChecker",
           "reject_unsafe"]
