"""Stack protection for extensions.

Table 2 lists stack protection as a runtime-enforced property: the
interpreter charges each call frame against a fixed budget and
terminates the extension (safely) when recursion or oversized frames
would overflow — rather than corrupting adjacent kernel memory as an
unchecked native stack would.
"""

from __future__ import annotations

from repro.errors import StackOverflow


class StackGuard:
    """Call-depth and stack-byte accounting for one invocation."""

    def __init__(self, max_depth: int = 64,
                 max_bytes: int = 8192) -> None:
        self.max_depth = max_depth
        self.max_bytes = max_bytes
        self.depth = 0
        self.bytes_used = 0
        self.peak_depth = 0

    def push(self, frame_bytes: int, where: str = "call") -> None:
        """Enter a frame; raises :class:`StackOverflow` on violation."""
        if self.depth + 1 > self.max_depth:
            raise StackOverflow(
                f"call depth {self.depth + 1} exceeds "
                f"{self.max_depth} at {where}", source="stack-guard")
        if self.bytes_used + frame_bytes > self.max_bytes:
            raise StackOverflow(
                f"stack bytes {self.bytes_used + frame_bytes} exceed "
                f"{self.max_bytes} at {where}", source="stack-guard")
        self.depth += 1
        self.bytes_used += frame_bytes
        self.peak_depth = max(self.peak_depth, self.depth)

    def pop(self, frame_bytes: int) -> None:
        """Leave a frame."""
        self.depth -= 1
        self.bytes_used -= frame_bytes
