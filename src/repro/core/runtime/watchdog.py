"""The watchdog timer: runtime termination enforcement.

eBPF buys termination with static limits on loops and program size —
and still fails (§2.2's bpf_loop attack).  The proposed framework
instead lets extensions loop freely and bounds *time*: a watchdog
armed at entry fires when the extension exceeds its budget, and the
runtime terminates it safely (trusted cleanup, kernel survives).

The watchdog hangs off the virtual clock, so it interrupts an
extension mid-execution the way a timer interrupt would.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.kernel.ktime import VirtualClock


class Watchdog:
    """One armed watchdog for one extension invocation."""

    def __init__(self, clock: VirtualClock, budget_ns: int,
                 name: str = "extension",
                 on_fire: Optional[Callable[["Watchdog"], None]] = None,
                 faults: Optional[object] = None,
                 log: Optional[object] = None) -> None:
        if budget_ns <= 0:
            raise ValueError("watchdog budget must be positive")
        self.clock = clock
        self.budget_ns = budget_ns
        self.name = name
        #: optional kernel log; a fire is then visible in dmesg, which
        #: is how the recovery audit trail sees watchdog kills
        self.log = log
        #: total budget exhaustions over this watchdog's lifetime
        self.fire_count = 0
        self.last_fire_ns: Optional[int] = None
        #: invoked exactly once per firing, at the clock tick that
        #: exhausts the budget (telemetry hooks in here)
        self.on_fire = on_fire
        #: optional fault-injection plane; the ``watchdog.fire``
        #: failpoint perturbs *delivery*, never cancels it outright
        self.faults = faults
        self._deadline: Optional[int] = None
        self._fired = False
        self._callback_name = f"watchdog:{name}:{id(self)}"

    @property
    def fired(self) -> bool:
        """True once the budget was exceeded."""
        return self._fired

    @property
    def armed(self) -> bool:
        """True while the watchdog is counting down."""
        return self._deadline is not None

    def arm(self) -> None:
        """Start the countdown (registers a clock tick hook).

        Idempotent: re-arming replaces any previous registration, so a
        watchdog never holds more than one tick hook.
        """
        self.clock.remove_tick_callback(self._callback_name)
        self._deadline = self.clock.now_ns + self.budget_ns
        self._fired = False
        self.clock.add_tick_callback(self._callback_name, self._on_tick)

    def disarm(self) -> None:
        """Stop the countdown (normal extension exit)."""
        self._deadline = None
        self.clock.remove_tick_callback(self._callback_name)

    def _on_tick(self, now_ns: int) -> None:
        if self._deadline is not None and now_ns >= self._deadline:
            if self.faults is not None and self.faults.armed:
                # this runs inside a clock tick, so the plane must not
                # advance the clock (apply_delay=False); a delay fault
                # pushes the deadline instead, any other fault skips
                # this delivery attempt by one tick — delivery is
                # delayed, never lost, so runaway extensions still die
                action = self.faults.check("watchdog.fire",
                                           apply_delay=False)
                if action is not None:
                    self._deadline = now_ns + max(1, action.delay_ns)
                    return
            # one-shot: firing deregisters the hook, so a watchdog
            # whose extension is killed before disarm() doesn't leave
            # a stale callback ticking on the clock forever
            self._fired = True
            self._deadline = None
            self.fire_count += 1
            self.last_fire_ns = now_ns
            self.clock.remove_tick_callback(self._callback_name)
            if self.log is not None:
                self.log.log(
                    now_ns,
                    f"watchdog: extension {self.name!r} exceeded its "
                    f"{self.budget_ns}ns budget, terminating",
                    level="warn")
            if self.on_fire is not None:
                self.on_fire(self)

    def remaining_ns(self) -> int:
        """Budget left; 0 when expired or disarmed."""
        if self._deadline is None:
            return 0
        return max(0, self._deadline - self.clock.now_ns)
