"""Lightweight runtime mechanisms (§3.1).

Language safety covers memory, types and resources; what it cannot
cover statically without crushing expressiveness — termination, stack
growth — is enforced *at run time*, cheaply:

* :mod:`watchdog` — a virtual-clock timer that terminates overrunning
  extensions (the anti-RCU-stall mechanism),
* :mod:`cleanup` — the on-the-fly resource/destructor list that makes
  termination *safe*: only trusted kcrate destructors run, no
  ABI-based unwinding, no user ``Drop`` code,
* :mod:`stack` — extension stack depth/size protection,
* :mod:`mempool` — the pre-allocated per-CPU memory pool used for the
  unwind context and for dynamic allocation (§4).
"""

from repro.core.runtime.watchdog import Watchdog
from repro.core.runtime.cleanup import CleanupList
from repro.core.runtime.mempool import MemoryPool
from repro.core.runtime.stack import StackGuard

__all__ = ["Watchdog", "CleanupList", "MemoryPool", "StackGuard"]
