"""Safe termination: the trusted cleanup list.

§3.1 rejects ABI-based stack unwinding for kernel extensions (cleanup
must not fail, unwinding wants dynamic allocation, user ``Drop`` code
is untrusted) and proposes instead: "record allocated kernel resources
and their destructors on-the-fly during program execution.  When
termination is needed, the destructors of allocated resources are
invoked" — all of which are implemented by the kernel crate, so "all
the cleanup code is trusted and guaranteed not to fail".

The record itself lives in the pre-allocated memory pool, never the
allocator, because termination may happen in interrupt context [17].
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.kcrate.resources import KernelResource
from repro.core.runtime.mempool import MemoryPool


class CleanupList:
    """Resources acquired by the running extension, release order
    LIFO."""

    def __init__(self, pool: Optional[MemoryPool] = None,
                 capacity: int = 128) -> None:
        self._entries: List[KernelResource] = []
        self.capacity = capacity
        self._pool = pool
        # model the §3.1 no-dynamic-allocation constraint: the record
        # storage is carved from the pool up front
        self._pool_block = pool.alloc(capacity * 16) if pool else None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def live_count(self) -> int:
        """Resources registered and not yet released."""
        return sum(1 for r in self._entries if not r.released)

    def register(self, resource: KernelResource) -> None:
        """Record a newly acquired resource and its destructor."""
        if len(self._entries) >= self.capacity:
            # slots of already-released resources are reusable
            self._entries = [r for r in self._entries
                             if not r.released]
        if len(self._entries) >= self.capacity:
            # releasing everything and refusing is the fail-safe
            self.terminate()
            raise MemoryError(
                "cleanup list capacity exceeded; extension terminated")
        self._entries.append(resource)

    def release_scope_exit(self, resource: KernelResource) -> None:
        """Normal RAII: a value went out of scope."""
        resource.release()

    def terminate(self) -> int:
        """Abnormal termination (watchdog, panic): run every pending
        trusted destructor, newest first.  Returns how many ran."""
        ran = 0
        for resource in reversed(self._entries):
            if not resource.released:
                resource.release()
                ran += 1
        self._entries.clear()
        return ran

    def teardown(self) -> int:
        """End-of-invocation teardown: run any pending destructors and
        give the record storage back to the pool.

        The record block is carved at construction; without this it
        outlives the invocation and the pool leaks ``capacity * 16``
        bytes per run.  Idempotent.  Returns how many destructors ran.
        """
        ran = self.terminate()
        if self._pool is not None and self._pool_block is not None:
            self._pool.free(self._pool_block)
        self.assert_torn_down()
        return ran

    @property
    def torn_down(self) -> bool:
        """True once the record storage went back to the pool."""
        return self._pool_block is None or self._pool_block.freed

    def assert_torn_down(self) -> None:
        """Leak check: the record block must be back in the pool and
        every destructor must have run."""
        if not self.torn_down:
            raise AssertionError(
                "cleanup record block leaked: "
                f"{self._pool_block.size} bytes still carved from "
                "the pool after teardown")
        self.assert_clean()

    def assert_clean(self) -> None:
        """Post-run invariant: nothing left unreleased."""
        leaked = [r for r in self._entries if not r.released]
        if leaked:
            raise AssertionError(f"unreleased resources: {leaked}")
