"""Memory-protection-key domains (§4: protection *from* unsafe code).

The paper's open question: language safety protects the kernel from
the extension, but nothing protects the *extension* from "an errant
write from unsafe code into code or data belonging to the safe
extension" — the majority of the kernel is unsafe C.  It points at
lightweight hardware protection (Intel PKU/PKS, [27, 30, 33]) as the
promising mechanism.

This module models that mechanism.  Allocations are tagged with a
protection key; every *writer* executes in a domain whose PKRU-like
mask says which keys it may write.  The kcrate tags the extension's
private memory (pool, records) with the extension key; unsafe kernel
code runs in a domain without write rights to that key, so a stray
helper write into extension memory faults — *containment* — instead of
silently corrupting the safe world.

The check rides the simulated kernel's access-policy hook, so it
covers every write in the system, exactly like a hardware key check
on every TLB-tagged access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ProtectionKeyFault
from repro.kernel.memory import Allocation, KernelAddressSpace

#: the default key: memory writable by everyone (kernel behaviour
#: without MPK)
PKEY_DEFAULT = 0
#: key protecting safe-extension private memory
PKEY_EXTENSION = 1
#: key protecting the trusted kcrate's own records
PKEY_KCRATE = 2


@dataclass
class Domain:
    """One execution domain and its write rights."""

    name: str
    #: source-tag prefixes that execute in this domain
    source_prefixes: Tuple[str, ...]
    #: pkeys this domain may write
    writable_pkeys: frozenset


class MemoryProtectionKeys:
    """Per-kernel pkey state: tags, domains, and the access policy."""

    def __init__(self, mem: KernelAddressSpace) -> None:
        self.mem = mem
        self._tags: Dict[int, int] = {}       # alloc_id -> pkey
        self.enabled = True
        self.faults: List[ProtectionKeyFault] = []
        self._domains: List[Domain] = [
            Domain("safe-extension",
                   ("safelang:", "kcrate", "pool:"),
                   frozenset({PKEY_DEFAULT, PKEY_EXTENSION,
                              PKEY_KCRATE})),
        ]
        #: everything not matching a domain prefix is unsafe kernel
        self._unsafe_domain = Domain(
            "unsafe-kernel", (), frozenset({PKEY_DEFAULT}))
        mem.access_policy = self._check_write

    # -- tagging -------------------------------------------------------------

    def tag(self, alloc: Allocation, pkey: int) -> None:
        """Assign a protection key to an allocation."""
        self._tags[alloc.alloc_id] = pkey

    def pkey_of(self, alloc: Optional[Allocation]) -> int:
        """The key guarding an allocation (default when untagged)."""
        if alloc is None:
            return PKEY_DEFAULT
        return self._tags.get(alloc.alloc_id, PKEY_DEFAULT)

    def tagged_count(self, pkey: int) -> int:
        """How many allocations carry ``pkey``."""
        return sum(1 for value in self._tags.values() if value == pkey)

    # -- domains --------------------------------------------------------------

    def domain_for(self, source: str) -> Domain:
        """Which domain a source tag executes in."""
        for domain in self._domains:
            if any(source.startswith(prefix)
                   for prefix in domain.source_prefixes):
                return domain
        return self._unsafe_domain

    # -- the policy hook ----------------------------------------------------------

    def _check_write(self, alloc: Allocation, address: int, size: int,
                     source: str, write: bool) -> None:
        if not self.enabled or not write:
            return
        pkey = self.pkey_of(alloc)
        if pkey == PKEY_DEFAULT:
            return
        domain = self.domain_for(source)
        if pkey in domain.writable_pkeys:
            return
        fault = ProtectionKeyFault(
            f"pkey {pkey} write fault: {source} ({domain.name}) wrote "
            f"{size} bytes at {address:#x} into protected "
            f"{alloc.type_name}",
            address=address, pkey=pkey, source=source)
        self.faults.append(fault)
        raise fault


def protect_extension_memory(mpk: MemoryProtectionKeys,
                             pool_region: Allocation) -> None:
    """Tag the extension's private regions with the extension key."""
    mpk.tag(pool_region, PKEY_EXTENSION)
