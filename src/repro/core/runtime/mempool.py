"""The pre-allocated per-CPU memory pool.

Extensions often run in non-sleepable contexts where no allocator is
available; §3.1/§4 therefore give each CPU a fixed region carved out
at framework init, with simple bump allocation reset after each
extension invocation.  The pool backs both the runtime's own needs
(the cleanup record) and SafeLang's ``Vec`` dynamic allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.kernel.cpu import Cpu
from repro.kernel.kernel import Kernel


@dataclass
class PoolBlock:
    """One bump allocation inside the pool."""

    offset: int
    size: int
    #: set by :meth:`MemoryPool.free` / :meth:`MemoryPool.reset`
    freed: bool = False


class MemoryPool:
    """Bump allocator over a fixed per-CPU region."""

    def __init__(self, kernel: Kernel, cpu: Cpu,
                 size: int = 16384) -> None:
        self.kernel = kernel
        self.cpu = cpu
        self.size = size
        # the region is real kernel memory, charged to the framework
        self.region = kernel.mem.kmalloc(
            size, type_name="safelang_pool", owner=f"pool:cpu{cpu.cpu_id}")
        cpu.storage["safelang_pool"] = self
        self._top = 0
        self.high_water = 0
        self.failed_allocs = 0
        self._blocks: List[PoolBlock] = []

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._top

    def live_blocks(self) -> List[PoolBlock]:
        """Blocks handed out and not yet freed (leak accounting)."""
        return [b for b in self._blocks if not b.freed]

    def alloc(self, size: int) -> Optional[PoolBlock]:
        """Allocate ``size`` bytes; None when the pool is exhausted —
        never a sleeping fallback, this is interrupt-safe by
        construction.

        ``alloc(0)`` is defined as a refusal: it returns None without
        counting as an exhaustion failure (there is no such thing as a
        zero-byte object in the pool).  Negative sizes are caller bugs
        and raise ``ValueError``.
        """
        if size < 0:
            raise ValueError(f"negative allocation size {size}")
        if size == 0:
            return None
        faults = self.kernel.faults
        if faults.armed and faults.check("pool.alloc") is not None:
            # injected exhaustion: indistinguishable from the real
            # thing — counted, telemetered, NULL to the extension
            self.failed_allocs += 1
            self.kernel.telemetry.record_pool_failure(self.cpu.cpu_id)
            return None
        aligned = (size + 7) & ~7
        if self._top + aligned > self.size:
            self.failed_allocs += 1
            self.kernel.telemetry.record_pool_failure(self.cpu.cpu_id)
            return None
        block = PoolBlock(self._top, size)
        self._top += aligned
        self.high_water = max(self.high_water, self._top)
        self._blocks.append(block)
        return block

    def free(self, block: Optional[PoolBlock]) -> None:
        """Return one block to the pool.  Idempotent; None is a no-op
        (a failed alloc has nothing to free).

        A bump allocator can only rewind: freeing the topmost block
        (and any already-freed blocks below it) lowers the bump
        pointer; freeing a middle block just marks it so the space is
        reclaimed when everything above it goes."""
        if block is None or block.freed:
            return
        block.freed = True
        while self._blocks and self._blocks[-1].freed:
            top_block = self._blocks.pop()
            self._top = top_block.offset

    def reset(self) -> None:
        """Free everything (end of extension invocation)."""
        for block in self._blocks:
            block.freed = True
        self._blocks.clear()
        self._top = 0

    def destroy(self) -> None:
        """Release the backing region (framework teardown).

        Without this the pool's kmalloc'd region outlives the
        framework — a genuine kernel memory leak, one region per
        framework instance.  Idempotent.
        """
        self.reset()
        if not self.region.freed:
            self.kernel.mem.kfree(self.region)
        if self.cpu.storage.get("safelang_pool") is self:
            del self.cpu.storage["safelang_pool"]
