"""RAII kernel resource handles.

Each handle owns one kernel resource (a socket reference, a spin lock,
a task reference, pool memory).  Its destructor is *trusted kcrate
code*: registered with the runtime's cleanup list at acquisition, run
at scope exit in normal execution, and run by the termination path
when the watchdog fires or the extension panics (§3.1's "record
allocated kernel resources and their destructors on-the-fly").

Release is idempotent — the cleanup list and an explicit ``drop(x)``
may both reach a handle, and double-release of the underlying kernel
object must be impossible by construction.
"""

from __future__ import annotations

from typing import Callable, Optional


class KernelResource:
    """One owned kernel resource with a trusted destructor."""

    def __init__(self, kind: str, name: str,
                 destructor: Callable[[], None],
                 payload: object = None) -> None:
        #: resource class, e.g. "socket", "spin_guard", "task"
        self.kind = kind
        self.name = name
        self._destructor = destructor
        #: the underlying kernel object (Sock, SpinLock, ...)
        self.payload = payload
        self._released = False

    @property
    def released(self) -> bool:
        """True once the destructor has run."""
        return self._released

    def release(self) -> None:
        """Run the trusted destructor (idempotent)."""
        if self._released:
            return
        self._released = True
        self._destructor()

    def __repr__(self) -> str:
        state = "released" if self._released else "live"
        return f"<{self.kind} {self.name} ({state})>"


class VecHandle:
    """A ``Vec<u64>`` backed by the per-CPU memory pool (§4).

    Capacity is whatever the pool grants; ``push`` reports failure
    instead of allocating unboundedly — extensions run in contexts
    where an allocator may not be available [17].
    """

    def __init__(self, pool: "object", capacity: int = 64) -> None:
        self._pool = pool
        self._block: Optional[object] = pool.alloc(capacity * 8)
        self.capacity = capacity if self._block is not None else 0
        self.length = 0
        self._items = [0] * self.capacity

    def push(self, value: int) -> bool:
        """Append; False when capacity is exhausted."""
        if self.length >= self.capacity:
            return False
        self._items[self.length] = value & ((1 << 64) - 1)
        self.length += 1
        return True

    def get(self, index: int) -> Optional[int]:
        """Bounds-checked read."""
        if 0 <= index < self.length:
            return self._items[index]
        return None

    def set(self, index: int, value: int) -> bool:
        """Bounds-checked write."""
        if 0 <= index < self.length:
            self._items[index] = value & ((1 << 64) - 1)
            return True
        return False
