"""The kernel-crate API: SafeLang's entire view of the kernel.

Every function and method here is the §3.2 program in executable form:

* **retired helpers** simply don't exist — ``bpf_strtol`` is
  ``str.parse_i64()``, ``bpf_strncmp`` is a loop over ``byte_at``,
  ``bpf_loop`` is the language's ``for``/``while``;
* **simplified helpers** keep a thin unsafe core but move the
  error-prone parts into this safe boundary — array-map indexing is
  computed here in full precision (killing the [36] 32-bit overflow),
  socket lookups return RAII handles (killing the [34]/[35] refcount
  bugs);
* **wrapped helpers** sanitize their inputs before touching unsafe
  code — the ``sys_bpf`` wrapper builds its attr from borrowed,
  provably valid memory (killing CVE-2022-2785), and task-storage
  takes a ``&Task`` that cannot be NULL (killing [42]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.kcrate.resources import KernelResource, VecHandle
from repro.core.lang import types as T

#: TCP_NEW_SYN_RECV (see impls_net): lookup hits a pending request sock
_TCP_NEW_SYN_RECV = 12

SOCKET = T.ResourceTy("Socket")
TASK = T.ResourceTy("Task")
SPIN_GUARD = T.ResourceTy("SpinGuard")
XDP_CTX = T.ResourceTy("XdpCtx")
TRACE_CTX = T.ResourceTy("TraceCtx")
VEC_U64 = T.VecTy(T.U64)


@dataclass
class ApiFn:
    """One kcrate free function: signature plus trusted impl."""

    name: str
    params: List[T.Ty]
    ret: T.Ty
    impl: Callable
    #: virtual nanoseconds charged per call
    cost: int = 40


@dataclass
class ApiMethod:
    """One method on a kcrate-provided type."""

    recv: str          # type key, e.g. "Socket", "str", "Vec"
    name: str
    params: List[T.Ty]
    ret: T.Ty
    impl: Callable
    cost: int = 20


class ApiTable:
    """Signature + implementation lookup for the type checker and VM."""

    def __init__(self) -> None:
        self.functions: Dict[str, ApiFn] = {}
        self.methods: Dict[Tuple[str, str], ApiMethod] = {}

    def add_fn(self, fn: ApiFn) -> None:
        """Register a free function."""
        self.functions[fn.name] = fn

    def add_method(self, method: ApiMethod) -> None:
        """Register a method."""
        self.methods[(method.recv, method.name)] = method

    def method_for(self, ty: T.Ty, name: str) -> Optional[ApiMethod]:
        """Resolve a method on ``ty`` (auto-dereferencing references)."""
        if isinstance(ty, T.RefTy):
            ty = ty.inner
        if isinstance(ty, T.ResourceTy):
            key = ty.name
        elif isinstance(ty, T.VecTy):
            key = "Vec"
        elif isinstance(ty, T.PrimTy):
            key = ty.name
        else:
            return None
        return self.methods.get((key, name))


def _u64(value: int) -> int:
    return value & ((1 << 64) - 1)


# ---------------------------------------------------------------------------
# implementations (rt is the RtEnv from repro.core.vm)
# ---------------------------------------------------------------------------

def _map_slot(rt, slot: int):
    bpf_map = rt.map_by_slot(slot)
    if bpf_map is None:
        rt.panic(f"extension references unbound map slot {slot}")
    return bpf_map


def _array_value_addr(rt, bpf_map, index: int) -> Optional[int]:
    """Array indexing in safe code, full precision — the §3.2 fix for
    the [36] 32-bit overflow: the multiply happens here, checked,
    before any unsafe memory is touched."""
    if index >= bpf_map.max_entries:
        return None
    return bpf_map.storage.base + index * bpf_map.value_size


def _value_addr(rt, bpf_map, key: int) -> Optional[int]:
    if bpf_map.map_type == "array":
        return _array_value_addr(rt, bpf_map, key)
    key_bytes = (key & ((1 << (bpf_map.key_size * 8)) - 1)).to_bytes(
        bpf_map.key_size, "little")
    return bpf_map.lookup_addr(key_bytes)


def _read_value(rt, bpf_map, addr: int) -> int:
    """Load a map value as an integer (values wider than 8 bytes
    yield their first 8 bytes)."""
    width = min(bpf_map.value_size, 8)
    raw = rt.kernel.mem.read(addr, width, source="kcrate")
    return int.from_bytes(raw, "little")


def _value_bytes(bpf_map, value: int) -> bytes:
    """Encode an integer into a full-width map value."""
    width = bpf_map.value_size
    return (_u64(value) & ((1 << (8 * min(width, 8))) - 1)).to_bytes(
        min(width, 8), "little").ljust(width, b"\x00")


def api_map_lookup(rt, slot: int, key: int):
    """``map_lookup(map, key) -> Option<u64>``."""
    bpf_map = _map_slot(rt, slot)
    addr = _value_addr(rt, bpf_map, key)
    if addr is None:
        return ("none", None)
    return ("some", _read_value(rt, bpf_map, addr))


def api_map_update(rt, slot: int, key: int, value: int) -> int:
    """``map_update(map, key, value) -> i64``."""
    bpf_map = _map_slot(rt, slot)
    if bpf_map.map_type == "array":
        addr = _array_value_addr(rt, bpf_map, key)
        if addr is None:
            return -7  # -E2BIG
        rt.kernel.mem.write(addr, _value_bytes(bpf_map, value),
                            source="kcrate")
        return 0
    key_bytes = (key & ((1 << (bpf_map.key_size * 8)) - 1)).to_bytes(
        bpf_map.key_size, "little")
    return bpf_map.update(key_bytes, _value_bytes(bpf_map, value))


def api_map_delete(rt, slot: int, key: int) -> int:
    """``map_delete(map, key) -> i64``."""
    bpf_map = _map_slot(rt, slot)
    key_bytes = (key & ((1 << (bpf_map.key_size * 8)) - 1)).to_bytes(
        bpf_map.key_size, "little")
    return bpf_map.delete(key_bytes)


def api_sk_lookup_tcp(rt, ip: int, port: int):
    """``sk_lookup_tcp(ip, port) -> Option<Socket>``.

    The RAII rewrite of the [35]-buggy helper: the handle owns *every*
    reference the lookup took — including the request-sock reference
    the C helper used to lose — and the trusted destructor drops them
    all, on any exit path."""
    sock = rt.kernel.lookup_socket(ip, port)
    if sock is None:
        return ("none", None)
    holder = rt.holder
    sock.refs.get(holder)
    reqsk = getattr(sock, "pending_reqsk", None)
    took_reqsk = False
    if reqsk is not None and sock.read_field("state") == _TCP_NEW_SYN_RECV:
        reqsk.refs.get(holder)
        took_reqsk = True

    def destroy() -> None:
        sock.refs.put(holder)
        if took_reqsk:
            reqsk.refs.put(holder)

    handle = KernelResource("socket", f"sock@{sock.address:#x}",
                            destroy, payload=sock)
    rt.register_resource(handle)
    return ("some", handle)


def api_spin_lock(rt, slot: int):
    """``spin_lock(map) -> SpinGuard`` — RAII over bpf_spin_lock [48]:
    the unlock is the guard's destructor, so 'released before
    termination on every path' holds by construction."""
    bpf_map = _map_slot(rt, slot)
    if bpf_map.spin_lock is None:
        rt.panic("map has no spin lock")
    bpf_map.spin_lock.lock(rt.holder)

    def destroy() -> None:
        bpf_map.spin_lock.unlock(rt.holder)

    guard = KernelResource("spin_guard", f"lock@map{slot}", destroy,
                           payload=bpf_map.spin_lock)
    rt.register_resource(guard)
    return guard


def api_current_task(rt):
    """``current_task() -> Task`` — a pinned task handle."""
    task = rt.kernel.current_task
    holder = rt.holder
    task.refs.get(holder)
    handle = KernelResource("task", f"task:{task.pid}",
                            lambda: task.refs.put(holder),
                            payload=task)
    rt.register_resource(handle)
    return handle


def api_task_storage_get(rt, task_handle, slot: int):
    """``task_storage_get(&Task, map) -> Option<u64>``.

    The wrap of [42]: the task argument is a *reference to a live
    handle* — a NULL owner pointer is unrepresentable, so the unsafe
    storage code below never sees one."""
    bpf_map = _map_slot(rt, slot)
    task = task_handle.payload
    addr = bpf_map.storage_for(task.address, True)
    if addr is None:
        return ("none", None)
    return ("some", rt.kernel.mem.read_u64(addr, source="kcrate"))


def api_task_storage_set(rt, task_handle, slot: int, value: int) -> int:
    """``task_storage_set(&Task, map, value) -> i64``."""
    bpf_map = _map_slot(rt, slot)
    task = task_handle.payload
    addr = bpf_map.storage_for(task.address, True)
    if addr is None:
        return -12  # -ENOMEM
    rt.kernel.mem.write_u64(addr, _u64(value), source="kcrate")
    return 0


def api_task_stack_sum(rt, task_handle, max_bytes: int):
    """``task_stack_sum(&Task, max) -> Option<u64>``.

    Safe rewrite of ``bpf_get_task_stack`` [34]: the handle pins the
    task, the read is non-faulting, failure is an honest ``None``."""
    task = task_handle.payload
    copy_len = min(max_bytes, task.kernel_stack.size)
    data = rt.kernel.mem.try_read(task.kernel_stack.base, copy_len)
    if data is None:
        return ("none", None)
    return ("some", _u64(sum(data)))


def api_sys_map_update(rt, slot: int, key: int, value: int) -> int:
    """``sys_map_update(map, key, value) -> i64``.

    The sanitizing wrapper over the ``bpf_sys_bpf`` attack surface
    (§3.2, CVE-2022-2785): the attr union is built *here*, in trusted
    code, from values — there is no pointer field an extension could
    leave NULL."""
    bpf_map = _map_slot(rt, slot)
    mem = rt.kernel.mem
    # build a valid attr in kernel memory the wrapper owns
    attr = mem.kmalloc(32, type_name="bpf_attr", owner="kcrate")
    key_buf = mem.kmalloc(bpf_map.key_size, type_name="key",
                          owner="kcrate")
    val_buf = mem.kmalloc(bpf_map.value_size, type_name="val",
                          owner="kcrate")
    try:
        mem.write(key_buf.base,
                  (key & ((1 << (bpf_map.key_size * 8)) - 1)).to_bytes(
                      bpf_map.key_size, "little"))
        mem.write(val_buf.base, _value_bytes(bpf_map, value))
        mem.write(attr.base, bpf_map.map_fd.to_bytes(4, "little"))
        mem.write_u64(attr.base + 8, key_buf.base)
        mem.write_u64(attr.base + 16, val_buf.base)
        # the unsafe core runs with known-valid pointers
        key_bytes = mem.read(key_buf.base, bpf_map.key_size,
                             source="kcrate")
        value_bytes = mem.read(val_buf.base, bpf_map.value_size,
                               source="kcrate")
        return bpf_map.update(key_bytes, value_bytes)
    finally:
        mem.kfree(val_buf)
        mem.kfree(key_buf)
        mem.kfree(attr)


def api_ringbuf_output(rt, slot: int, value: int) -> int:
    """``ringbuf_output(map, value) -> i64``."""
    bpf_map = _map_slot(rt, slot)
    if bpf_map.map_type != "ringbuf":
        return -22
    return bpf_map.output(_u64(value).to_bytes(8, "little"))


def api_ktime_ns(rt) -> int:
    """``ktime_ns() -> u64``."""
    return rt.kernel.clock.now_ns


def api_pid_tgid(rt) -> int:
    """``pid_tgid() -> u64``."""
    task = rt.kernel.current_task
    return _u64((task.tgid << 32) | task.pid)


def api_cpu_id(rt) -> int:
    """``cpu_id() -> u64``."""
    return rt.kernel.current_cpu.cpu_id


def api_prandom(rt) -> int:
    """``prandom() -> u64`` — deterministic in simulation."""
    rt.prandom_state = _u64(rt.prandom_state * 6364136223846793005
                            + 1442695040888963407)
    return rt.prandom_state >> 16


def api_trace(rt, message: str):
    """``trace(msg)`` — write to the kernel log."""
    rt.kernel.log.log(rt.kernel.clock.now_ns,
                      f"safelang[{rt.prog_name}]: {message}")
    return None


def api_vec_new(rt):
    """``vec_new() -> Vec<u64>`` — pool-backed dynamic memory (§4)."""
    vec = VecHandle(rt.pool)
    return vec


# -- ctx methods ----------------------------------------------------------------

def m_ctx_len(rt, ctx) -> int:
    """``ctx.len()``: packet length."""
    return ctx.payload.read_field("len")


def m_ctx_protocol(rt, ctx) -> int:
    """``ctx.protocol()``."""
    return ctx.payload.read_field("protocol")


def _ctx_load(rt, ctx, off: int, size: int):
    skb = ctx.payload
    length = skb.read_field("len")
    if off + size > length:     # the bounds check, in safe code
        return ("none", None)
    raw = rt.kernel.mem.read(skb.data + off, size, source="kcrate")
    return ("some", int.from_bytes(raw, "little"))


def m_ctx_load_u8(rt, ctx, off: int):
    """``ctx.load_u8(off) -> Option<u64>`` (bounds-checked)."""
    return _ctx_load(rt, ctx, off, 1)


def m_ctx_load_u16(rt, ctx, off: int):
    """``ctx.load_u16(off) -> Option<u64>``."""
    return _ctx_load(rt, ctx, off, 2)


def m_ctx_load_u32(rt, ctx, off: int):
    """``ctx.load_u32(off) -> Option<u64>``."""
    return _ctx_load(rt, ctx, off, 4)


def m_ctx_store_u8(rt, ctx, off: int, value: int) -> bool:
    """``ctx.store_u8(off, v) -> bool`` (bounds-checked write)."""
    skb = ctx.payload
    if off + 1 > skb.read_field("len"):
        return False
    rt.kernel.mem.write(skb.data + off, bytes([value & 0xFF]),
                        source="kcrate")
    return True


# -- socket / task methods ----------------------------------------------------------

def m_sock_src_port(rt, handle) -> int:
    """``sock.src_port()``."""
    return handle.payload.read_field("src_port")


def m_sock_dst_port(rt, handle) -> int:
    """``sock.dst_port()``."""
    return handle.payload.read_field("dst_port")


def m_sock_state(rt, handle) -> int:
    """``sock.state()``."""
    return handle.payload.read_field("state")


def m_task_pid(rt, handle) -> int:
    """``task.pid()``."""
    return handle.payload.pid


def m_task_tgid(rt, handle) -> int:
    """``task.tgid()``."""
    return handle.payload.tgid


# -- str methods ----------------------------------------------------------------------

def m_str_len(rt, s: str) -> int:
    """``s.len()``."""
    return len(s)


def m_str_byte_at(rt, s: str, index: int):
    """``s.byte_at(i) -> Option<u64>``."""
    if 0 <= index < len(s):
        return ("some", ord(s[index]) & 0xFF)
    return ("none", None)


def m_str_parse_i64(rt, s: str):
    """``"42".parse_i64() -> Option<i64>`` — retires bpf_strtol."""
    text = s.strip()
    try:
        value = int(text, 10)
    except ValueError:
        return ("none", None)
    if not -(1 << 63) <= value < (1 << 63):
        return ("none", None)
    return ("some", value)


# -- Vec methods ----------------------------------------------------------------------

def m_vec_push(rt, vec: VecHandle, value: int) -> bool:
    """``v.push(x) -> bool`` (False when the pool is spent)."""
    return vec.push(value)


def m_vec_get(rt, vec: VecHandle, index: int):
    """``v.get(i) -> Option<u64>``."""
    got = vec.get(index)
    return ("none", None) if got is None else ("some", got)


def m_vec_set(rt, vec: VecHandle, index: int, value: int) -> bool:
    """``v.set(i, x) -> bool``."""
    return vec.set(index, value)


def m_vec_len(rt, vec: VecHandle) -> int:
    """``v.len()``."""
    return vec.length


def build_api_table() -> ApiTable:
    """The complete kcrate surface."""
    table = ApiTable()
    u = T.U64
    fns = [
        ApiFn("map_lookup", [u, u], T.OptionTy(u), api_map_lookup, 60),
        ApiFn("map_update", [u, u, u], T.I64, api_map_update, 80),
        ApiFn("map_delete", [u, u], T.I64, api_map_delete, 60),
        ApiFn("sk_lookup_tcp", [u, u], T.OptionTy(SOCKET),
              api_sk_lookup_tcp, 200),
        ApiFn("spin_lock", [u], SPIN_GUARD, api_spin_lock, 30),
        ApiFn("current_task", [], TASK, api_current_task, 20),
        ApiFn("task_storage_get", [T.RefTy(TASK), u], T.OptionTy(u),
              api_task_storage_get, 90),
        ApiFn("task_storage_set", [T.RefTy(TASK), u, u], T.I64,
              api_task_storage_set, 90),
        ApiFn("task_stack_sum", [T.RefTy(TASK), u], T.OptionTy(u),
              api_task_stack_sum, 150),
        ApiFn("sys_map_update", [u, u, u], T.I64, api_sys_map_update,
              300),
        ApiFn("ringbuf_output", [u, u], T.I64, api_ringbuf_output, 70),
        ApiFn("ktime_ns", [], u, api_ktime_ns, 10),
        ApiFn("pid_tgid", [], u, api_pid_tgid, 10),
        ApiFn("cpu_id", [], u, api_cpu_id, 5),
        ApiFn("prandom", [], u, api_prandom, 10),
        ApiFn("trace", [T.STR], T.UNIT, api_trace, 100),
        ApiFn("vec_new", [], VEC_U64, api_vec_new, 50),
    ]
    for fn in fns:
        table.add_fn(fn)

    methods = [
        ApiMethod("XdpCtx", "len", [], u, m_ctx_len),
        ApiMethod("XdpCtx", "protocol", [], u, m_ctx_protocol),
        ApiMethod("XdpCtx", "load_u8", [u], T.OptionTy(u),
                  m_ctx_load_u8),
        ApiMethod("XdpCtx", "load_u16", [u], T.OptionTy(u),
                  m_ctx_load_u16),
        ApiMethod("XdpCtx", "load_u32", [u], T.OptionTy(u),
                  m_ctx_load_u32),
        ApiMethod("XdpCtx", "store_u8", [u, u], T.BOOL, m_ctx_store_u8),
        ApiMethod("Socket", "src_port", [], u, m_sock_src_port),
        ApiMethod("Socket", "dst_port", [], u, m_sock_dst_port),
        ApiMethod("Socket", "state", [], u, m_sock_state),
        ApiMethod("Task", "pid", [], u, m_task_pid),
        ApiMethod("Task", "tgid", [], u, m_task_tgid),
        ApiMethod("str", "len", [], u, m_str_len),
        ApiMethod("str", "byte_at", [u], T.OptionTy(u), m_str_byte_at),
        ApiMethod("str", "parse_i64", [], T.OptionTy(T.I64),
                  m_str_parse_i64),
        ApiMethod("Vec", "push", [u], T.BOOL, m_vec_push),
        ApiMethod("Vec", "get", [u], T.OptionTy(u), m_vec_get),
        ApiMethod("Vec", "set", [u, u], T.BOOL, m_vec_set),
        ApiMethod("Vec", "len", [], u, m_vec_len),
    ]
    for method in methods:
        table.add_method(method)
    return table
