"""The trusted kernel crate.

"We envision a trusted 'kernel crate' that provides the interface
between the safe Rust of the extension program and the kernel" (§3.1).
Everything here is *trusted* code: it is the only place where the
proposed framework touches raw kernel memory, and it is where the
§3.2 helper refactorings live —

* RAII resource wrappers (:mod:`resources`) replace manual refcount
  discipline,
* checked integer logic and input sanitization move *out* of unsafe
  kernel helpers into this safe boundary (:mod:`api`),
* destructors registered here are the trusted cleanup the runtime
  invokes on termination (never user-defined code).
"""

from repro.core.kcrate.api import ApiTable, build_api_table
from repro.core.kcrate.resources import KernelResource

__all__ = ["ApiTable", "build_api_table", "KernelResource"]
