"""Command-line tooling over the simulated kernel."""
