"""A bpftool-style CLI for the simulated kernel.

Usage (each invocation boots a fresh simulated kernel):

    python -m repro.tools.bpftool prog verify prog.s --type xdp --log
    python -m repro.tools.bpftool prog run prog.s --payload 'hello' \
        --map array:4:8:16
    python -m repro.tools.bpftool prog dump prog.s
    python -m repro.tools.bpftool helper list --class retire
    python -m repro.tools.bpftool bugs list

Programs are text-format assembly (see :mod:`repro.ebpf.asm_text`);
``map_fd[N]`` references resolve against ``--map`` definitions, which
are created in order with fds starting at 3.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.bugs import full_bug_table
from repro.ebpf.asm_text import assemble_text
from repro.ebpf.bugs import BugConfig
from repro.ebpf.disasm import disasm
from repro.ebpf.helpers.registry import build_default_registry
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.errors import KernelSafetyViolation, VerifierError
from repro.kernel import Kernel


def _make_subsystem(args) -> BpfSubsystem:
    kernel = Kernel()
    bugs = BugConfig.all_patched() if getattr(args, "patched", False) \
        else BugConfig()
    return BpfSubsystem(kernel, bugs=bugs)


def _create_maps(bpf: BpfSubsystem, specs: List[str]) -> None:
    for spec in specs or ():
        parts = spec.split(":")
        map_type = parts[0]
        key_size = int(parts[1]) if len(parts) > 1 else 4
        value_size = int(parts[2]) if len(parts) > 2 else 8
        max_entries = int(parts[3]) if len(parts) > 3 else 16
        created = bpf.create_map(map_type, key_size=key_size,
                                 value_size=value_size,
                                 max_entries=max_entries)
        print(f"created {map_type} map fd={created.map_fd} "
              f"key={key_size} value={value_size} "
              f"entries={max_entries}")


def _read_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return assemble_text(handle.read())


def cmd_prog_verify(args) -> int:
    """``prog verify``: run the in-kernel verifier on a file."""
    bpf = _make_subsystem(args)
    _create_maps(bpf, args.map)
    program = _read_program(args.file)
    prog_type = ProgType(args.type)
    try:
        prog = bpf.load_program(program, prog_type, args.file,
                                log_level=2 if args.log else 1)
    except VerifierError as error:
        print("VERIFICATION FAILED")
        print(f"  {error}")
        if args.log and error.log:
            print("--- verifier log ---")
            print(error.log)
        return 1
    stats = prog.verifier_stats
    print(f"verification OK: {len(program)} insns, "
          f"{stats.insns_processed} steps, "
          f"{stats.states_explored} states stored, "
          f"{stats.prune_hits} prunes, "
          f"{stats.wall_time_s * 1e3:.2f} ms")
    if args.log:
        print("--- verifier log ---")
        print("\n".join(stats.log))
    return 0


def cmd_prog_run(args) -> int:
    """``prog run``: verify then execute."""
    bpf = _make_subsystem(args)
    _create_maps(bpf, args.map)
    program = _read_program(args.file)
    prog_type = ProgType(args.type)
    try:
        prog = bpf.load_program(program, prog_type, args.file)
    except VerifierError as error:
        print(f"VERIFICATION FAILED: {error}")
        return 1
    payload = args.payload.encode("latin-1")
    try:
        if prog_type in (ProgType.XDP, ProgType.SOCKET_FILTER,
                         ProgType.CGROUP_SKB):
            result = bpf.run_on_packet(prog, payload)
        else:
            result = bpf.run_on_current_task(prog)
    except KernelSafetyViolation as violation:
        print(f"KERNEL COMPROMISED: {violation.category}: {violation}")
        print("--- dmesg tail ---")
        for line in bpf.kernel.log.dmesg().splitlines()[-4:]:
            print(f"  {line}")
        return 2
    print(f"return value: {result} ({result:#x})")
    print(f"kernel healthy: {bpf.kernel.healthy}")
    if args.dmesg:
        print("--- dmesg ---")
        print(bpf.kernel.log.dmesg())
    return 0


def cmd_prog_dump(args) -> int:
    """``prog dump``: assemble and pretty-print."""
    program = _read_program(args.file)
    print(disasm(program))
    return 0


def cmd_helper_list(args) -> int:
    """``helper list``: print the registry."""
    registry = build_default_registry()
    rows = registry.all_specs()
    if args.klass:
        rows = [s for s in rows if s.classification == args.klass]
    if args.implemented:
        rows = [s for s in rows if s.is_implemented]
    print(f"{'id':>5}  {'name':40s} {'since':7s} {'cg-size':>8} "
          f"{'class':9s} impl")
    for spec in rows:
        print(f"{spec.helper_id:5d}  {spec.name:40s} "
              f"{spec.introduced:7s} {spec.callgraph_size:8d} "
              f"{spec.classification:9s} "
              f"{'yes' if spec.is_implemented else 'no'}")
    print(f"({len(rows)} helpers)")
    return 0


def cmd_bugs_list(args) -> int:
    """``bugs list``: print the Table 1 population."""
    print(f"{'category':28s} {'component':9s} {'year':4s} "
          f"{'flag':30s} title")
    for bug in full_bug_table():
        flag = bug.repro_flag or "-"
        print(f"{bug.category:28s} {bug.component:9s} {bug.year} "
              f"{flag:30s} {bug.title[:60]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="bpftool",
        description="bpftool-style CLI over the simulated kernel")
    sub = parser.add_subparsers(dest="object", required=True)

    prog = sub.add_parser("prog", help="program operations")
    prog_sub = prog.add_subparsers(dest="action", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("file", help="text-assembly program file")
    common.add_argument("--type", default="kprobe",
                        choices=[t.value for t in ProgType])
    common.add_argument("--map", action="append",
                        metavar="TYPE[:KEY:VALUE:ENTRIES]",
                        help="create a map before loading")
    common.add_argument("--patched", action="store_true",
                        help="use a kernel with all modeled bugs fixed")

    verify = prog_sub.add_parser("verify", parents=[common],
                                 help="run the in-kernel verifier")
    verify.add_argument("--log", action="store_true",
                        help="print the per-insn verifier trace")
    verify.set_defaults(func=cmd_prog_verify)

    run = prog_sub.add_parser("run", parents=[common],
                              help="verify then execute")
    run.add_argument("--payload", default="",
                     help="packet payload for skb/xdp programs")
    run.add_argument("--dmesg", action="store_true",
                     help="print the full kernel log after the run")
    run.set_defaults(func=cmd_prog_run)

    dump = prog_sub.add_parser("dump", help="assemble + disassemble")
    dump.add_argument("file")
    dump.set_defaults(func=cmd_prog_dump)

    helper = sub.add_parser("helper", help="helper registry")
    helper_sub = helper.add_subparsers(dest="action", required=True)
    helper_list = helper_sub.add_parser("list")
    helper_list.add_argument("--class", dest="klass",
                             choices=["retire", "simplify", "wrap",
                                      "keep"])
    helper_list.add_argument("--implemented", action="store_true")
    helper_list.set_defaults(func=cmd_helper_list)

    bugs = sub.add_parser("bugs", help="the Table 1 bug population")
    bugs_sub = bugs.add_subparsers(dest="action", required=True)
    bugs_list = bugs_sub.add_parser("list")
    bugs_list.set_defaults(func=cmd_bugs_list)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
