"""A bpftool-style CLI for the simulated kernel.

Usage (each invocation boots a fresh simulated kernel):

    python -m repro.tools.bpftool prog verify prog.s --type xdp --log
    python -m repro.tools.bpftool prog run prog.s --payload 'hello' \
        --map array:4:8:16
    python -m repro.tools.bpftool prog dump prog.s
    python -m repro.tools.bpftool prog stats prog.s --repeat 10
    python -m repro.tools.bpftool stats dump prog.s --format prometheus
    python -m repro.tools.bpftool trace log prog.s --repeat 3
    python -m repro.tools.bpftool helper list --class retire
    python -m repro.tools.bpftool bugs list
    python -m repro.tools.bpftool net profiles
    python -m repro.tools.bpftool net run prog.s --profile bursty \
        --count 10000 --seed 7 --engine compiled --map array:4:8:4
    python -m repro.tools.bpftool fault list
    python -m repro.tools.bpftool fault enable prog.s \
        --arm 'helper.*=prob:0.5=errno:EINVAL' --seed 7 --repeat 10
    python -m repro.tools.bpftool fault status prog.s \
        --arm 'map.update=nth:2=errno:ENOMEM' --repeat 5
    python -m repro.tools.bpftool race list
    python -m repro.tools.bpftool race run unlocked_counter \
        --budget 32 --seed 0
    python -m repro.tools.bpftool race status rcu_use_after_grace \
        --seed 5
    python -m repro.tools.bpftool fleet status --nodes 50 --seed 0
    python -m repro.tools.bpftool fleet rollout --release good \
        --nodes 200 --seed 7
    python -m repro.tools.bpftool fleet rollback --nodes 200 --seed 7
    python -m repro.tools.bpftool fleet halt --after-wave 2 \
        --nodes 100 --seed 3

The stats/trace commands model ``sysctl kernel.bpf_stats_enabled=1``
followed by ``bpftool prog show``: the fresh kernel boots with run
stats collection on, the program is loaded and run ``--repeat`` times,
and the telemetry subsystem's view is printed.

Programs are text-format assembly (see :mod:`repro.ebpf.asm_text`);
``map_fd[N]`` references resolve against ``--map`` definitions, which
are created in order with fds starting at 3.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.bugs import full_bug_table
from repro.ebpf.asm_text import assemble_text
from repro.ebpf.bugs import BugConfig
from repro.ebpf.disasm import disasm
from repro.ebpf.engine import ENGINE_NAMES
from repro.ebpf.helpers.registry import build_default_registry
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.errors import (
    BpfRuntimeError,
    KernelOops,
    KernelSafetyViolation,
    VerifierError,
)
from repro.fleet.adapters.cli import (
    cmd_fleet_halt,
    cmd_fleet_resume,
    cmd_fleet_rollback,
    cmd_fleet_rollout,
    cmd_fleet_status,
)
from repro.faultinject.chaos import FLEET_SCHEDULES
from repro.faultinject.plane import (
    KNOWN_SITES,
    parse_action,
    parse_schedule,
)
from repro.kernel import Kernel
from repro.telemetry import to_json, to_prometheus


def _make_subsystem(args) -> BpfSubsystem:
    kernel = Kernel()
    bugs = BugConfig.all_patched() if getattr(args, "patched", False) \
        else BugConfig()
    return BpfSubsystem(kernel, bugs=bugs,
                        engine=getattr(args, "engine", None))


def _create_maps(bpf: BpfSubsystem, specs: List[str]) -> None:
    for spec in specs or ():
        parts = spec.split(":")
        map_type = parts[0]
        key_size = int(parts[1]) if len(parts) > 1 else 4
        value_size = int(parts[2]) if len(parts) > 2 else 8
        max_entries = int(parts[3]) if len(parts) > 3 else 16
        created = bpf.create_map(map_type, key_size=key_size,
                                 value_size=value_size,
                                 max_entries=max_entries)
        print(f"created {map_type} map fd={created.map_fd} "
              f"key={key_size} value={value_size} "
              f"entries={max_entries}")


def _read_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return assemble_text(handle.read())


def cmd_prog_verify(args) -> int:
    """``prog verify``: run the in-kernel verifier on a file."""
    bpf = _make_subsystem(args)
    _create_maps(bpf, args.map)
    program = _read_program(args.file)
    prog_type = ProgType(args.type)
    try:
        prog = bpf.load_program(program, prog_type, args.file,
                                log_level=2 if args.log else 1)
    except VerifierError as error:
        print("VERIFICATION FAILED")
        print(f"  {error}")
        if args.log and error.log:
            print("--- verifier log ---")
            print(error.log)
        return 1
    stats = prog.verifier_stats
    print(f"verification OK: {len(program)} insns, "
          f"{stats.insns_processed} steps, "
          f"{stats.states_explored} states stored, "
          f"{stats.prune_hits} prunes, "
          f"{stats.wall_time_s * 1e3:.2f} ms")
    if args.log:
        print("--- verifier log ---")
        print("\n".join(stats.log))
    return 0


def cmd_prog_run(args) -> int:
    """``prog run``: verify then execute."""
    bpf = _make_subsystem(args)
    _create_maps(bpf, args.map)
    program = _read_program(args.file)
    prog_type = ProgType(args.type)
    try:
        prog = bpf.load_program(program, prog_type, args.file)
    except VerifierError as error:
        print(f"VERIFICATION FAILED: {error}")
        return 1
    payload = args.payload.encode("latin-1")
    try:
        if prog_type in (ProgType.XDP, ProgType.SOCKET_FILTER,
                         ProgType.CGROUP_SKB):
            result = bpf.run_on_packet(prog, payload)
        else:
            result = bpf.run_on_current_task(prog)
    except KernelSafetyViolation as violation:
        print(f"KERNEL COMPROMISED: {violation.category}: {violation}")
        print("--- dmesg tail ---")
        for line in bpf.kernel.log.dmesg().splitlines()[-4:]:
            print(f"  {line}")
        return 2
    print(f"return value: {result} ({result:#x})")
    print(f"kernel healthy: {bpf.kernel.healthy}")
    if args.dmesg:
        print("--- dmesg ---")
        print(bpf.kernel.log.dmesg())
    return 0


def cmd_prog_dump(args) -> int:
    """``prog dump``: assemble and pretty-print."""
    program = _read_program(args.file)
    print(disasm(program))
    return 0


def _load_and_run_with_stats(args) -> Optional[BpfSubsystem]:
    """Boot a kernel with run stats on, load ``args.file``, run it
    ``args.repeat`` times.  Returns the subsystem (its telemetry holds
    the data), or None when verification fails."""
    bpf = _make_subsystem(args)
    bpf.kernel.telemetry.enable()
    _create_maps(bpf, args.map)
    program = _read_program(args.file)
    prog_type = ProgType(args.type)
    try:
        prog = bpf.load_program(program, prog_type, args.file)
    except VerifierError as error:
        print(f"VERIFICATION FAILED: {error}")
        return None
    payload = args.payload.encode("latin-1")
    for _ in range(max(args.repeat, 0)):
        try:
            if prog_type in (ProgType.XDP, ProgType.SOCKET_FILTER,
                             ProgType.CGROUP_SKB):
                bpf.run_on_packet(prog, payload)
            else:
                bpf.run_on_current_task(prog)
        except KernelSafetyViolation as violation:
            # the compromise itself is telemetry (oops counters); stop
            # repeating but still report what was collected
            print(f"KERNEL COMPROMISED: {violation.category}: "
                  f"{violation}", file=sys.stderr)
            break
    return bpf


def cmd_prog_stats(args) -> int:
    """``prog stats``: per-program run/load statistics.

    Models ``bpftool prog show`` output after
    ``sysctl kernel.bpf_stats_enabled=1``: run_cnt, run_time_ns, and
    the derived average come straight from the telemetry table.
    """
    bpf = _load_and_run_with_stats(args)
    if bpf is None:
        return 1
    rows = bpf.kernel.telemetry.progs.rows()
    print(f"{'prog':24s} {'framework':9s} {'run_cnt':>8} "
          f"{'run_time_ns':>12} {'avg_ns':>8} {'insns':>8} "
          f"{'helpers':>8} {'wd':>3} {'oops':>4}")
    for row in rows:
        print(f"{row.name:24s} {row.framework:9s} {row.run_cnt:8d} "
              f"{row.run_time_ns:12d} {row.avg_run_time_ns:8.0f} "
              f"{row.insns:8d} {row.helper_calls:8d} "
              f"{row.watchdog_fires:3d} {row.oopses:4d}")
    print(f"({len(rows)} programs, stats_enabled="
          f"{int(bpf.kernel.telemetry.stats_enabled)})")
    print(f"engine={bpf.vm.engine} compile_cache: "
          f"hits={bpf.compile_cache_hits} "
          f"misses={bpf.compile_cache_misses}")
    return 0


def cmd_prog_engine(args) -> int:
    """``prog engine``: show or pin a program's execution tier.

    Loads the program (under ``--engine`` if given), optionally pins
    it to ``--set TIER``, runs it ``--repeat`` times, and prints the
    effective tier plus compiled-artifact and compile-cache state —
    the tier is operable, not just benchable.
    """
    bpf = _make_subsystem(args)
    _create_maps(bpf, args.map)
    program = _read_program(args.file)
    prog_type = ProgType(args.type)
    try:
        prog = bpf.load_program(program, prog_type, args.file)
    except VerifierError as error:
        print(f"VERIFICATION FAILED: {error}")
        return 1
    if args.set:
        try:
            bpf.set_engine(prog, args.set)
        except BpfRuntimeError as error:
            print(f"bad engine: {error}", file=sys.stderr)
            return 2
    payload = args.payload.encode("latin-1")
    for _ in range(max(args.repeat, 0)):
        try:
            if prog_type in (ProgType.XDP, ProgType.SOCKET_FILTER,
                             ProgType.CGROUP_SKB):
                bpf.run_on_packet(prog, payload)
            else:
                bpf.run_on_current_task(prog)
        except KernelSafetyViolation as violation:
            print(f"KERNEL COMPROMISED: {violation.category}: "
                  f"{violation}", file=sys.stderr)
            break
    pinned = prog.engine is not None
    effective = prog.engine or bpf.vm.engine
    print(f"prog {prog.prog_id} ({prog.name}): engine={effective}"
          f"{' (pinned)' if pinned else ' (vm default)'}")
    if prog.compiled is not None:
        print(f"  compiled: {prog.compiled.n_blocks} blocks, "
              f"{len(prog.compiled.entry_blocks)} entry points, "
              f"{prog.compiled.n_insns} insns")
    print(f"  compile cache: hits={bpf.compile_cache_hits} "
          f"misses={bpf.compile_cache_misses} "
          f"lazy_compiles={bpf.vm.compiles}")
    print(f"  vm default={bpf.vm.engine} "
          f"insns_executed={bpf.vm.insns_executed}")
    return 0


def cmd_stats_dump(args) -> int:
    """``stats dump``: full telemetry snapshot as JSON or Prometheus
    text exposition format."""
    bpf = _load_and_run_with_stats(args)
    if bpf is None:
        return 1
    if args.format == "prometheus":
        print(to_prometheus(bpf.kernel.telemetry), end="")
    else:
        print(to_json(bpf.kernel.telemetry))
    return 0


def cmd_trace_log(args) -> int:
    """``trace log``: print the trace ring as JSONL."""
    bpf = _load_and_run_with_stats(args)
    if bpf is None:
        return 1
    events = bpf.kernel.telemetry.trace.events(
        kind=args.kind or None, limit=args.limit)
    for event in events:
        print(event.to_json())
    ring = bpf.kernel.telemetry.trace
    print(f"# {len(events)} events shown, {ring.emitted} emitted, "
          f"{ring.dropped} dropped", file=sys.stderr)
    return 0


def cmd_helper_list(args) -> int:
    """``helper list``: print the registry."""
    registry = build_default_registry()
    rows = registry.all_specs()
    if args.klass:
        rows = [s for s in rows if s.classification == args.klass]
    if args.implemented:
        rows = [s for s in rows if s.is_implemented]
    print(f"{'id':>5}  {'name':40s} {'since':7s} {'cg-size':>8} "
          f"{'class':9s} impl")
    for spec in rows:
        print(f"{spec.helper_id:5d}  {spec.name:40s} "
              f"{spec.introduced:7s} {spec.callgraph_size:8d} "
              f"{spec.classification:9s} "
              f"{'yes' if spec.is_implemented else 'no'}")
    print(f"({len(rows)} helpers)")
    return 0


def cmd_bugs_list(args) -> int:
    """``bugs list``: print the Table 1 population."""
    print(f"{'category':28s} {'component':9s} {'year':4s} "
          f"{'flag':30s} title")
    for bug in full_bug_table():
        flag = bug.repro_flag or "-"
        print(f"{bug.category:28s} {bug.component:9s} {bug.year} "
              f"{flag:30s} {bug.title[:60]}")
    return 0


def cmd_fault_list(args) -> int:
    """``fault list``: print the failpoint site registry."""
    print(f"{'site':16s} semantics")
    for site, what in KNOWN_SITES.items():
        print(f"{site:16s} {what}")
    print(f"({len(KNOWN_SITES)} sites; schedules: prob:P nth:N "
          "every:N oneshot script:1,0,1; actions: errno:NAME|NUM "
          "panic delay:NS)")
    return 0


def _arm_plane_from_args(plane, specs: List[str]) -> int:
    """Arm ``SITE=SCHEDULE=ACTION`` rules from ``--arm`` options;
    returns 0, or 2 on a malformed spec."""
    for spec in specs or ():
        parts = spec.split("=")
        if len(parts) != 3:
            print(f"bad --arm {spec!r} "
                  "(want SITE=SCHEDULE=ACTION)", file=sys.stderr)
            return 2
        try:
            plane.arm(parts[0], parse_schedule(parts[1]),
                      parse_action(parts[2]))
        except ValueError as error:
            print(f"bad --arm {spec!r}: {error}", file=sys.stderr)
            return 2
    return 0


def _run_under_faults(args):
    """Load and run ``args.file`` with the fault plane enabled.

    Returns ``(subsystem, exit_status)``; the subsystem is None when
    loading failed outright."""
    bpf = _make_subsystem(args)
    plane = bpf.kernel.faults
    plane.enable(args.seed)
    status = _arm_plane_from_args(plane, args.arm)
    if status:
        return None, status
    _create_maps(bpf, args.map)
    program = _read_program(args.file)
    prog_type = ProgType(args.type)
    try:
        prog = bpf.load_program(program, prog_type, args.file)
    except VerifierError as error:
        # an armed load.verify errno lands here, like a real -EINVAL
        print(f"VERIFICATION FAILED: {error}")
        return bpf, 1
    except KernelOops as oops:
        print(f"KERNEL OOPS DURING LOAD: {oops}")
        return bpf, 2
    status = 0
    payload = args.payload.encode("latin-1")
    for _ in range(max(args.repeat, 0)):
        try:
            if prog_type in (ProgType.XDP, ProgType.SOCKET_FILTER,
                             ProgType.CGROUP_SKB):
                bpf.run_on_packet(prog, payload)
            else:
                bpf.run_on_current_task(prog)
        except (KernelSafetyViolation, KernelOops) as violation:
            # injected panics die through the official panic path;
            # report it and stop repeating, the trace is the point
            print(f"KERNEL COMPROMISED: {violation}")
            status = 2
            break
    return bpf, status


def cmd_fault_enable(args) -> int:
    """``fault enable``: run a program with failpoints armed and
    print every fault the plane delivered."""
    bpf, status = _run_under_faults(args)
    if bpf is None:
        return status
    plane = bpf.kernel.faults
    for record in plane.records:
        print(f"  #{record.seq:<3} {record.site:24s} "
              f"{record.kind}"
              f"{':' + str(record.errno) if record.errno else ''}"
              f"{':' + str(record.delay_ns) if record.delay_ns else ''}"
              f" hit={record.hit} t={record.now_ns}ns")
    print(f"{len(plane.records)} faults injected "
          f"(seed {args.seed}, trace "
          f"{plane.trace_signature()[:16]}…)")
    return status


def _print_health(supervisor) -> None:
    """Render the supervisor's per-program health table."""
    print(f"{'tag':28s} {'state':12s} {'window':>6} {'total':>6} "
          f"{'retry':>6} {'refuse':>7} {'quar':>5} {'reload':>7} "
          f"{'contain':>8}")
    for row in supervisor.statuses():
        print(f"{row['tag']:28s} {row['state']:12s} "
              f"{row['faults_in_window']:6d} {row['faults_total']:6d} "
              f"{row['retries']:6d} {row['refusals']:7d} "
              f"{row['quarantines']:5d} {row['reloads']:7d} "
              f"{row['contained']:8d}")
    print(f"({len(supervisor.statuses())} supervised programs)")


def _alive_line(kernel) -> str:
    """One-line liveness verdict for a supervised kernel."""
    try:
        kernel.check_alive()
    except KernelSafetyViolation as dead:
        return f"kernel alive: NO ({dead})"
    contained = kernel.log.contained_count
    return (f"kernel alive: yes ({contained} oopses contained, "
            f"taint clear)")


def _run_supervised(args):
    """Boot a supervised kernel, load ``args.file``, run it
    ``args.repeat`` times with any ``--arm`` failpoints active.

    Returns ``(subsystem, supervisor, prog, exit_status)``; the
    subsystem is None when setup failed."""
    bpf = _make_subsystem(args)
    supervisor = bpf.kernel.enable_recovery()
    plane = bpf.kernel.faults
    plane.enable(args.seed)
    status = _arm_plane_from_args(plane, args.arm)
    if status:
        return None, None, None, status
    _create_maps(bpf, args.map)
    program = _read_program(args.file)
    prog_type = ProgType(args.type)
    try:
        prog = bpf.load_program(program, prog_type, args.file)
    except VerifierError as error:
        print(f"VERIFICATION FAILED: {error}")
        return None, None, None, 1
    payload = args.payload.encode("latin-1")
    status = 0
    for _ in range(max(args.repeat, 0)):
        try:
            if prog_type in (ProgType.XDP, ProgType.SOCKET_FILTER,
                             ProgType.CGROUP_SKB):
                bpf.run_on_packet(prog, payload)
            else:
                bpf.run_on_current_task(prog)
        except KernelSafetyViolation as violation:
            # with the supervisor on, only an escalation gets here
            print(f"ESCALATED: {violation}", file=sys.stderr)
            status = 2
            break
    return bpf, supervisor, prog, status


def cmd_prog_health(args) -> int:
    """``prog health``: run supervised, print the health table."""
    bpf, supervisor, _prog, status = _run_supervised(args)
    if bpf is None:
        return status
    _print_health(supervisor)
    print(_alive_line(bpf.kernel))
    return status


def cmd_prog_quarantine(args) -> int:
    """``prog quarantine``: operator-initiated quarantine — load the
    program, park it, and show that runs are refused."""
    bpf, supervisor, prog, status = _run_supervised(args)
    if bpf is None:
        return status
    tag = f"bpf:{prog.name}"
    supervisor.quarantine(tag, reason="operator request")
    refused = bpf.run_on_current_task(prog)
    print(f"quarantined {tag}; next run returned {refused:#x} "
          "(-EAGAIN: refused while the breaker is open)")
    _print_health(supervisor)
    return status


def cmd_recover_status(args) -> int:
    """``recover status``: run supervised, print supervisor state and
    the full containment audit trail."""
    bpf, supervisor, _prog, status = _run_supervised(args)
    if bpf is None:
        return status
    _print_health(supervisor)
    policy = supervisor.policy
    print(f"supervisor: containments={supervisor.contained_total} "
          f"budget={policy.oops_budget} "
          f"escalations={supervisor.escalations} "
          f"audit_signature={supervisor.audit_signature()[:16]}…")
    print(_alive_line(bpf.kernel))
    print("--- containment audit trail ---")
    for event in supervisor.audit:
        print(f"  {event.render()}")
    print(f"# {len(supervisor.audit)} audit events")
    return status


_PROFILE_NOTES = {
    "uniform": "steady inter-packet gaps, ports drawn evenly "
               "(12.5% to the blocked port)",
    "bursty": "line-rate bursts of 8-64 packets separated by long "
              "idle gaps",
    "adversarial": "truncated headers, oversize frames and a heavy "
                   "blocked-port mix",
    "heavy_hitter": "70% of traffic from one source — skews one RX "
                    "queue and its delivery ring",
}


def cmd_net_profiles(args) -> int:
    """``net profiles``: list the load generator's traffic shapes."""
    from repro.net import PROFILES
    print(f"{'profile':14s} shape")
    for profile in PROFILES:
        print(f"{profile:14s} {_PROFILE_NOTES[profile]}")
    print(f"({len(PROFILES)} profiles; all deterministic under "
          "--seed, timed on the virtual clock)")
    return 0


def cmd_net_run(args) -> int:
    """``net run``: drive a seeded traffic profile through an XDP
    program on the simulated data plane and print the roll-up —
    verdict counters, drop reasons, delivery and tail latencies."""
    from repro.net import DataPlane, LoadGen
    bpf = _make_subsystem(args)
    _create_maps(bpf, args.map)
    program = _read_program(args.file)
    try:
        prog = bpf.load_program(program, ProgType.XDP, args.file)
    except VerifierError as error:
        print(f"VERIFICATION FAILED: {error}")
        return 1
    plane = DataPlane(bpf.kernel, bpf)
    nic = plane.create_nic(1, "bpftool0",
                           queue_depth=args.queue_depth)
    plane.attach(prog, nic)
    gen = LoadGen(bpf.kernel, args.profile, seed=args.seed)
    offered = gen.drive(nic, args.count, plane=plane,
                        batch_size=args.batch)
    plane.process_all(args.batch)
    delivered = len(plane.drain())
    summary = plane.summary()
    nic_row = summary["nics"][nic.name]
    print(f"{args.profile} x{offered['offered']} -> {nic.name} "
          f"(engine={bpf.vm.engine}, seed={args.seed}, "
          f"batch={args.batch})")
    print("  verdicts: " + (", ".join(
        f"{name}={count}"
        for name, count in sorted(summary["verdicts"].items())
        if count) or "none"))
    print("  rx drops: " + (", ".join(
        f"{reason}={count}"
        for reason, count in nic_row["rx_drops"].items()) or "none"))
    print(f"  delivered {delivered} to userspace rings, "
          f"{summary['delivery_drops']} dropped at full rings, "
          f"{nic_row['tx_packets']} transmitted")
    hist = bpf.kernel.telemetry.net_latency_histogram(nic.name)
    if hist.count:
        print(f"  latency p50={hist.quantile(0.5):.0f}ns "
              f"p99={hist.quantile(0.99):.0f}ns "
              f"p999={hist.quantile(0.999):.0f}ns "
              f"mean={hist.mean:.0f}ns")
    print(f"  clock {summary['clock_ns']}ns, "
          f"signature {plane.signature()[:16]}…")
    return 0


def cmd_fault_status(args) -> int:
    """``fault status``: run a program with failpoints armed and
    print per-rule and per-site counters."""
    bpf, status = _run_under_faults(args)
    if bpf is None:
        return status
    plane = bpf.kernel.faults
    print(f"{'pattern':20s} {'schedule':14s} {'action':14s} "
          f"{'hits':>6} {'fires':>6}")
    for row in plane.status():
        print(f"{row['pattern']:20s} {row['schedule']:14s} "
              f"{row['action']:14s} {row['hits']:6d} "
              f"{row['fires']:6d}")
    for site, hits in sorted(plane.site_hits.items()):
        print(f"  site {site:24s} reached {hits} times")
    print(f"enabled={plane.enabled} armed={plane.armed} "
          f"seed={args.seed} faults={len(plane.records)}")
    return status


def _race_scenarios():
    """name -> builder over both scenario families."""
    from repro.faultinject.interleave import PLANTED, RACE_FREE
    table = {name: builder for name, (builder, _) in PLANTED.items()}
    table.update(RACE_FREE)
    return table


def cmd_race_list(args) -> int:
    """``race list``: show the interleaving scenario registry."""
    from repro.faultinject.interleave import PLANTED, RACE_FREE
    print(f"{'scenario':24s} {'kind':10s} expectation")
    for name, (_builder, expected) in sorted(PLANTED.items()):
        print(f"{name:24s} {'planted':10s} explorer must find a "
              f"{expected}")
    for name in sorted(RACE_FREE):
        print(f"{name:24s} {'race-free':10s} zero findings on every "
              "schedule")
    print(f"({len(PLANTED) + len(RACE_FREE)} scenarios; "
          "'race run NAME' explores, 'race status NAME --seed S' "
          "replays one schedule)")
    return 0


def cmd_race_run(args) -> int:
    """``race run``: explore seeded interleavings of one scenario and
    print every distinct finding with its replayable seed."""
    from repro.analysis.racehunt import ScheduleExplorer
    scenarios = _race_scenarios()
    if args.scenario not in scenarios:
        print(f"unknown scenario {args.scenario!r} "
              f"(see 'race list')", file=sys.stderr)
        return 2
    explorer = ScheduleExplorer(
        scenarios[args.scenario], nr_cpus=args.cpus,
        base_seed=args.seed, migration_rate=args.migration_rate)
    result = explorer.explore(budget=args.budget)
    for finding in result.findings:
        print(f"  [{finding.kind:8s}] seed={finding.seed:<4} "
              f"{finding.description}")
        print(f"             trace {finding.trace_signature[:16]}…")
    roll = result.summary()
    print(f"{args.scenario}: {roll['findings']} distinct findings "
          f"({roll['races']} races, {roll['oopses']} oopses, "
          f"{roll['deadlocks']} deadlocks) in {roll['schedules_run']} "
          f"schedules, {roll['distinct_states']} distinct states "
          f"(cpus={args.cpus}, base seed {args.seed})")
    if result.findings:
        print(f"replay: bpftool race status {args.scenario} "
              f"--seed {result.findings[0].seed} --cpus {args.cpus}")
    return 0


def cmd_race_status(args) -> int:
    """``race status``: replay one exact seed of a scenario and print
    the decision trace tail plus the scheduler roll-up."""
    from repro.analysis.racehunt import replay
    scenarios = _race_scenarios()
    if args.scenario not in scenarios:
        print(f"unknown scenario {args.scenario!r} "
              f"(see 'race list')", file=sys.stderr)
        return 2
    smp = replay(scenarios[args.scenario], args.seed,
                 nr_cpus=args.cpus,
                 migration_rate=args.migration_rate)
    tail = smp.trace[-args.limit:] if args.limit else smp.trace
    for seq, kind, detail, task, cpu, chosen in tail:
        print(f"  #{seq:<5} {kind:14s} {detail:28s} "
              f"{task}@cpu{cpu} -> cpu{chosen}")
    roll = smp.summary()
    print(f"schedule {roll['schedule']}: {roll['decisions']} "
          f"decisions, {roll['switches']} switches, "
          f"{roll['lock_contentions']} contended acquires, "
          f"{roll['migrations']} migrations")
    print(f"trace signature {roll['trace_signature']}")
    for exc in smp.errors():
        print(f"  outcome: {type(exc).__name__}: {exc}")
    if smp.detector is not None:
        for race in smp.detector.races:
            print(f"  race: {race.describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="bpftool",
        description="bpftool-style CLI over the simulated kernel")
    sub = parser.add_subparsers(dest="object", required=True)

    prog = sub.add_parser("prog", help="program operations")
    prog_sub = prog.add_subparsers(dest="action", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("file", help="text-assembly program file")
    common.add_argument("--type", default="kprobe",
                        choices=[t.value for t in ProgType])
    common.add_argument("--map", action="append",
                        metavar="TYPE[:KEY:VALUE:ENTRIES]",
                        help="create a map before loading")
    common.add_argument("--patched", action="store_true",
                        help="use a kernel with all modeled bugs fixed")
    common.add_argument("--engine", default=None,
                        choices=list(ENGINE_NAMES),
                        help="execution tier (default: fast)")

    verify = prog_sub.add_parser("verify", parents=[common],
                                 help="run the in-kernel verifier")
    verify.add_argument("--log", action="store_true",
                        help="print the per-insn verifier trace")
    verify.set_defaults(func=cmd_prog_verify)

    run = prog_sub.add_parser("run", parents=[common],
                              help="verify then execute")
    run.add_argument("--payload", default="",
                     help="packet payload for skb/xdp programs")
    run.add_argument("--dmesg", action="store_true",
                     help="print the full kernel log after the run")
    run.set_defaults(func=cmd_prog_run)

    dump = prog_sub.add_parser("dump", help="assemble + disassemble")
    dump.add_argument("file")
    dump.set_defaults(func=cmd_prog_dump)

    runnable = argparse.ArgumentParser(add_help=False,
                                       parents=[common])
    runnable.add_argument("--payload", default="",
                          help="packet payload for skb/xdp programs")
    runnable.add_argument("--repeat", type=int, default=1,
                          metavar="N", help="number of runs (default 1)")

    prog_stats = prog_sub.add_parser(
        "stats", parents=[runnable],
        help="run N times with stats enabled, print per-prog rows")
    prog_stats.set_defaults(func=cmd_prog_stats)

    prog_engine = prog_sub.add_parser(
        "engine", parents=[runnable],
        help="show or pin a program's execution tier")
    prog_engine.add_argument("--set", default=None,
                             choices=list(ENGINE_NAMES),
                             help="pin the program to this tier")
    prog_engine.set_defaults(func=cmd_prog_engine)

    faulty = argparse.ArgumentParser(add_help=False,
                                     parents=[runnable])
    faulty.add_argument("--arm", action="append",
                        metavar="SITE=SCHEDULE=ACTION",
                        help="arm a failpoint rule, e.g. "
                             "'helper.*=prob:0.5=errno:EINVAL'")
    faulty.add_argument("--seed", type=int, default=0,
                        help="fault plane seed (default 0)")

    prog_health = prog_sub.add_parser(
        "health", parents=[faulty],
        help="run supervised (recovery on), print per-program health")
    prog_health.set_defaults(func=cmd_prog_health)

    prog_quarantine = prog_sub.add_parser(
        "quarantine", parents=[faulty],
        help="quarantine a loaded program and show runs are refused")
    prog_quarantine.set_defaults(func=cmd_prog_quarantine)

    recover = sub.add_parser("recover",
                             help="recovery supervisor state")
    recover_sub = recover.add_subparsers(dest="action", required=True)
    recover_status = recover_sub.add_parser(
        "status", parents=[faulty],
        help="run supervised, print health + containment audit trail")
    recover_status.set_defaults(func=cmd_recover_status)

    stats = sub.add_parser("stats", help="telemetry snapshots")
    stats_sub = stats.add_subparsers(dest="action", required=True)
    stats_dump = stats_sub.add_parser(
        "dump", parents=[runnable],
        help="full telemetry snapshot after N runs")
    stats_dump.add_argument("--format", default="json",
                            choices=["json", "prometheus"])
    stats_dump.set_defaults(func=cmd_stats_dump)

    trace = sub.add_parser("trace", help="structured trace ring")
    trace_sub = trace.add_subparsers(dest="action", required=True)
    trace_log = trace_sub.add_parser(
        "log", parents=[runnable],
        help="print trace events as JSONL after N runs")
    trace_log.add_argument("--kind", default=None,
                           help="only events of this kind")
    trace_log.add_argument("--limit", type=int, default=None,
                           help="print at most the last N events")
    trace_log.set_defaults(func=cmd_trace_log)

    helper = sub.add_parser("helper", help="helper registry")
    helper_sub = helper.add_subparsers(dest="action", required=True)
    helper_list = helper_sub.add_parser("list")
    helper_list.add_argument("--class", dest="klass",
                             choices=["retire", "simplify", "wrap",
                                      "keep"])
    helper_list.add_argument("--implemented", action="store_true")
    helper_list.set_defaults(func=cmd_helper_list)

    bugs = sub.add_parser("bugs", help="the Table 1 bug population")
    bugs_sub = bugs.add_subparsers(dest="action", required=True)
    bugs_list = bugs_sub.add_parser("list")
    bugs_list.set_defaults(func=cmd_bugs_list)

    net = sub.add_parser("net", help="the simulated data plane")
    net_sub = net.add_subparsers(dest="action", required=True)
    net_profiles = net_sub.add_parser(
        "profiles", help="list load-generator traffic profiles")
    net_profiles.set_defaults(func=cmd_net_profiles)
    net_run = net_sub.add_parser(
        "run", help="drive seeded traffic through an XDP program")
    net_run.add_argument("file", help="text-assembly XDP program")
    net_run.add_argument("--map", action="append",
                         metavar="TYPE[:KEY:VALUE:ENTRIES]",
                         help="create a map before loading")
    net_run.add_argument("--patched", action="store_true",
                         help="use a kernel with all modeled bugs "
                              "fixed")
    net_run.add_argument("--engine", default="compiled",
                         choices=list(ENGINE_NAMES),
                         help="execution tier (default: compiled)")
    net_run.add_argument("--profile", default="uniform",
                         choices=list(_PROFILE_NOTES),
                         help="traffic shape (default: uniform)")
    net_run.add_argument("--count", type=int, default=10000,
                         metavar="N",
                         help="packets to offer (default 10000)")
    net_run.add_argument("--seed", type=int, default=0,
                         help="load generator seed (default 0)")
    net_run.add_argument("--batch", type=int, default=64,
                         metavar="N",
                         help="NAPI poll burst size (default 64)")
    net_run.add_argument("--queue-depth", type=int, default=512,
                         metavar="N",
                         help="per-CPU RX queue depth (default 512)")
    net_run.set_defaults(func=cmd_net_run)

    fault = sub.add_parser("fault", help="deterministic fault "
                                         "injection")
    fault_sub = fault.add_subparsers(dest="action", required=True)
    fault_list = fault_sub.add_parser(
        "list", help="show the failpoint site registry")
    fault_list.set_defaults(func=cmd_fault_list)

    fault_enable = fault_sub.add_parser(
        "enable", parents=[faulty],
        help="run a program with failpoints armed, print the faults")
    fault_enable.set_defaults(func=cmd_fault_enable)

    fault_status = fault_sub.add_parser(
        "status", parents=[faulty],
        help="run a program with failpoints armed, print counters")
    fault_status.set_defaults(func=cmd_fault_status)

    race = sub.add_parser("race", help="deterministic interleaving "
                                       "exploration")
    race_sub = race.add_subparsers(dest="action", required=True)
    race_list = race_sub.add_parser(
        "list", help="show the interleaving scenario registry")
    race_list.set_defaults(func=cmd_race_list)

    racy = argparse.ArgumentParser(add_help=False)
    racy.add_argument("scenario", help="scenario name (see race list)")
    racy.add_argument("--seed", type=int, default=0,
                      help="base seed (default 0)")
    racy.add_argument("--cpus", type=int, default=2,
                      help="logical CPUs (default 2)")
    racy.add_argument("--migration-rate", type=float, default=0.0,
                      metavar="P",
                      help="per-decision migration probability")

    race_run = race_sub.add_parser(
        "run", parents=[racy],
        help="explore seeded interleavings, print findings + seeds")
    race_run.add_argument("--budget", type=int, default=32,
                          metavar="N",
                          help="schedules to explore (default 32)")
    race_run.set_defaults(func=cmd_race_run)

    race_status = race_sub.add_parser(
        "status", parents=[racy],
        help="replay one exact seed, print the decision trace")
    race_status.add_argument("--limit", type=int, default=24,
                             metavar="N",
                             help="trace tail length (default 24, "
                                  "0 = full trace)")
    race_status.set_defaults(func=cmd_race_status)

    fleet = sub.add_parser(
        "fleet", help="staged rollouts over a simulated fleet")
    fleet_sub = fleet.add_subparsers(dest="action", required=True)

    fleety = argparse.ArgumentParser(add_help=False)
    fleety.add_argument("--nodes", type=int, default=50, metavar="N",
                        help="fleet size (default 50)")
    fleety.add_argument("--seed", type=int, default=0,
                        help="rollout seed (default 0)")
    fleety.add_argument("--engine", default=None,
                        choices=list(ENGINE_NAMES),
                        help="execution tier for every node")
    fleety.add_argument("--json", action="store_true",
                        help="machine-readable output")

    fleet_status = fleet_sub.add_parser(
        "status", parents=[fleety],
        help="show the release registry and the fleet health census")
    fleet_status.set_defaults(func=cmd_fleet_status)

    fleet_rollout = fleet_sub.add_parser(
        "rollout", parents=[fleety],
        help="stage a release through canary waves")
    fleet_rollout.add_argument(
        "--release", default="good",
        choices=["baseline", "good", "bad"],
        help="which canonical release to roll out (default good)")
    fleet_rollout.set_defaults(func=cmd_fleet_rollout)

    fleet_rollback = fleet_sub.add_parser(
        "rollback", parents=[fleety],
        help="stage the planted bad release: canary halt + rollback")
    fleet_rollback.set_defaults(func=cmd_fleet_rollback)

    fleet_resume = fleet_sub.add_parser(
        "resume", parents=[fleety],
        help="crash the orchestrator mid-rollout, resume from the "
             "write-ahead journal, prove signatures bit-identical")
    fleet_resume.add_argument(
        "--release", default="good",
        choices=["baseline", "good", "bad"],
        help="which canonical release to roll out (default good)")
    fleet_resume.add_argument(
        "--crash-after", type=int, default=40, metavar="N",
        help="kill the orchestrator every N journal appends "
             "(default 40)")
    fleet_resume.add_argument(
        "--journal", default=None, metavar="PATH",
        help="write-ahead journal path (default: a temp file, "
             "removed afterwards)")
    fleet_resume.add_argument(
        "--chaos", default=None, choices=sorted(FLEET_SCHEDULES),
        help="also arm this channel chaos schedule")
    fleet_resume.set_defaults(func=cmd_fleet_resume)

    fleet_halt = fleet_sub.add_parser(
        "halt", parents=[fleety],
        help="operator stop after a chosen wave")
    fleet_halt.add_argument(
        "--release", default="good",
        choices=["baseline", "good", "bad"],
        help="which canonical release to stage (default good)")
    fleet_halt.add_argument(
        "--after-wave", type=int, default=1, metavar="K",
        help="stop after wave K (default 1)")
    fleet_halt.set_defaults(func=cmd_fleet_halt)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
