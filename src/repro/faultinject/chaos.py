"""Chaos replay: the attack corpus under injected faults.

Every attack case already exercises one containment mechanism; this
harness replays the *whole corpus* while the fault plane degrades the
kernel under it — helpers failing, allocators refusing, timers
slipping, loaders rejecting — and checks that containment still
composes.  Three things must hold for every (case × schedule) pair:

1. **Sandbox boundary**: nothing but :class:`~repro.errors.ReproError`
   subclasses (simulated kernel events) crosses out of the run.  A
   raw ``KeyError`` escaping means the *simulation* broke, not the
   simulated kernel.
2. **Balance**: after the run, the kernel passes every invariant in
   :mod:`repro.faultinject.invariants` — RCU nesting, preemption,
   program stacks, pool bump pointers, ringbuf reservations,
   per-extension refcounts, watchdog hooks.
3. **Official panic path**: kernel taint and the oops log agree; a
   kernel never dies without a record, or records a death it didn't
   have.

Determinism is part of the contract: the whole replay is a pure
function of the seed, which ``--check-determinism`` (used by
``make chaos``) proves by running everything twice and comparing
fault-trace signatures.

``--recover`` (used by ``make recover``) raises the bar from "detect
the oops" to "survive it": every case runs with the recovery
supervisor enabled, and afterwards the kernel must still be *alive* —
``check_alive()`` passes, every oops contained, zero leaked locks /
pool bytes / RCU imbalance — and per schedule a demonstration drives
one victim program through the full arc: faults → quarantine
(auto-detach) → breaker half-open → auto-reload from the load cache →
recovered.  The supervisor's audit trail is folded into the replay
signature, so the determinism check also proves quarantine decisions
and backoff timings are a pure function of the seed.

Run it: ``PYTHONPATH=src python -m repro.faultinject.chaos``.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.attacks.corpus import build_corpus, run_case
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids
from repro.errors import ReproError, VerifierError
from repro.faultinject.invariants import (
    collect_violations,
    panic_path_consistent,
    recovery_consistent,
)
from repro.faultinject.plane import (
    EINVAL,
    ENOENT,
    ENOMEM,
    ENOSPC,
    ETIMEDOUT,
    FaultAction,
    FaultPlane,
    NthHit,
    Probability,
)
from repro.kernel.kernel import Kernel
from repro.recovery import HealthState

DEFAULT_SEED = 20230622  # HotOS'23


def _arm_helper_errno(plane: FaultPlane) -> None:
    """Hostile kernel services: helpers and map ops fail randomly."""
    plane.arm("helper.*", Probability(0.2), FaultAction.err(EINVAL))
    plane.arm("map.update", Probability(0.3), FaultAction.err(ENOMEM))
    plane.arm("map.delete", Probability(0.3), FaultAction.err(EINVAL))


def _arm_alloc_pressure(plane: FaultPlane) -> None:
    """Memory pressure: every allocator path is unreliable."""
    plane.arm("pool.alloc", Probability(0.5), FaultAction.err(ENOMEM))
    plane.arm("map.alloc", Probability(0.5), FaultAction.err(ENOSPC))
    plane.arm("map.lookup", Probability(0.1), FaultAction.err(ENOMEM))


def _arm_timer_chaos(plane: FaultPlane) -> None:
    """Sloppy time: watchdog delivery slips, grace periods stretch,
    helpers stall on the virtual clock."""
    plane.arm("watchdog.fire", NthHit(2, every=True),
              FaultAction.delay(200_000))
    plane.arm("rcu.synchronize", Probability(0.5),
              FaultAction.delay(1_000_000))
    plane.arm("helper.*", Probability(0.05),
              FaultAction.delay(10_000))


def _arm_load_chaos(plane: FaultPlane) -> None:
    """Control plane under attack: loads fail, one helper panics."""
    plane.arm("load.verify", Probability(0.5), FaultAction.err(EINVAL))
    plane.arm("load.signature", Probability(0.5),
              FaultAction.err(EINVAL))
    plane.arm("helper.*", NthHit(5), FaultAction.panic())


def _arm_rx_pressure(plane: FaultPlane) -> None:
    """A hostile wire: NIC ingress drops, RX rings refuse admission,
    redirect targets flap, and delivery-ring allocation starves —
    every named failpoint of the data plane's RX path."""
    plane.arm("net.nic.rx", Probability(0.05), FaultAction.err(ENOMEM))
    plane.arm("net.queue.enqueue", Probability(0.1),
              FaultAction.err(ENOSPC))
    plane.arm("net.redirect", Probability(0.2),
              FaultAction.err(ENOENT))
    plane.arm("map.alloc", Probability(0.2), FaultAction.err(ENOSPC))


#: the canned schedules ``make chaos`` replays (name -> armer)
SCHEDULES: Dict[str, Callable[[FaultPlane], None]] = {
    "helper-errno": _arm_helper_errno,
    "alloc-pressure": _arm_alloc_pressure,
    "timer-chaos": _arm_timer_chaos,
    "load-chaos": _arm_load_chaos,
    "rx-pressure": _arm_rx_pressure,
}


# -- control-plane schedules (the fleet's unreliable RPC channel) -----------

def _arm_rpc_drops(plane: FaultPlane) -> None:
    """A lossy wire: requests and replies vanish.  A dropped reply is
    the sharp case — the node applied the request, so only the reply
    cache keeps the retry from double-applying."""
    plane.arm("fleet.rpc.send.*", Probability(0.15),
              FaultAction.err(ETIMEDOUT))
    plane.arm("fleet.rpc.reply.*", Probability(0.10),
              FaultAction.err(ETIMEDOUT))


def _arm_rpc_dups(plane: FaultPlane) -> None:
    """A stuttering wire: requests arrive twice, some replies are
    lost anyway — idempotency under duplication *and* retry."""
    plane.arm("fleet.rpc.send.*", Probability(0.20), FaultAction.dup())
    plane.arm("fleet.rpc.reply.*", Probability(0.10),
              FaultAction.err(ETIMEDOUT))


def _arm_slow_wire(plane: FaultPlane) -> None:
    """A congested wire: some hops are slow, some so slow the client
    gives up while the request still lands (timed-out-but-applied —
    the request id dedup is what makes the retry safe)."""
    plane.arm("fleet.rpc.send.*", Probability(0.10),
              FaultAction.delay(1_500_000))
    plane.arm("fleet.rpc.send.*", Probability(0.15),
              FaultAction.delay(100_000))
    plane.arm("fleet.rpc.reply.*", Probability(0.05),
              FaultAction.err(ETIMEDOUT))


def _arm_partitions(plane: FaultPlane) -> None:
    """Flapping partitions: links cut both ways for a while, then
    heal when the schedule stops firing."""
    plane.arm("fleet.partition.*", Probability(0.12),
              FaultAction.err(ETIMEDOUT))


def _arm_node_crashes(plane: FaultPlane) -> None:
    """Crashing node agents: the in-flight request dies with the
    agent and the node stays down for the reboot window."""
    plane.arm("fleet.node.crash.*", Probability(0.06),
              FaultAction.panic())
    plane.arm("fleet.rpc.reply.*", Probability(0.05),
              FaultAction.err(ETIMEDOUT))


def _arm_fleet_pressure(plane: FaultPlane) -> None:
    """Everything at once: drops, dups, delays past the deadline,
    partitions and agent crashes on the same rollout."""
    plane.arm("fleet.partition.*", Probability(0.05),
              FaultAction.err(ETIMEDOUT))
    plane.arm("fleet.node.crash.*", Probability(0.03),
              FaultAction.panic())
    plane.arm("fleet.rpc.send.*", Probability(0.08),
              FaultAction.err(ETIMEDOUT))
    plane.arm("fleet.rpc.send.*", Probability(0.08), FaultAction.dup())
    plane.arm("fleet.rpc.send.*", Probability(0.05),
              FaultAction.delay(1_500_000))
    plane.arm("fleet.rpc.reply.*", Probability(0.08),
              FaultAction.err(ETIMEDOUT))


#: the canned control-plane schedules ``make fleet-chaos`` replays
#: (name -> armer for the *transport's* fault plane — node kernels
#: keep their own planes and their own chaos)
FLEET_SCHEDULES: Dict[str, Callable[[FaultPlane], None]] = {
    "rpc-drops": _arm_rpc_drops,
    "rpc-dups": _arm_rpc_dups,
    "slow-wire": _arm_slow_wire,
    "partitions": _arm_partitions,
    "node-crashes": _arm_node_crashes,
    "fleet-pressure": _arm_fleet_pressure,
}


def case_seed(seed: int, case_id: str, schedule: str) -> int:
    """Per-(case, schedule) seed, derived stably from the master seed
    (``hash()`` is salted per interpreter run, so not that)."""
    digest = hashlib.sha256(
        f"{seed}:{case_id}:{schedule}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class CaseResult:
    """One (case × schedule) replay."""

    case_id: str
    schedule: str
    outcome: str
    faults_injected: int
    trace_signature: str
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every invariant held for this replay."""
        return not self.violations


@dataclass
class ChaosReport:
    """One full corpus replay."""

    seed: int
    results: List[CaseResult]

    @property
    def violations(self) -> List[str]:
        """Every violation across the replay, labeled by case."""
        return [f"{r.case_id} × {r.schedule}: {v}"
                for r in self.results for v in r.violations]

    @property
    def clean(self) -> bool:
        """True when the whole replay held every invariant."""
        return not self.violations

    @property
    def total_faults(self) -> int:
        """Faults delivered across every case and schedule."""
        return sum(r.faults_injected for r in self.results)

    def signature(self) -> str:
        """Digest of every per-case fault trace, for determinism
        comparisons across whole replays."""
        digest = hashlib.sha256()
        for r in self.results:
            digest.update(
                f"{r.case_id}:{r.schedule}:{r.outcome}:"
                f"{r.trace_signature}".encode())
        return digest.hexdigest()


def run_case_under_schedule(case: object, schedule: str, seed: int,
                            recover: bool = False) -> CaseResult:
    """Replay one attack case on a fresh kernel with one canned fault
    schedule armed.  With ``recover`` the kernel runs supervised and
    must end the replay *alive*, not merely balanced."""
    kernel = Kernel()
    supervisor = kernel.enable_recovery() if recover else None
    plane = kernel.faults
    plane.enable(case_seed(seed, case.case_id, schedule))
    SCHEDULES[schedule](plane)
    violations: List[str] = []
    try:
        outcome = run_case(case, kernel=kernel).value
    except ReproError as exc:
        # a simulated kernel event crossing the boundary is legal;
        # the invariants below decide whether it was handled cleanly
        outcome = f"raised:{type(exc).__name__}"
    except Exception as exc:  # noqa: BLE001 — the point of the harness
        outcome = f"escaped:{type(exc).__name__}"
        violations.append(
            "non-kernel exception escaped the sandbox boundary: "
            f"{type(exc).__name__}: {exc}")
    violations.extend(collect_violations(kernel))
    if not panic_path_consistent(kernel):
        violations.append(
            "taint/oops mismatch: kernel died outside the official "
            f"panic path (tainted={kernel.log.tainted}, "
            f"oopses={len(kernel.log.oopses)})")
    signature = plane.trace_signature()
    if supervisor is not None:
        try:
            kernel.check_alive()
        except ReproError as exc:
            violations.append(
                f"kernel not alive after supervised replay: {exc}")
        violations.extend(recovery_consistent(kernel))
        signature = f"{signature}:{supervisor.audit_signature()}"
    return CaseResult(
        case_id=case.case_id, schedule=schedule, outcome=outcome,
        faults_injected=len(plane.records),
        trace_signature=signature,
        violations=violations)


def _victim_prog() -> List[object]:
    """call ktime_get_ns(); r0 = 0; exit — the return value is pinned
    to 0 so injected helper errnos never leak into the exit code and a
    half-open trial run always succeeds once the trigger is disarmed."""
    return (Asm()
            .call(ids.BPF_FUNC_ktime_get_ns)
            .mov64_imm(0, 0)
            .exit_()
            .program())


#: the demo's private always-fire trigger site
_TRIGGER = "helper.bpf_ktime_get_ns"


def demonstrate_recovery(schedule: str, seed: int) -> CaseResult:
    """Drive one victim program through the full recovery arc under a
    canned schedule: repeated oopses → containment → quarantine
    (auto-detached from its hook) → refusal while the breaker is open
    → half-open auto-reload from the load cache → trial run →
    recovered.  Everything is checked; failures surface as violations
    exactly like corpus replays."""
    kernel = Kernel()
    supervisor = kernel.enable_recovery()
    plane = kernel.faults
    plane.enable(case_seed(seed, "recovery-demo", schedule))
    # the trigger is armed BEFORE the schedule so it wins the site
    # walk; panic() at a helper boundary is the [54]-style oops the
    # containment path exists for
    plane.arm(_TRIGGER, Probability(1.0), FaultAction.panic())
    SCHEDULES[schedule](plane)
    violations: List[str] = []
    bpf = BpfSubsystem(kernel)
    prog = None
    for _ in range(32):
        # load-chaos may refuse even retried loads; keep asking
        try:
            prog = bpf.load_program(_victim_prog(), ProgType.KPROBE,
                                    name="victim")
            break
        except VerifierError:
            continue
    if prog is None:
        return CaseResult(
            case_id="recovery-demo", schedule=schedule,
            outcome="load-refused",
            faults_injected=len(plane.records),
            trace_signature=plane.trace_signature(),
            violations=["recovery demo could not load the victim"])
    tag = f"bpf:{prog.name}"
    bpf.attach_trace(prog)  # so quarantine has a hook to detach
    health = supervisor.health(tag)
    for _ in range(16):
        bpf.run_on_current_task(prog)
        if health.state is HealthState.QUARANTINED:
            break
    if health.state is not HealthState.QUARANTINED:
        violations.append(
            "victim was never quarantined despite a 100% oops rate")
    if any(att.name == tag for att in kernel.hooks.chain("trace")):
        violations.append(
            "victim still attached to the trace hook after quarantine")
    refused = bpf.run_on_current_task(prog)
    if refused != ((-11) & ((1 << 64) - 1)):  # -EAGAIN as a u64
        violations.append(
            f"open breaker did not refuse the run (got {refused:#x})")
    # cure the victim; the breaker must now walk back on its own
    plane.disarm(_TRIGGER)
    recovered = False
    for _ in range(64):
        release = health.release_at_ns
        if release is not None \
                and kernel.clock.now_ns < release:
            kernel.clock.advance(release - kernel.clock.now_ns + 1)
        bpf.run_on_current_task(prog)
        if health.state is HealthState.HEALTHY:
            recovered = True
            break
    if not recovered:
        violations.append("victim never recovered after quarantine")
    if health.reloads < 1:
        violations.append("breaker half-opened without auto-reload")
    try:
        kernel.check_alive()
    except ReproError as exc:
        violations.append(
            f"kernel not alive after recovery demo: {exc}")
    violations.extend(collect_violations(kernel))
    violations.extend(recovery_consistent(kernel))
    if not panic_path_consistent(kernel):
        violations.append("taint/oops mismatch after recovery demo")
    return CaseResult(
        case_id="recovery-demo", schedule=schedule,
        outcome="recovered" if recovered else "stuck",
        faults_injected=len(plane.records),
        trace_signature=(f"{plane.trace_signature()}:"
                         f"{supervisor.audit_signature()}"),
        violations=violations)


def run_dataplane_case(schedule: str, seed: int,
                       recover: bool = False) -> CaseResult:
    """Drive seeded adversarial traffic through the batched XDP
    pipeline while a canned schedule degrades the kernel under it.

    On top of the usual isolation invariants, the replay checks the
    data plane's own books: every PASS verdict must be accounted for
    as either a delivered ring record or a counted -ENOSPC drop
    (exactness under batched multi-producer pressure), and the
    pipeline's summary/histogram signature is folded into the trace
    signature so ``--check-determinism`` also proves the data plane
    is a pure function of the seed."""
    # imported here: faultinject must stay importable without the
    # net subsystem (and net imports ebpf, which imports this plane)
    from repro.net import DataPlane, LoadGen
    from repro.net import programs as xdp_programs

    kernel = Kernel()
    if recover:
        kernel.enable_recovery()
    plane = kernel.faults
    plane.enable(case_seed(seed, "dataplane", schedule))
    SCHEDULES[schedule](plane)
    violations: List[str] = []
    outcome = "completed"
    bpf = BpfSubsystem(kernel, engine="compiled")
    data_plane = DataPlane(kernel, bpf, ringbuf_bytes=4096)
    try:
        nic = data_plane.create_nic(1, "chaos0", queue_depth=64)
        sink = data_plane.create_nic(2, "chaos-sink")
        devmap = bpf.create_map("devmap", max_entries=4)
        for slot in (0, 2):
            try:
                devmap.set_target(slot, sink.ifindex)
            except ReproError:
                pass        # injected update failure: slot stays gone
        prog = None
        for __ in range(32):
            # load-chaos may refuse even retried loads; keep asking
            try:
                prog = bpf.load_program(
                    xdp_programs.redirect_by_source_prog(
                        devmap.map_fd),
                    ProgType.XDP, "chaos_redirect")
                break
            except VerifierError:
                continue
        if prog is None:
            return CaseResult(
                case_id="dataplane", schedule=schedule,
                outcome="load-refused",
                faults_injected=len(plane.records),
                trace_signature=plane.trace_signature(),
                violations=["dataplane replay could not load the "
                            "redirect program"])
        data_plane.attach(prog, nic)
        generator = LoadGen(
            kernel, "adversarial",
            seed=case_seed(seed, "dataplane-traffic", schedule))
        generator.drive(nic, 2000, plane=data_plane, poll_every=32)
        delivered = len(data_plane.drain())
        passed = data_plane.verdicts["pass"]
        if passed != delivered + data_plane.delivery_drops:
            violations.append(
                f"ringbuf accounting off: {passed} PASS verdicts != "
                f"{delivered} delivered + "
                f"{data_plane.delivery_drops} counted drops")
    except ReproError as exc:
        outcome = f"raised:{type(exc).__name__}"
    except Exception as exc:  # noqa: BLE001 — the point of the harness
        outcome = f"escaped:{type(exc).__name__}"
        violations.append(
            "non-kernel exception escaped the data plane: "
            f"{type(exc).__name__}: {exc}")
    violations.extend(collect_violations(kernel))
    if not panic_path_consistent(kernel):
        violations.append("taint/oops mismatch after dataplane replay")
    return CaseResult(
        case_id="dataplane", schedule=schedule, outcome=outcome,
        faults_injected=len(plane.records),
        trace_signature=(f"{plane.trace_signature()}:"
                         f"{data_plane.signature()}"),
        violations=violations)


def run_chaos(seed: int = DEFAULT_SEED,
              schedules: Optional[Sequence[str]] = None,
              case_ids: Optional[Sequence[str]] = None,
              recover: bool = False) -> ChaosReport:
    """Replay the full corpus under every requested schedule."""
    names = list(schedules or SCHEDULES)
    for name in names:
        if name not in SCHEDULES:
            raise ValueError(f"unknown chaos schedule {name!r} "
                             f"(have: {', '.join(SCHEDULES)})")
    cases = build_corpus()
    if case_ids:
        wanted = set(case_ids)
        cases = [c for c in cases if c.case_id in wanted]
    results = []
    for name in names:
        results.extend(run_case_under_schedule(case, name, seed,
                                               recover=recover)
                       for case in cases)
        results.append(run_dataplane_case(name, seed,
                                          recover=recover))
        if recover:
            results.append(demonstrate_recovery(name, seed))
    return ChaosReport(seed=seed, results=results)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``make chaos``); returns the exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.faultinject.chaos",
        description="Replay the attack corpus under fault schedules "
                    "and check isolation invariants.")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="master seed (default %(default)s)")
    parser.add_argument("--schedule", action="append", default=None,
                        choices=sorted(SCHEDULES),
                        help="schedule to replay (repeatable; "
                             "default: all)")
    parser.add_argument("--case", action="append", default=None,
                        help="restrict to one case id (repeatable)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="replay twice and require identical "
                             "fault traces")
    parser.add_argument("--recover", action="store_true",
                        help="run supervised: kernels must stay alive "
                             "(contained oopses, no taint) and each "
                             "schedule must demonstrate quarantine + "
                             "auto-reload")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every case result")
    args = parser.parse_args(argv)

    report = run_chaos(args.seed, args.schedule, args.case,
                       recover=args.recover)
    if args.verbose:
        for r in report.results:
            mark = "ok " if r.ok else "BAD"
            print(f"  {mark} {r.schedule:>14} {r.case_id:<24} "
                  f"faults={r.faults_injected:<3} {r.outcome}")
    print(f"chaos: {len(report.results)} replays, "
          f"{report.total_faults} faults injected, "
          f"{len(report.violations)} violations "
          f"(seed {report.seed})")
    status = 0
    for violation in report.violations:
        print(f"chaos: VIOLATION: {violation}")
        status = 1
    if args.check_determinism:
        again = run_chaos(args.seed, args.schedule, args.case,
                          recover=args.recover)
        if again.signature() != report.signature():
            print("chaos: NONDETERMINISM: second replay produced a "
                  "different fault trace")
            status = 1
        else:
            print("chaos: determinism check passed "
                  f"(signature {report.signature()[:16]}…)")
    return status


if __name__ == "__main__":
    sys.exit(main())
