"""Deterministic fault injection for the simulated kernel.

The paper's position is that extension safety must be *enforced at
runtime*; this package is how the reproduction proves the enforcement
machinery actually holds.  A :class:`~repro.faultinject.plane.FaultPlane`
hangs off every :class:`~repro.kernel.kernel.Kernel` and delivers
scheduled failures (ENOMEM, ENOSPC, EINVAL, panics, virtual-clock
delays) at named failpoints in helper dispatch, map operations, the
per-CPU pool, watchdog delivery, RCU grace periods and the load
pipeline — all reproducible from a single seed.

``repro.faultinject.chaos`` (imported explicitly, not re-exported
here, to avoid a cycle through the attack corpus) replays the attack
corpus under canned fault schedules and checks isolation invariants.
"""

from repro.faultinject.plane import (
    FaultAction,
    FaultPlane,
    FaultRecord,
    KNOWN_SITES,
    NthHit,
    OneShot,
    Probability,
    Schedule,
    Scripted,
    parse_action,
    parse_schedule,
)

__all__ = [
    "FaultAction",
    "FaultPlane",
    "FaultRecord",
    "KNOWN_SITES",
    "NthHit",
    "OneShot",
    "Probability",
    "Schedule",
    "Scripted",
    "parse_action",
    "parse_schedule",
]
