"""Isolation invariants: what must be true of a kernel after any run.

The paper's framework promises *graceful degradation*: whatever an
extension does — and whatever faults the injection plane deals it —
the kernel afterwards is either healthy with all transient state
released, or it went down through the official panic path.  This
module states that as a checkable predicate over one
:class:`~repro.kernel.kernel.Kernel`, shared by the chaos harness and
the pytest leak-check fixtures so both enforce exactly the same
contract.

The checks deliberately cover only state that every framework path
releases in ``finally`` blocks (RCU nesting, preemption, program
stacks, pool bump pointers, watchdog hooks) or tracks by holder
(refcounts, ringbuf reservations).  Long-lived state a test sets up on
purpose — contexts (``pt_regs``, ``skb``), map storage, loaded
programs — is not a leak and is not flagged.
"""

from __future__ import annotations

import re
from typing import Iterable, List

#: refcount holders whose outstanding references are extension leaks;
#: everything else (e.g. the corpus's deliberately-lost
#: ``kernel-sk-lookup-lost`` attribution) is an experiment's business
EXTENSION_HOLDER_PREFIXES = ("bpf:", "safelang:")

_RINGBUF_REC = re.compile(r"ringbuf\d+_rec$")


def collect_violations(
        kernel: object,
        holder_prefixes: Iterable[str] = EXTENSION_HOLDER_PREFIXES,
) -> List[str]:
    """Every isolation-invariant violation visible on ``kernel``.

    Returns human-readable strings (empty list = balanced).  Callers
    decide severity: the chaos harness fails the run, the pytest
    fixture fails the test.
    """
    violations: List[str] = []

    rcu = kernel.rcu
    if rcu.read_lock_held:
        violations.append(
            f"RCU read lock still held (nesting {rcu._nesting}, "
            f"holder {rcu._holder})")

    for cpu in kernel.cpus:
        if cpu._preempt_count != 0:
            violations.append(
                f"cpu{cpu.cpu_id}: preempt_count "
                f"{cpu._preempt_count} != 0")
        if cpu._irq_depth != 0:
            violations.append(
                f"cpu{cpu.cpu_id}: irq depth {cpu._irq_depth} != 0")
        pool = cpu.storage.get("safelang_pool")
        if pool is not None and pool.used != 0:
            violations.append(
                f"cpu{cpu.cpu_id}: pool holds {pool.used} bytes "
                "after teardown (reset missing)")

    for alloc in kernel.mem.live_allocations():
        if alloc.type_name == "bpf_stack":
            violations.append(
                f"live bpf_stack allocation at {alloc.base:#x} "
                f"(owner {alloc.owner})")
        elif _RINGBUF_REC.match(alloc.type_name):
            violations.append(
                f"outstanding ringbuf reservation at {alloc.base:#x} "
                f"({alloc.type_name}, never submitted or discarded)")

    prefixes = tuple(holder_prefixes)
    for holder in kernel.refs.outstanding_holders():
        if not holder.startswith(prefixes):
            continue
        leaked = kernel.refs.outstanding_for(holder)
        detail = ", ".join(
            f"{e.outstanding}x {e.obj.type_name}:{e.obj.name}"
            for e in leaked)
        violations.append(f"{holder} holds leaked references: {detail}")

    for name in kernel.clock.tick_callback_names():
        if name.startswith("watchdog:"):
            violations.append(f"stale watchdog tick callback {name}")

    return violations


def panic_path_consistent(kernel: object) -> bool:
    """True when taint and the oops record agree: a kernel is either
    healthy with no oopses, or tainted *with* the oops recorded — a
    taint flag without a record (or vice versa) means something died
    outside the official panic path."""
    return kernel.log.tainted == bool(kernel.log.oopses)
