"""Isolation invariants: what must be true of a kernel after any run.

The paper's framework promises *graceful degradation*: whatever an
extension does — and whatever faults the injection plane deals it —
the kernel afterwards is either healthy with all transient state
released, or it went down through the official panic path.  This
module states that as a checkable predicate over one
:class:`~repro.kernel.kernel.Kernel`, shared by the chaos harness and
the pytest leak-check fixtures so both enforce exactly the same
contract.

The checks deliberately cover only state that every framework path
releases in ``finally`` blocks (RCU nesting, preemption, program
stacks, pool bump pointers, watchdog hooks) or tracks by holder
(refcounts, ringbuf reservations).  Long-lived state a test sets up on
purpose — contexts (``pt_regs``, ``skb``), map storage, loaded
programs — is not a leak and is not flagged.
"""

from __future__ import annotations

import re
from typing import Iterable, List

#: refcount holders whose outstanding references are extension leaks;
#: everything else (e.g. the corpus's deliberately-lost
#: ``kernel-sk-lookup-lost`` attribution) is an experiment's business
EXTENSION_HOLDER_PREFIXES = ("bpf:", "safelang:")

_RINGBUF_REC = re.compile(r"ringbuf\d+_rec$")


def collect_violations(
        kernel: object,
        holder_prefixes: Iterable[str] = EXTENSION_HOLDER_PREFIXES,
) -> List[str]:
    """Every isolation-invariant violation visible on ``kernel``.

    Returns human-readable strings (empty list = balanced).  Callers
    decide severity: the chaos harness fails the run, the pytest
    fixture fails the test.
    """
    violations: List[str] = []

    rcu = kernel.rcu
    if rcu.read_lock_held:
        violations.append(
            f"RCU read lock still held (nesting {rcu._nesting}, "
            f"holder {rcu._holder})")

    for cpu in kernel.cpus:
        if cpu._preempt_count != 0:
            violations.append(
                f"cpu{cpu.cpu_id}: preempt_count "
                f"{cpu._preempt_count} != 0")
        if cpu._irq_depth != 0:
            violations.append(
                f"cpu{cpu.cpu_id}: irq depth {cpu._irq_depth} != 0")
        pool = cpu.storage.get("safelang_pool")
        if pool is not None and pool.used != 0:
            violations.append(
                f"cpu{cpu.cpu_id}: pool holds {pool.used} bytes "
                "after teardown (reset missing)")

    for alloc in kernel.mem.live_allocations():
        if alloc.type_name == "bpf_stack":
            violations.append(
                f"live bpf_stack allocation at {alloc.base:#x} "
                f"(owner {alloc.owner})")
        elif _RINGBUF_REC.match(alloc.type_name):
            violations.append(
                f"outstanding ringbuf reservation at {alloc.base:#x} "
                f"({alloc.type_name}, never submitted or discarded)")

    prefixes = tuple(holder_prefixes)
    for holder in kernel.refs.outstanding_holders():
        if not holder.startswith(prefixes):
            continue
        leaked = kernel.refs.outstanding_for(holder)
        detail = ", ".join(
            f"{e.outstanding}x {e.obj.type_name}:{e.obj.name}"
            for e in leaked)
        violations.append(f"{holder} holds leaked references: {detail}")

    for name in kernel.clock.tick_callback_names():
        if name.startswith("watchdog:"):
            violations.append(f"stale watchdog tick callback {name}")

    if not kernel.log.tainted:
        # an untainted kernel must have had every extension-held lock
        # released; a tainted kernel's lock state is wreckage and is
        # judged by the containment invariant instead
        for prefix in prefixes:
            for lock in kernel.locks.all_locks():
                owner = lock.owner
                if owner is not None and owner.startswith(prefix):
                    violations.append(
                        f"spinlock {lock.name} still held by {owner}")

    return violations


def panic_path_consistent(kernel: object) -> bool:
    """True when taint and the oops record agree.

    With scoped taint the contract is: the kernel is tainted exactly
    when it panicked or at least one recorded oops was *not* contained
    by the recovery supervisor.  A taint flag with no backing record
    (or an uncontained record with no taint) means something died —
    or was forgiven — outside the official panic path.
    """
    log = kernel.log
    expected = log.panicked or bool(log.uncontained_oopses())
    return log.tainted == expected


def recovery_consistent(kernel: object) -> List[str]:
    """Cross-checks between the supervisor's audit trail and the
    kernel's own records; empty list = consistent.  Trivially
    consistent when recovery was never enabled."""
    problems: List[str] = []
    supervisor = kernel.recovery
    log = kernel.log
    contained_records = sum(1 for o in log.oopses if o.contained)
    if supervisor is None:
        if contained_records:
            problems.append(
                f"{contained_records} oopses marked contained but no "
                "supervisor was ever attached")
        return problems
    # every containment the supervisor performed must reference real
    # oops records (or have had nothing to clear), never the reverse
    if contained_records and supervisor.contained_total == 0:
        problems.append(
            f"{contained_records} oopses marked contained but the "
            "supervisor performed no containments")
    if supervisor.escalations and not log.panicked:
        problems.append(
            f"supervisor escalated {supervisor.escalations}x but the "
            "kernel never panicked")
    for record in (supervisor.statuses()):
        if record["state"] == "quarantined" \
                and record["release_at_ns"] is None:
            problems.append(
                f"{record['tag']} quarantined without a release time")
    return problems
