"""Interleaving scenarios: planted concurrency bugs and the race-free
corpus, plus the ``make race`` harness.

The fault plane (:mod:`repro.faultinject.plane`) made *failures*
deterministic; this module does the same for *schedules*.  It carries
three kinds of scenario, all built on the deterministic SMP plane:

* **Planted bugs** — an unlocked read-modify-write racing a properly
  locked one (``unlocked_counter``: classic lock-discipline violation
  the lockset detector must flag) and an RCU writer that frees a
  just-unpublished object without waiting for a grace period
  (``rcu_use_after_grace``: some interleavings dereference freed
  memory, oopsing through the official path).  The
  :class:`~repro.analysis.racehunt.ScheduleExplorer` must find both
  within a bounded seeded budget and hand back replayable seeds.
* **Race-free corpus** — the same shapes done right: both writers
  take the lock, counters use atomic RMW, per-CPU maps keep CPUs on
  their own slices, the RCU writer synchronizes before freeing.  The
  detector must stay silent on *every* schedule (zero false
  positives), and the placement-invariant run signature must be
  bit-identical for nproc=1/2/4.

Scenario contract: a builder takes a fresh
:class:`~repro.kernel.smp.SmpScheduler`, populates its kernel, spawns
tasks, and returns a fingerprint callable evaluating to the
**placement-invariant** final state (schedule-dependent intermediate
values stay out, so the nproc differential can hash it).

Run it: ``python -m repro.faultinject.interleave [--budget N]
[--seed S] [--smoke]`` (the ``make race`` target); exits nonzero if a
planted bug goes unfound, a replay seed fails to reproduce, or the
race-free corpus produces a finding or a signature mismatch.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.racehunt import RaceDetector, ScheduleExplorer, replay
from repro.ebpf.loader import BpfSubsystem
from repro.kernel.kernel import Kernel
from repro.kernel.smp import SeededInterleaving, SmpScheduler

#: read-modify-write iterations per task (small: interleavings, not
#: throughput, are the product here)
ITERS = 4

#: virtual ns charged per scenario iteration, so final clocks are a
#: meaningful (and placement-invariant) part of the signature
WORK_PER_ITER = 10


def _counter_map(smp: SmpScheduler):
    """A shared 8-byte counter in a real array map (fd storage)."""
    bpf = BpfSubsystem(smp.kernel)
    counter = bpf.create_map("array", value_size=8, max_entries=1)
    return counter


def _rmw(kernel: Kernel, addr: int) -> None:
    """One unlocked read-modify-write of a u64 — two yield points."""
    value = kernel.mem.read_u64(addr)
    kernel.mem.write_u64(addr, value + 1)


# -- planted bugs ------------------------------------------------------------

def scenario_unlocked_counter(smp: SmpScheduler) -> Callable[[], object]:
    """PLANTED BUG (lock discipline): one writer increments a shared
    map value under a spinlock, the other skips the lock.  Every
    interleaving carries the race; the lockset detector must flag the
    unlocked write against the locked one."""
    kernel = smp.kernel
    counter = _counter_map(smp)
    lock = kernel.locks.create("counter.lock")
    addr = counter.storage.base

    def locked_writer() -> None:
        for __ in range(ITERS):
            kernel.work(WORK_PER_ITER)
            lock.lock("locked-writer")
            _rmw(kernel, addr)
            lock.unlock("locked-writer")

    def unlocked_writer() -> None:
        for __ in range(ITERS):
            kernel.work(WORK_PER_ITER)
            _rmw(kernel, addr)  # the planted bug: no lock

    smp.spawn(locked_writer, cpu=0, name="locked-writer")
    smp.spawn(unlocked_writer, cpu=1 % len(kernel.cpus),
              name="unlocked-writer")
    return lambda: ("counter", counter.read_value(0).hex())


def scenario_rcu_use_after_grace(smp: SmpScheduler) \
        -> Callable[[], object]:
    """PLANTED BUG (RCU): the writer unpublishes the object and frees
    it immediately — no grace period.  Interleavings where the reader
    loaded the pointer before the unpublish dereference freed memory:
    a genuine use-after-free oops through the official panic path."""
    kernel = smp.kernel
    cell = kernel.mem.kmalloc(8, type_name="rcu_ptr", owner="interleave")
    obj = kernel.mem.kmalloc(8, type_name="rcu_obj", owner="interleave")
    kernel.mem.write_u64(obj.base, 0x5AFE)
    kernel.mem.write_u64(cell.base, obj.base)

    def reader() -> Optional[int]:
        kernel.work(WORK_PER_ITER)
        kernel.rcu.read_lock(holder="reader")
        try:
            with smp.atomic_scope():  # rcu_dereference (READ_ONCE)
                ptr = kernel.mem.read_u64(cell.base)
            # instruction boundary between load and dereference —
            # exactly where the missing grace period bites
            smp.yield_point("preempt", "rcu-window")
            if ptr:
                return kernel.mem.read_u64(ptr)
            return None
        finally:
            kernel.rcu.read_unlock()

    def buggy_writer() -> None:
        kernel.work(WORK_PER_ITER)
        with smp.atomic_scope():  # rcu_assign_pointer(cell, NULL)
            kernel.mem.write_u64(cell.base, 0)
        # the planted bug: no synchronize_rcu() before the free
        kernel.mem.kfree(obj)

    smp.spawn(reader, cpu=0, name="reader")
    smp.spawn(buggy_writer, cpu=1 % len(kernel.cpus), name="writer")
    return lambda: ("cell", kernel.mem.read_u64(cell.base), obj.freed)


# -- race-free corpus --------------------------------------------------------

def scenario_locked_counter(smp: SmpScheduler) -> Callable[[], object]:
    """Race-free: both writers honour the spinlock."""
    kernel = smp.kernel
    counter = _counter_map(smp)
    lock = kernel.locks.create("counter.lock")
    addr = counter.storage.base

    def writer(owner: str) -> Callable[[], None]:
        def body() -> None:
            for __ in range(ITERS):
                kernel.work(WORK_PER_ITER)
                lock.lock(owner)
                _rmw(kernel, addr)
                lock.unlock(owner)
        return body

    ncpu = len(kernel.cpus)
    smp.spawn(writer("writer-a"), cpu=0, name="writer-a")
    smp.spawn(writer("writer-b"), cpu=1 % ncpu, name="writer-b")
    return lambda: ("counter", counter.read_value(0).hex())


def scenario_atomic_counter(smp: SmpScheduler) -> Callable[[], object]:
    """Race-free: lock-free atomic increments (atomic-vs-atomic pairs
    are not races, and the RMW is one indivisible step)."""
    kernel = smp.kernel
    counter = _counter_map(smp)
    addr = counter.storage.base

    def writer() -> None:
        for __ in range(ITERS):
            kernel.work(WORK_PER_ITER)
            smp.yield_point("atomic", "counter")
            with smp.atomic_scope():
                _rmw(kernel, addr)

    ncpu = len(kernel.cpus)
    smp.spawn(writer, cpu=0, name="atomic-a")
    smp.spawn(writer, cpu=1 % ncpu, name="atomic-b")
    return lambda: ("counter", counter.read_value(0).hex())


def scenario_percpu_counter(smp: SmpScheduler) -> Callable[[], object]:
    """Race-free: per-CPU map — every task touches only the slice of
    the CPU it executes on, so nothing is shared; the userspace sum
    across CPUs is placement-invariant."""
    kernel = smp.kernel
    bpf = BpfSubsystem(kernel)
    counter = bpf.create_map("percpu_array", value_size=8, max_entries=1)
    key = (0).to_bytes(4, "little")

    def writer() -> None:
        for __ in range(ITERS):
            kernel.work(WORK_PER_ITER)
            addr = counter.lookup_addr(key)
            assert addr is not None
            with smp.atomic_scope():  # this_cpu_add: preempt-safe RMW
                _rmw(kernel, addr)

    ncpu = len(kernel.cpus)
    smp.spawn(writer, cpu=0, name="percpu-a")
    smp.spawn(writer, cpu=1 % ncpu, name="percpu-b")
    return lambda: ("sum", counter.sum_u64(0))


def scenario_rcu_publish(smp: SmpScheduler) -> Callable[[], object]:
    """Race-free: the writer waits for a real grace period before
    freeing, so a reader inside its section always dereferences live
    memory.  (The reader's observed value is schedule-dependent and
    deliberately left out of the fingerprint.)"""
    kernel = smp.kernel
    cell = kernel.mem.kmalloc(8, type_name="rcu_ptr", owner="interleave")
    obj = kernel.mem.kmalloc(8, type_name="rcu_obj", owner="interleave")
    kernel.mem.write_u64(obj.base, 0x5AFE)
    kernel.mem.write_u64(cell.base, obj.base)

    def reader() -> Optional[int]:
        kernel.work(WORK_PER_ITER)
        kernel.rcu.read_lock(holder="reader")
        try:
            with smp.atomic_scope():
                ptr = kernel.mem.read_u64(cell.base)
            smp.yield_point("preempt", "rcu-window")
            if ptr:
                return kernel.mem.read_u64(ptr)
            return None
        finally:
            kernel.rcu.read_unlock()

    def writer() -> None:
        kernel.work(WORK_PER_ITER)
        with smp.atomic_scope():
            kernel.mem.write_u64(cell.base, 0)
        kernel.rcu.synchronize()  # the discipline the bug skipped
        kernel.mem.kfree(obj)

    smp.spawn(reader, cpu=0, name="reader")
    smp.spawn(writer, cpu=1 % len(kernel.cpus), name="writer")
    return lambda: ("cell", kernel.mem.read_u64(cell.base), obj.freed,
                    kernel.rcu.gp_seq)


#: name -> (builder, expectation); expectation is what the explorer /
#: corpus check asserts
PLANTED = {
    "unlocked_counter": (scenario_unlocked_counter, "race"),
    "rcu_use_after_grace": (scenario_rcu_use_after_grace, "oops"),
}

RACE_FREE = {
    "locked_counter": scenario_locked_counter,
    "atomic_counter": scenario_atomic_counter,
    "percpu_counter": scenario_percpu_counter,
    "rcu_publish": scenario_rcu_publish,
}


# -- harness -----------------------------------------------------------------

def run_signature(scenario: Callable, nr_cpus: int, seed: int) -> \
        Tuple[str, str, int]:
    """One run: (placement-invariant signature, trace signature,
    detector findings).

    The invariant signature hashes the scenario fingerprint, the final
    virtual clock and the race count — everything that must not depend
    on CPU placement; the trace signature additionally pins the exact
    interleaving (same seed + same nproc => identical)."""
    kernel = Kernel(nr_cpus=nr_cpus)
    detector = RaceDetector()
    smp = SmpScheduler(
        kernel,
        schedule=SeededInterleaving(seed, nr_cpus=nr_cpus),
        seed=seed, detector=detector)
    fingerprint = scenario(smp)
    smp.run()
    digest = hashlib.sha256()
    digest.update(repr(fingerprint()).encode())
    digest.update(kernel.clock.now_ns.to_bytes(8, "little"))
    digest.update(len(detector.races).to_bytes(4, "little"))
    return digest.hexdigest(), smp.trace_signature(), len(detector.races)


def hunt_planted(budget: int, base_seed: int) -> Dict[str, object]:
    """Explore every planted scenario; returns a report and raises
    AssertionError if a bug goes unfound or a seed fails to replay."""
    report: Dict[str, object] = {}
    for name, (builder, expected) in sorted(PLANTED.items()):
        explorer = ScheduleExplorer(builder, nr_cpus=2,
                                    base_seed=base_seed)
        result = explorer.explore(budget=budget)
        wanted = result.by_kind(expected)
        if not wanted:
            raise AssertionError(
                f"{name}: planted {expected} not found in {budget} "
                f"seeded schedules (base seed {base_seed})")
        finding = wanted[0]
        # the replayable-seed contract: the reported seed reproduces
        # the identical interleaving, byte for byte
        replayed = replay(builder, finding.seed, nr_cpus=2)
        if replayed.trace_signature() != finding.trace_signature:
            raise AssertionError(
                f"{name}: seed {finding.seed} failed to reproduce its "
                f"trace")
        report[name] = {
            "expected": expected,
            "found": finding.description,
            "replay_seed": finding.seed,
            "schedules_run": result.schedules_run,
            "distinct_states": result.distinct_states,
        }
    return report


def check_race_free(budget: int, base_seed: int,
                    nprocs: Tuple[int, ...] = (1, 2, 4),
                    scenarios: Optional[Dict[str, Callable]] = None) \
        -> Dict[str, object]:
    """The nproc-invariance differential over the race-free corpus.

    For every scenario and every seed: zero detector findings on every
    nproc, one identical invariant signature across nprocs, and
    repeated same-seed runs pinning identical traces."""
    if scenarios is None:
        scenarios = RACE_FREE
    report: Dict[str, object] = {}
    for name, builder in sorted(scenarios.items()):
        signatures: set = set()
        for index in range(budget):
            seed = base_seed + index
            per_nproc: List[str] = []
            for nproc in nprocs:
                invariant, trace, races = run_signature(
                    builder, nproc, seed)
                if races:
                    raise AssertionError(
                        f"{name}: false positive — {races} race(s) "
                        f"flagged at nproc={nproc} seed={seed}")
                invariant2, trace2, __ = run_signature(
                    builder, nproc, seed)
                if (invariant, trace) != (invariant2, trace2):
                    raise AssertionError(
                        f"{name}: nondeterministic at nproc={nproc} "
                        f"seed={seed}")
                per_nproc.append(invariant)
            if len(set(per_nproc)) != 1:
                raise AssertionError(
                    f"{name}: run signature differs across nproc "
                    f"{nprocs} at seed={seed}")
            signatures.add(per_nproc[0])
        report[name] = {
            "seeds": budget,
            "nprocs": list(nprocs),
            "distinct_outcomes": len(signatures),
        }
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: hunt planted bugs, then gate the race-free corpus."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.faultinject.interleave",
        description="Deterministic race hunt: find the planted "
                    "concurrency bugs, prove the race-free corpus "
                    "clean and nproc-invariant.")
    parser.add_argument("--budget", type=int, default=32,
                        help="seeded schedules per planted scenario "
                             "(default 32)")
    parser.add_argument("--corpus-seeds", type=int, default=4,
                        help="seeds per race-free scenario (default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed (default 0)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode: minimal budgets "
                             "(also via REPRO_RACE_SMOKE=1)")
    args = parser.parse_args(argv)

    budget = args.budget
    corpus_seeds = args.corpus_seeds
    if args.smoke or os.environ.get("REPRO_RACE_SMOKE") == "1":
        budget = min(budget, 12)
        corpus_seeds = min(corpus_seeds, 2)

    try:
        planted = hunt_planted(budget, args.seed)
        corpus = check_race_free(corpus_seeds, args.seed)
    except AssertionError as failure:
        print(json.dumps({"ok": False, "error": str(failure)},
                         indent=2))
        return 1
    print(json.dumps({
        "ok": True,
        "budget": budget,
        "base_seed": args.seed,
        "planted": planted,
        "race_free": corpus,
    }, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
