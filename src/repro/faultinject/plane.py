"""The fault-injection plane: named failpoints + seeded schedules.

Modeled on the kernel's own fault-injection framework
(``CONFIG_FAULT_INJECTION``: ``failslab``, ``fail_function``,
``fail_make_request``) with one crucial difference — everything here is
*deterministic*.  A single seed drives one :class:`random.Random`; the
simulation itself is deterministic, so the sequence of failpoint hits
is deterministic, so the sequence of injected faults is a pure function
of (workload, armed schedules, seed).  Chaos runs are therefore
replayable: the same seed produces the same fault trace, byte for
byte, which :meth:`FaultPlane.trace_signature` asserts.

Hot-path contract: the plane follows the telemetry rule ("off costs one
attribute test").  Sites guard every check with ``if plane.armed:`` —
a plain bool that is False unless the plane is both enabled and has at
least one armed failpoint — so the dispatch loop pays nothing when no
chaos experiment is running.

Site naming: dotted, lowercase, most-significant first, with wildcard
matching via :mod:`fnmatch` (``helper.*`` arms every helper).  The
well-known sites are listed in :data:`KNOWN_SITES`; the plane does not
reject unknown names (a test may invent private sites), the registry
exists so ``bpftool fault list`` can show users what is wired.
"""

from __future__ import annotations

import fnmatch
import hashlib
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

# errno numbers (sites return the *negative* value, kernel-style)
ENOENT = 2
EIO = 5
E2BIG = 7
EAGAIN = 11
ENOMEM = 12
EFAULT = 14
EINVAL = 22
ENOSPC = 28
ETIMEDOUT = 110

ERRNO_NAMES: Dict[str, int] = {
    "ENOENT": ENOENT,
    "EIO": EIO,
    "E2BIG": E2BIG,
    "EAGAIN": EAGAIN,
    "ENOMEM": ENOMEM,
    "EFAULT": EFAULT,
    "EINVAL": EINVAL,
    "ENOSPC": ENOSPC,
    "ETIMEDOUT": ETIMEDOUT,
}

#: the failpoints wired into the simulation, for ``bpftool fault list``
KNOWN_SITES: Dict[str, str] = {
    "helper.<name>": (
        "eBPF helper dispatch; errno becomes the helper's return "
        "value, panic oopses through the official panic path"),
    "map.lookup": "map lookup; errno makes the lookup miss",
    "map.update": "map update; errno returned to the caller",
    "map.delete": "map delete; errno returned to the caller",
    "map.alloc": (
        "per-element map allocation (hash value kmalloc, ringbuf "
        "record); fault surfaces as -ENOMEM/-ENOSPC"),
    "pool.alloc": (
        "SafeLang per-CPU pool allocation; fault counts as an "
        "exhaustion and returns NULL to the extension"),
    "watchdog.fire": (
        "watchdog delivery; errno/panic suppress this delivery "
        "attempt, delay pushes the deadline by delay_ns"),
    "rcu.synchronize": "grace-period wait; delay stretches it",
    "load.verify": (
        "eBPF verifier entry; errno rejects the program, panic "
        "oopses as a verifier internal fault"),
    "load.signature": (
        "SafeLang signature check; any fault makes verification "
        "fail"),
    "net.nic.rx": (
        "NIC packet ingress; errno drops the packet on the wire "
        "(counted rx_drops reason=nic_drop) before any queue sees it"),
    "net.queue.enqueue": (
        "per-CPU RX queue admission; errno drops the packet as a "
        "queue overflow even when the ring has room"),
    "net.redirect": (
        "devmap redirect resolution after an XDP_REDIRECT verdict; "
        "errno makes the target NIC unreachable "
        "(rx_drops reason=redirect_gone)"),
    "fleet.rpc.send.<node>": (
        "control-channel request delivery to one fleet node; errno "
        "drops the request on the wire, delay models a slow hop "
        "(past the RPC deadline the request still lands but the "
        "client has given up), dup delivers the request twice"),
    "fleet.rpc.reply.<node>": (
        "control-channel reply delivery from one fleet node; errno "
        "drops the reply after the node applied the request (the "
        "case idempotent retries exist for), delay/dup as for send"),
    "fleet.node.crash.<node>": (
        "fleet node agent crash; panic loses the in-flight request "
        "and takes the node down for the policy's reboot span on "
        "the control clock"),
    "fleet.partition.<node>": (
        "network partition between the orchestrator and one node; "
        "any action cuts both directions for this delivery attempt "
        "(the partition heals when its schedule stops firing)"),
    "fleet.orch.crash": (
        "rollout orchestrator crash, checked after every journal "
        "append; panic kills the rollout mid-flight — "
        "RolloutOrchestrator.resume() picks it back up from the "
        "write-ahead journal"),
}


@dataclass(frozen=True)
class FaultAction:
    """What to do when a schedule fires.

    ``kind`` is one of ``"errno"`` (site fails with ``-errno``),
    ``"panic"`` (site takes the official panic path), ``"delay"``
    (``delay_ns`` virtual nanoseconds pass before the site proceeds)
    or ``"dup"`` (the site's operation is performed twice — only
    meaningful at sites modeling a delivery, e.g. the fleet control
    channel; sites without a duplication semantic ignore it).
    """

    kind: str
    errno: int = 0
    delay_ns: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("errno", "panic", "delay", "dup"):
            raise ValueError(f"unknown fault action kind {self.kind!r}")
        if self.kind == "errno" and self.errno <= 0:
            raise ValueError("errno action needs a positive errno")
        if self.kind == "delay" and self.delay_ns <= 0:
            raise ValueError("delay action needs a positive delay_ns")

    @staticmethod
    def err(errno: int) -> "FaultAction":
        """Fail with ``-errno``."""
        return FaultAction("errno", errno=errno)

    @staticmethod
    def panic() -> "FaultAction":
        """Take the official panic path at the site."""
        return FaultAction("panic")

    @staticmethod
    def delay(delay_ns: int) -> "FaultAction":
        """Stall the site for ``delay_ns`` virtual nanoseconds."""
        return FaultAction("delay", delay_ns=delay_ns)

    @staticmethod
    def dup() -> "FaultAction":
        """Perform the site's delivery twice."""
        return FaultAction("dup")

    def describe(self) -> str:
        """Human-readable form (``errno:ENOMEM``, ``delay:5000``)."""
        if self.kind == "errno":
            for name, num in ERRNO_NAMES.items():
                if num == self.errno:
                    return f"errno:{name}"
            return f"errno:{self.errno}"
        if self.kind == "delay":
            return f"delay:{self.delay_ns}"
        return self.kind


class Schedule:
    """Decides, per failpoint hit, whether the fault fires.

    Schedules are stateless with respect to the plane: they see the
    1-based hit index of *their own arm* and the plane's seeded RNG.
    Subclasses with internal state (``Scripted``) belong to exactly one
    arm.
    """

    def decide(self, hit: int, rng: Random) -> bool:
        """True when the fault should fire on this hit."""
        raise NotImplementedError

    def describe(self) -> str:
        """Parseable human-readable form (``prob:0.5``)."""
        raise NotImplementedError


class Probability(Schedule):
    """Fire on each hit with probability ``p`` (seeded, reproducible)."""

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability {p} outside [0, 1]")
        self.p = p

    def decide(self, hit: int, rng: Random) -> bool:
        """See :meth:`Schedule.decide`."""
        return rng.random() < self.p

    def describe(self) -> str:
        """See :meth:`Schedule.describe`."""
        return f"prob:{self.p:g}"


class NthHit(Schedule):
    """Fire on hit ``n`` exactly once — or on every multiple of ``n``
    when ``every`` is set (the kernel's ``interval=`` knob)."""

    def __init__(self, n: int, every: bool = False) -> None:
        if n < 1:
            raise ValueError("nth-hit schedule needs n >= 1")
        self.n = n
        self.every = every

    def decide(self, hit: int, rng: Random) -> bool:
        """See :meth:`Schedule.decide`."""
        if self.every:
            return hit % self.n == 0
        return hit == self.n

    def describe(self) -> str:
        """See :meth:`Schedule.describe`."""
        return f"every:{self.n}" if self.every else f"nth:{self.n}"


class OneShot(NthHit):
    """Fire on the first hit, then never again."""

    def __init__(self) -> None:
        super().__init__(1)

    def describe(self) -> str:
        """See :meth:`Schedule.describe`."""
        return "oneshot"


class Scripted(Schedule):
    """Replay an explicit fire/skip sequence, one entry per hit.

    Past the end of the script the fault never fires again — a script
    is a finite experiment, not a cycle.
    """

    def __init__(self, script: Sequence[bool]) -> None:
        self.script: Tuple[bool, ...] = tuple(bool(x) for x in script)

    def decide(self, hit: int, rng: Random) -> bool:
        """See :meth:`Schedule.decide`."""
        if hit <= len(self.script):
            return self.script[hit - 1]
        return False

    def describe(self) -> str:
        """See :meth:`Schedule.describe`."""
        return "script:" + ",".join("1" if x else "0"
                                    for x in self.script)


@dataclass
class ArmedFailpoint:
    """One armed (pattern, schedule, action) rule."""

    pattern: str
    schedule: Schedule
    action: FaultAction
    hits: int = 0
    fires: int = 0

    def matches(self, site: str) -> bool:
        """True when ``site`` falls under this rule's pattern."""
        return fnmatch.fnmatchcase(site, self.pattern)


@dataclass(frozen=True)
class FaultRecord:
    """One delivered fault, as it appears in the fault trace."""

    seq: int
    site: str
    pattern: str
    kind: str
    errno: int
    delay_ns: int
    hit: int
    now_ns: int

    def as_tuple(self) -> Tuple[object, ...]:
        """Stable tuple form, hashed into the trace signature."""
        return (self.seq, self.site, self.pattern, self.kind,
                self.errno, self.delay_ns, self.hit, self.now_ns)


class FaultPlane:
    """Per-kernel fault delivery: armed failpoints + the fault trace.

    Sites call ``plane.check("site.name")`` — but only behind an
    ``if plane.armed:`` guard, keeping the disabled plane free.  The
    returned :class:`FaultAction` (or None) tells the site what to do;
    errno and panic semantics are the *site's* job because only the
    site knows its error convention.  Delay is applied here on the
    virtual clock unless the site opts out (the watchdog must: its
    check runs inside a clock tick callback, where a nested
    ``clock.advance`` would recurse).
    """

    def __init__(self, clock: Optional[object] = None,
                 telemetry: Optional[object] = None) -> None:
        self.clock = clock
        self.telemetry = telemetry
        #: the single-attribute hot-path gate; True iff enabled and
        #: at least one failpoint is armed
        self.armed = False
        self.enabled = False
        self.seed: Optional[int] = None
        self._rng = Random(0)
        self.arms: List[ArmedFailpoint] = []
        self.records: List[FaultRecord] = []
        self.site_hits: Dict[str, int] = {}

    # -- control plane ------------------------------------------------------

    def enable(self, seed: int = 0) -> None:
        """Turn delivery on, reseeding the RNG (replay starts here)."""
        self.enabled = True
        self.seed = seed
        self._rng = Random(seed)
        self._update_gate()

    def disable(self) -> None:
        """Turn delivery off; armed rules are kept for inspection."""
        self.enabled = False
        self._update_gate()

    def arm(self, pattern: str, schedule: Schedule,
            action: FaultAction) -> ArmedFailpoint:
        """Arm a failpoint rule; rules are consulted in arm order and
        the first one whose schedule fires wins the hit."""
        rule = ArmedFailpoint(pattern, schedule, action)
        self.arms.append(rule)
        self._update_gate()
        return rule

    def disarm(self, pattern: str) -> int:
        """Remove every rule with exactly this pattern; returns how
        many were removed."""
        before = len(self.arms)
        self.arms = [a for a in self.arms if a.pattern != pattern]
        self._update_gate()
        return before - len(self.arms)

    def reset(self) -> None:
        """Disarm everything and clear the trace (counters included)."""
        self.arms = []
        self.records = []
        self.site_hits = {}
        self._update_gate()

    def _update_gate(self) -> None:
        self.armed = self.enabled and bool(self.arms)

    # -- delivery -----------------------------------------------------------

    def check(self, site: str,
              apply_delay: bool = True) -> Optional[FaultAction]:
        """One failpoint hit: consult armed rules, deliver at most one
        fault, record it.  Returns the action to apply, or None."""
        if not self.armed:
            return None
        self.site_hits[site] = self.site_hits.get(site, 0) + 1
        for arm in self.arms:
            if not arm.matches(site):
                continue
            arm.hits += 1
            if not arm.schedule.decide(arm.hits, self._rng):
                continue
            arm.fires += 1
            action = arm.action
            self.records.append(FaultRecord(
                seq=len(self.records), site=site, pattern=arm.pattern,
                kind=action.kind, errno=action.errno,
                delay_ns=action.delay_ns, hit=arm.hits,
                now_ns=self.clock.now_ns if self.clock else 0))
            if self.telemetry is not None:
                self.telemetry.record_fault(
                    site, action.describe(),
                    {"pattern": arm.pattern, "hit": arm.hits})
            if action.kind == "delay" and apply_delay \
                    and self.clock is not None:
                self.clock.advance(action.delay_ns)
            return action
        return None

    # -- inspection ---------------------------------------------------------

    def trace_signature(self) -> str:
        """SHA-256 over the fault trace; two runs with the same seed
        and workload must produce the same signature."""
        digest = hashlib.sha256()
        for record in self.records:
            digest.update(repr(record.as_tuple()).encode())
        return digest.hexdigest()

    def status(self) -> List[Dict[str, object]]:
        """Per-rule counters for ``bpftool fault status``."""
        return [{
            "pattern": arm.pattern,
            "schedule": arm.schedule.describe(),
            "action": arm.action.describe(),
            "hits": arm.hits,
            "fires": arm.fires,
        } for arm in self.arms]


# -- CLI parsing helpers (shared by bpftool and the chaos harness) ----------

def parse_action(text: str) -> FaultAction:
    """Parse ``errno:ENOMEM`` / ``errno:22`` / ``panic`` / ``dup`` /
    ``delay:5000`` into a :class:`FaultAction`."""
    kind, _, arg = text.partition(":")
    if kind == "panic":
        return FaultAction.panic()
    if kind == "dup":
        return FaultAction.dup()
    if kind == "errno":
        num = ERRNO_NAMES.get(arg.upper())
        if num is None:
            try:
                num = abs(int(arg))
            except ValueError:
                raise ValueError(f"unknown errno {arg!r}") from None
        return FaultAction.err(num)
    if kind == "delay":
        return FaultAction.delay(int(arg))
    raise ValueError(f"unknown fault action {text!r}")


def parse_schedule(text: str) -> Schedule:
    """Parse ``prob:0.5`` / ``nth:3`` / ``every:3`` / ``oneshot`` /
    ``script:1,0,1`` into a :class:`Schedule`."""
    kind, _, arg = text.partition(":")
    if kind == "oneshot":
        return OneShot()
    if kind == "prob":
        return Probability(float(arg))
    if kind == "nth":
        return NthHit(int(arg))
    if kind == "every":
        return NthHit(int(arg), every=True)
    if kind == "script":
        return Scripted([x.strip() in ("1", "true") for x in
                         arg.split(",") if x.strip() != ""])
    raise ValueError(f"unknown fault schedule {text!r}")
