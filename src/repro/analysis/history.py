"""Historical ground-truth series for Figures 2 and 4.

Figures 2 and 4 are measurements of Linux history (verifier size and
helper count per kernel release).  The source trees cannot ship with
this reproduction, so the measured series are encoded as data — the
benches then regenerate the figures from them and check the paper's
quantitative claims (≈12k verifier LoC by v6.1, ~50 new helpers per
two years) against the series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: release year of each kernel version on the figures' x-axes
VERSION_YEARS: Dict[str, int] = {
    "v3.18": 2014,
    "v4.3": 2015,
    "v4.9": 2016,
    "v4.14": 2017,
    "v4.20": 2018,
    "v5.4": 2019,
    "v5.10": 2020,
    "v5.15": 2021,
    "v5.18": 2022,
    "v6.1": 2022,
}

#: Figure 2: lines of code of kernel/bpf/verifier.c per version.
#: Start ~1.7k in v3.18, ~12k by v6.1, monotone growth.
VERIFIER_LOC: Dict[str, int] = {
    "v3.18": 1700,
    "v4.3": 2200,
    "v4.9": 3100,
    "v4.14": 4400,
    "v4.20": 6100,
    "v5.4": 8100,
    "v5.10": 9600,
    "v5.15": 11000,
    "v6.1": 12200,
}

#: verifier features added per version: what the LoC growth bought.
#: Used by the Figure 2 cross-check against our own verifier's
#: per-feature module sizes.
VERIFIER_FEATURES: Dict[str, List[str]] = {
    "v3.18": ["base symbolic execution", "register tracking"],
    "v4.3": ["packet access checks"],
    "v4.9": ["state pruning improvements"],
    "v4.14": ["tnum tracking", "signed/unsigned bounds"],
    "v4.20": ["BPF-to-BPF calls [45]", "reference tracking"],
    "v5.4": ["bpf_spin_lock discipline [48]", "bounded loops"],
    "v5.10": ["callback verification", "sleepable programs"],
    "v5.15": ["bpf_loop support", "allow-list pointer arithmetic"],
    "v6.1": ["dynptr checks", "kfunc support [16]"],
}


@dataclass(frozen=True)
class SeriesPoint:
    """One point on a Figure 2 / Figure 4 style series."""

    version: str
    year: int
    value: int


def verifier_loc_series() -> List[SeriesPoint]:
    """Figure 2 as an ordered series."""
    return [SeriesPoint(v, VERSION_YEARS[v], loc)
            for v, loc in VERIFIER_LOC.items()]


def helper_count_series(registry=None) -> List[SeriesPoint]:
    """Figure 4 as an ordered series, measured from the registry's
    per-version introduction tags (builds the default registry when
    none is given)."""
    if registry is None:
        from repro.ebpf.helpers.registry import build_default_registry
        registry = build_default_registry()
    from repro.ebpf.helpers.catalog import VERSION_TIMELINE
    points = []
    for version in VERSION_TIMELINE:
        if version not in VERSION_YEARS:
            continue
        count = registry.count_at_version(VERSION_TIMELINE, version)
        if count:
            points.append(SeriesPoint(version, VERSION_YEARS[version],
                                      count))
    return points


def growth_per_two_years(series: List[SeriesPoint]) -> List[float]:
    """Average growth per 2-year window along a series — the paper's
    'roughly 50 helper functions are added every two years'."""
    rates: List[float] = []
    for earlier, later in zip(series, series[1:]):
        span = later.year - earlier.year
        if span <= 0:
            continue
        rates.append((later.value - earlier.value) * 2.0 / span)
    return rates
