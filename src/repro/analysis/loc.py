"""Lines-of-code counting.

Two uses:

* counting the synthetic kernel's LoC by subsystem (context for the
  call-graph analysis), and
* counting *this repository's own verifier implementation* — the
  Figure 2 cross-check: our verifier, like Linux's, spends most of its
  size on feature checks layered over a small symbolic-execution core,
  and the per-module breakdown quantifies that.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class LocEntry:
    """LoC of one source file."""

    path: str
    code: int
    comment: int
    blank: int

    @property
    def total(self) -> int:
        """All lines: code + comment + blank."""
        return self.code + self.comment + self.blank


def count_python_file(path: str) -> LocEntry:
    """Count code/comment/blank lines of one Python file.

    Docstrings are counted as comment lines (heuristically: contiguous
    regions opened and closed by triple quotes)."""
    code = comment = blank = 0
    in_doc = False
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if in_doc:
                comment += 1
                if line.endswith('"""') or line.endswith("'''"):
                    in_doc = False
                continue
            if not line:
                blank += 1
            elif line.startswith("#"):
                comment += 1
            elif line.startswith('"""') or line.startswith("'''"):
                comment += 1
                quote = line[:3]
                body = line[3:]
                if not (body.endswith(quote) and len(body) >= 3) \
                        and not (len(line) > 3 and line.endswith(quote)):
                    in_doc = True
            else:
                code += 1
    return LocEntry(path=path, code=code, comment=comment, blank=blank)


def count_package(package_dir: str) -> List[LocEntry]:
    """LoC entries for every ``.py`` file under a directory."""
    entries: List[LocEntry] = []
    for root, __, files in os.walk(package_dir):
        for name in sorted(files):
            if name.endswith(".py"):
                entries.append(count_python_file(
                    os.path.join(root, name)))
    return entries


def verifier_loc_breakdown() -> Dict[str, int]:
    """Code LoC of this repo's verifier, by module — the Figure 2
    cross-check subject."""
    import repro.ebpf.verifier as verifier_pkg
    package_dir = os.path.dirname(verifier_pkg.__file__)
    return {
        os.path.basename(entry.path): entry.code
        for entry in count_package(package_dir)
    }


def funcdb_loc_by_subsystem(db) -> Dict[str, int]:
    """Synthetic kernel LoC per subsystem."""
    totals: Dict[str, int] = {}
    for fn in db.functions:
        totals[fn.subsystem] = totals.get(fn.subsystem, 0) + fn.loc
    return totals
