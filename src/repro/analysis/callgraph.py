"""Static call-graph complexity analysis (Figure 3).

The paper "statically analyzed the Linux kernel version 5.18 to
compute the call graph of each helper function" and reports the number
of unique nodes per helper.  This module is the equivalent analysis
over our synthetic kernel: an *independent* breadth-first reachability
measurement over the function database (it does not reuse the
closure sizes the generator computed — re-measurement is the point).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ebpf.helpers.registry import HelperRegistry
from repro.kernel.funcdb import FunctionDatabase


@dataclass
class HelperComplexity:
    """Figure 3 datum for one helper."""

    name: str
    callgraph_nodes: int


@dataclass
class ComplexityReport:
    """The full Figure 3 population with the paper's summary stats."""

    helpers: List[HelperComplexity]

    @property
    def total(self) -> int:
        """Number of helpers measured."""
        return len(self.helpers)

    @property
    def max_helper(self) -> HelperComplexity:
        """The deepest helper (the paper: bpf_sys_bpf)."""
        return max(self.helpers, key=lambda h: h.callgraph_nodes)

    @property
    def min_helper(self) -> HelperComplexity:
        """The shallowest helper (the paper: pid_tgid at 0)."""
        return min(self.helpers, key=lambda h: h.callgraph_nodes)

    def fraction_at_least(self, threshold: int) -> float:
        """Fraction of helpers with >= ``threshold`` call-graph nodes
        (the paper: 52.2% at 30+, 34.5% at 500+)."""
        if not self.helpers:
            return 0.0
        hits = sum(1 for h in self.helpers
                   if h.callgraph_nodes >= threshold)
        return hits / len(self.helpers)

    def sorted_sizes(self) -> List[int]:
        """Sizes in ascending order (the Figure 3 scatter)."""
        return sorted(h.callgraph_nodes for h in self.helpers)

    def percentile(self, q: float) -> int:
        """q-th percentile of the size distribution."""
        sizes = self.sorted_sizes()
        if not sizes:
            return 0
        index = min(len(sizes) - 1, int(q * (len(sizes) - 1)))
        return sizes[index]


def reachable_count(db: FunctionDatabase, fn_id: int) -> int:
    """BFS over the static call graph: unique functions transitively
    reachable from ``fn_id`` (excluding itself)."""
    seen = {fn_id}
    queue = deque([fn_id])
    while queue:
        node = queue.popleft()
        for callee in db.callees_of(node):
            if callee not in seen:
                seen.add(callee)
                queue.append(callee)
    return len(seen) - 1


def measure_helper_complexity(db: FunctionDatabase,
                              registry: HelperRegistry
                              ) -> ComplexityReport:
    """Run the Figure 3 measurement: attach every helper to the call
    graph (idempotent) and BFS from each."""
    fn_ids = registry.attach_to_funcdb(db)
    helpers = [
        HelperComplexity(name=name,
                         callgraph_nodes=reachable_count(db, fn_id))
        for name, fn_id in sorted(fn_ids.items())
    ]
    return ComplexityReport(helpers=helpers)


def log_histogram(report: ComplexityReport,
                  edges: Sequence[int] = (1, 10, 30, 100, 500, 1000,
                                          5000)) -> List[Tuple[str, int]]:
    """Bucketize sizes for the Figure 3 rendering."""
    buckets: List[Tuple[str, int]] = []
    previous = 0
    sizes = report.sorted_sizes()
    for edge in edges:
        count = sum(1 for s in sizes if previous <= s < edge)
        buckets.append((f"[{previous},{edge})", count))
        previous = edge
    buckets.append((f"[{previous},inf)",
                    sum(1 for s in sizes if s >= previous)))
    return buckets
