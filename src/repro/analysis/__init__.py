"""Measurement tooling behind the paper's figures and tables.

* :mod:`history` — ground-truth historical series (Figure 2 verifier
  LoC, Figure 4 helper growth, Table 1 bug statistics),
* :mod:`callgraph` — static call-graph analysis over the synthetic
  kernel (Figure 3),
* :mod:`loc` — lines-of-code counting, including over this repo's own
  verifier as a Figure 2 cross-check,
* :mod:`bugs` — the Table 1 bug population with executable-repro
  links,
* :mod:`helper_survey` — the §3.2 retire/simplify/wrap classification.
"""
