"""The Table 1 bug population.

Table 1 counts security bugs fixed in the eBPF subsystem during
2021-2022, classified by symptom and by component (helper vs
verifier): 40 total, 18 in helpers, 22 in the verifier.

This module encodes that population.  Bugs the paper discusses by name
carry their reference and, where this reproduction models them as live
code paths, the :class:`~repro.ebpf.bugs.BugConfig` flag that enables
them — the Table 1 bench cross-checks that every flagged bug actually
fires (buggy kernel) and is silent (patched kernel).  The remaining
entries are synthesized fix-commit records that complete the counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

CAT_ARBITRARY_RW = "Arbitrary read/write"
CAT_DEADLOCK = "Deadlock/Hang"
CAT_INT_OVERFLOW = "Integer overflow/underflow"
CAT_PTR_LEAK = "Kernel pointer leak"
CAT_MEM_LEAK = "Memory leak"
CAT_NULL_DEREF = "Null-pointer dereference"
CAT_OOB = "Out-of-bound access"
CAT_REFCOUNT = "Reference count leak"
CAT_UAF = "Use-after-free"
CAT_MISC = "Misc"

#: Table 1 ground truth: category -> (total, helper, verifier)
TABLE1_EXPECTED: Dict[str, Tuple[int, int, int]] = {
    CAT_ARBITRARY_RW: (3, 1, 2),
    CAT_DEADLOCK: (2, 1, 1),
    CAT_INT_OVERFLOW: (2, 2, 0),
    CAT_PTR_LEAK: (5, 0, 5),
    CAT_MEM_LEAK: (2, 0, 2),
    CAT_NULL_DEREF: (7, 6, 1),
    CAT_OOB: (7, 1, 6),
    CAT_REFCOUNT: (1, 1, 0),
    CAT_UAF: (2, 1, 1),
    CAT_MISC: (9, 5, 4),
}


@dataclass(frozen=True)
class BugRecord:
    """One security bug fix in the 2021-2022 window."""

    title: str
    category: str
    component: str          # "helper" | "verifier"
    year: int
    reference: str = ""
    #: BugConfig flag reproducing this bug as a live code path
    repro_flag: Optional[str] = None


#: bugs the paper names, with executable reproductions where modeled
NAMED_BUGS: List[BugRecord] = [
    BugRecord("bpf: missing deep argument inspection lets bpf_sys_bpf "
              "dereference a NULL pointer inside a union attr",
              CAT_NULL_DEREF, "helper", 2022, "CVE-2022-2785 [5]",
              repro_flag="sys_bpf_null_union"),
    BugRecord("bpf: missing pointer-type validation allows illegal "
              "pointer arithmetic (arbitrary read/write, privesc)",
              CAT_ARBITRARY_RW, "verifier", 2022, "CVE-2022-23222 [4]",
              repro_flag="verifier_ptr_arith_unchecked"),
    BugRecord("bpf: Fix request_sock leak in sk lookup helpers",
              CAT_REFCOUNT, "helper", 2022, "[35]",
              repro_flag="sk_lookup_reqsk_leak"),
    BugRecord("bpf: Refcount task stack in bpf_get_task_stack",
              CAT_UAF, "helper", 2021, "[34]",
              repro_flag="task_stack_missing_ref"),
    BugRecord("bpf: fix potential 32-bit overflow when accessing "
              "ARRAY map element",
              CAT_INT_OVERFLOW, "helper", 2022, "[36]",
              repro_flag="array_map_32bit_overflow"),
    BugRecord("bpf: Local storage helpers should check nullness of "
              "owner ptr passed",
              CAT_NULL_DEREF, "helper", 2021, "[42]",
              repro_flag="task_storage_null_deref"),
    BugRecord("bpf: Fix kernel address leakage in atomic cmpxchg's "
              "r0 aux reg",
              CAT_PTR_LEAK, "verifier", 2021, "[13]",
              repro_flag="verifier_ptr_leak"),
    BugRecord("bpf: Fix kernel address leakage in atomic fetch",
              CAT_PTR_LEAK, "verifier", 2021, "[14]"),
    BugRecord("bpf: Fix insufficient bounds propagation from "
              "adjust_scalar_min_max_vals",
              CAT_OOB, "verifier", 2022, "[15]"),
    BugRecord("bpf: Fix wrong reg type conversion in "
              "release_reference()",
              CAT_PTR_LEAK, "verifier", 2022, "[32]"),
    BugRecord("bpf: Fix use-after-free in inline_bpf_loop",
              CAT_UAF, "verifier", 2022, "[54]",
              repro_flag="verifier_loop_inline_uaf"),
    BugRecord("bpf: JIT branch displacement miscompilation enables "
              "kernel control-flow hijack",
              CAT_MISC, "verifier", 2021, "CVE-2021-29154 [1]",
              repro_flag="jit_branch_miscompile"),
    BugRecord("bpf: incorrect verifier bounds tracking enables "
              "privilege escalation",
              CAT_OOB, "verifier", 2021, "CVE-2021-31440 [2]"),
    BugRecord("bpf: Fix kernel address leakage via verifier log "
              "output", CAT_PTR_LEAK, "verifier", 2021,
              "CVE-2021-45402 [3]"),
    BugRecord("bpf: nested bpf_loop holds the RCU read lock for "
              "unbounded time (RCU stall)",
              CAT_DEADLOCK, "helper", 2022, "§2.2"),
]

#: synthesized fix-commit records completing the Table 1 counts
_FILLER_SPECS: List[Tuple[str, str, str, int]] = [
    ("bpf: reject out-of-bounds stack write under speculative "
     "execution", CAT_ARBITRARY_RW, "verifier", 2021),
    ("bpf: helper-reachable skb write beyond headroom", CAT_ARBITRARY_RW,
     "helper", 2022),
    ("bpf: verifier hangs on pathological jump chains", CAT_DEADLOCK,
     "verifier", 2021),
    ("bpf: integer underflow in ringbuf reserve size handling",
     CAT_INT_OVERFLOW, "helper", 2021),
    ("bpf: scalar id leaks kernel pointer through map comparison",
     CAT_PTR_LEAK, "verifier", 2022),
    ("bpf: verifier state not freed on error path (memory leak)",
     CAT_MEM_LEAK, "verifier", 2021),
    ("bpf: leak of verifier log buffer on failed load", CAT_MEM_LEAK,
     "verifier", 2022),
    ("bpf: sockmap helper dereferences NULL psock", CAT_NULL_DEREF,
     "helper", 2021),
    ("bpf: timer helper NULL callback dereference", CAT_NULL_DEREF,
     "helper", 2021),
    ("bpf: perf event output helper NULL ctx dereference",
     CAT_NULL_DEREF, "helper", 2022),
    ("bpf: fix NULL deref in bpf_sk_storage tracing usage",
     CAT_NULL_DEREF, "helper", 2022),
    ("bpf: verifier NULL pointer dereference on malformed BTF",
     CAT_NULL_DEREF, "verifier", 2022),
    ("bpf: out-of-bounds read through bad var_off on packet pointer",
     CAT_OOB, "verifier", 2021),
    ("bpf: 32-bit bounds not propagated across jmp32 (OOB)", CAT_OOB,
     "verifier", 2021),
    ("bpf: stack slot type confusion allows out-of-bounds spill read",
     CAT_OOB, "verifier", 2022),
    ("bpf: OOB access via miscomputed map_value bounds after BPF_ADD",
     CAT_OOB, "verifier", 2022),
    ("bpf: ringbuf helper allows out-of-bounds record header access",
     CAT_OOB, "helper", 2022),
    ("bpf: strncpy-style helper off-by-one string handling", CAT_MISC,
     "helper", 2021),
    ("bpf: helper returns uninitialized stack bytes to userspace",
     CAT_MISC, "helper", 2021),
    ("bpf: missing read-only protection on helper-exposed buffer",
     CAT_MISC, "helper", 2022),
    ("bpf: get_func_ip helper breaks with kprobe multi", CAT_MISC,
     "helper", 2022),
    ("bpf: d_path helper races with dentry moves", CAT_MISC, "helper",
     2022),
    ("bpf: verifier mis-tracks BPF_END leading to wrong dead-code "
     "elimination", CAT_MISC, "verifier", 2021),
    ("bpf: precision backtracking marks wrong register", CAT_MISC,
     "verifier", 2022),
    ("bpf: verifier allows invalid subprog boundary", CAT_MISC,
     "verifier", 2022),
]


def full_bug_table() -> List[BugRecord]:
    """All 40 bugs: the named population plus synthesized records."""
    table = list(NAMED_BUGS)
    table.extend(BugRecord(title, category, component, year)
                 for title, category, component, year in _FILLER_SPECS)
    return table


def table1_counts(bug_table: Optional[List[BugRecord]] = None
                  ) -> Dict[str, Tuple[int, int, int]]:
    """Aggregate bugs into the Table 1 shape:
    category -> (total, helper, verifier)."""
    bug_table = bug_table if bug_table is not None else full_bug_table()
    counts: Dict[str, List[int]] = {}
    for bug in bug_table:
        row = counts.setdefault(bug.category, [0, 0, 0])
        row[0] += 1
        if bug.component == "helper":
            row[1] += 1
        else:
            row[2] += 1
    return {cat: tuple(row) for cat, row in counts.items()}


def totals(bug_table: Optional[List[BugRecord]] = None
           ) -> Tuple[int, int, int]:
    """(total, helper, verifier) across every category."""
    counted = table1_counts(bug_table)
    total = sum(row[0] for row in counted.values())
    helper = sum(row[1] for row in counted.values())
    verifier = sum(row[2] for row in counted.values())
    return total, helper, verifier


def executable_bugs() -> List[BugRecord]:
    """Bugs this reproduction models as live code paths."""
    return [b for b in full_bug_table() if b.repro_flag]
