"""Race hunting: happens-before + lockset detection and a seeded
schedule explorer over the deterministic SMP plane.

Two layers:

:class:`RaceDetector`
    A FastTrack-style vector-clock detector with Eraser-style lockset
    refinement, fed by :class:`~repro.kernel.smp.SmpScheduler` hooks.
    Every access to shared storage (map values, kernel objects) is
    checked against the last conflicting accesses: a pair is a race
    when it is *conflicting* (same location, at least one write),
    *unordered* by happens-before (lock release→acquire and RCU
    grace-period edges), *unprotected* (no common lock held), and not
    atomic-vs-atomic.  Reported races carry both access sites.

:class:`ScheduleExplorer`
    Enumerates seeded interleavings of a scenario — the same shape as
    the HWLoopSe path enumeration: run, hash the outcome, dedup, keep
    going until the budget is spent.  For every distinct finding
    (detector race, oops, deadlock) it reports a **replayable seed**;
    re-running the scenario under that seed reproduces the identical
    trace, byte for byte.

Everything is deterministic: given (scenario, nr_cpus, base_seed,
budget) the explorer's findings — including their order — are a pure
function of the inputs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import KernelDeadlock, KernelOops

#: location key: (alloc_id, offset) — byte-granular, like KASAN
Location = Tuple[int, int]


def _join(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    """Pointwise max of two vector clocks."""
    out = dict(a)
    for key, value in b.items():
        if out.get(key, 0) < value:
            out[key] = value
    return out


@dataclass
class Access:
    """One recorded access to a shared location."""

    task: str
    write: bool
    lockset: Tuple[str, ...]
    atomic: bool
    clock: Dict[str, int] = field(repr=False)
    seq: int = 0

    def happens_before(self, other_clock: Dict[str, int]) -> bool:
        """True when this access is HB-ordered before a point whose
        vector clock is ``other_clock``."""
        return other_clock.get(self.task, 0) >= self.clock.get(self.task, 0)


@dataclass
class RaceReport:
    """One data race: two conflicting unordered unprotected accesses."""

    type_name: str
    location: Location
    first: Access
    second: Access

    def key(self) -> Tuple[object, ...]:
        """Dedup key: the racing pair irrespective of which side the
        detector saw first."""
        sides = tuple(sorted(
            ((a.task, a.write) for a in (self.first, self.second))))
        return (self.type_name, self.location[1], sides)

    def describe(self) -> str:
        """One-line dmesg-style description."""
        loc = f"{self.type_name}+{self.location[1]}"
        def side(acc: Access) -> str:
            kind = "write" if acc.write else "read"
            locks = ",".join(acc.lockset) if acc.lockset else "no locks"
            return f"{kind} by {acc.task} ({locks})"
        return (f"data race on {loc}: {side(self.first)} vs "
                f"{side(self.second)}")


class RaceDetector:
    """Vector-clock + lockset race detector (one SMP run's worth)."""

    def __init__(self) -> None:
        #: task name -> its vector clock
        self._clocks: Dict[str, Dict[str, int]] = {}
        #: lock name -> clock published at last release
        self._lock_clocks: Dict[str, Dict[str, int]] = {}
        #: the RCU pseudo-lock: joined by readers at exit, acquired by
        #: writers when their grace period completes
        self._rcu_clock: Dict[str, int] = {}
        #: location -> last write access
        self._last_write: Dict[Location, Access] = {}
        #: location -> reads since the last write
        self._reads: Dict[Location, List[Access]] = {}
        self._type_names: Dict[Location, str] = {}
        self._seq = 0
        self.races: List[RaceReport] = []
        self._seen: set = set()

    # -- scheduler hooks -----------------------------------------------------

    def begin_task(self, task: str) -> None:
        """Register a task before the run starts."""
        self._clocks.setdefault(task, {task: 1})

    def on_acquire(self, task: str, lock: str) -> None:
        """HB edge: the acquirer inherits the last releaser's clock."""
        clock = self._clocks.setdefault(task, {task: 1})
        published = self._lock_clocks.get(lock)
        if published:
            self._clocks[task] = _join(clock, published)

    def on_release(self, task: str, lock: str) -> None:
        """Publish the releaser's clock on the lock, then advance the
        releaser's own component (FastTrack release increment)."""
        clock = self._clocks.setdefault(task, {task: 1})
        self._lock_clocks[lock] = dict(clock)
        clock[task] = clock.get(task, 0) + 1

    def on_rcu_exit(self, task: str) -> None:
        """A reader left its section: publish to the RCU pseudo-lock."""
        clock = self._clocks.setdefault(task, {task: 1})
        self._rcu_clock = _join(self._rcu_clock, clock)
        clock[task] = clock.get(task, 0) + 1

    def on_rcu_sync(self, task: str) -> None:
        """A writer's grace period completed: it is now ordered after
        every reader exit published so far."""
        clock = self._clocks.setdefault(task, {task: 1})
        self._clocks[task] = _join(clock, self._rcu_clock)

    def record_access(self, task: str, alloc_id: int, type_name: str,
                      offset: int, size: int, write: bool,
                      lockset: Tuple[str, ...], atomic: bool) -> None:
        """Check one access against the location's history.

        Multi-byte accesses record one location key per touched byte
        (linear in access size), so partially-overlapping conflicting
        accesses are caught exactly, KASAN-style.
        """
        clock = self._clocks.setdefault(task, {task: 1})
        self._seq += 1
        access = Access(task=task, write=write, lockset=lockset,
                       atomic=atomic, clock=dict(clock), seq=self._seq)
        # detect per byte (partial overlaps caught exactly), but
        # report at access granularity, KCSAN-style — one finding per
        # racing pair, not one per byte
        report_loc = (alloc_id, offset)
        for byte in range(offset, offset + size):
            self._check_one(task, (alloc_id, byte), type_name, access,
                            report_loc)

    # -- internals -----------------------------------------------------------

    def _check_one(self, task: str, loc: Location, type_name: str,
                   access: Access, report_loc: Location) -> None:
        self._type_names[report_loc] = type_name
        last_write = self._last_write.get(loc)
        if last_write is not None and last_write.task != task:
            self._maybe_report(report_loc, last_write, access)
        if access.write:
            for read in self._reads.get(loc, ()):
                if read.task != task:
                    self._maybe_report(report_loc, read, access)
            self._last_write[loc] = access
            self._reads[loc] = []
        else:
            self._reads.setdefault(loc, []).append(access)

    def _maybe_report(self, loc: Location, prior: Access,
                      current: Access) -> None:
        if not (prior.write or current.write):
            return
        if prior.atomic and current.atomic:
            return
        if prior.happens_before(current.clock):
            return
        if set(prior.lockset) & set(current.lockset):
            return
        report = RaceReport(self._type_names[loc], loc, prior, current)
        key = report.key()
        if key in self._seen:
            return
        self._seen.add(key)
        self.races.append(report)


@dataclass
class Finding:
    """One distinct bad outcome the explorer discovered."""

    kind: str          # "race" | "oops" | "deadlock"
    seed: int          # replay with this seed to reproduce
    description: str
    trace_signature: str

    def as_tuple(self) -> Tuple[str, int, str]:
        """Hashable (kind, seed, description) view for dedup/sorting."""
        return (self.kind, self.seed, self.description)


@dataclass
class ExplorationResult:
    """Roll-up of one exploration campaign."""

    schedules_run: int
    distinct_states: int
    findings: List[Finding]

    def by_kind(self, kind: str) -> List[Finding]:
        """Findings of one kind: "race", "oops" or "deadlock"."""
        return [f for f in self.findings if f.kind == kind]

    def summary(self) -> Dict[str, object]:
        """JSON-friendly roll-up: counts per kind plus replay seeds."""
        return {
            "schedules_run": self.schedules_run,
            "distinct_states": self.distinct_states,
            "findings": len(self.findings),
            "races": len(self.by_kind("race")),
            "oopses": len(self.by_kind("oops")),
            "deadlocks": len(self.by_kind("deadlock")),
            "seeds": sorted({f.seed for f in self.findings}),
        }


class ScheduleExplorer:
    """Enumerate seeded interleavings of a scenario, dedup by outcome.

    ``scenario`` is a callable receiving a fresh
    :class:`~repro.kernel.smp.SmpScheduler`; it builds kernel state and
    spawns tasks, optionally returning a state-fingerprint callable
    evaluated after the run (its result joins the dedup hash).  The
    explorer owns kernel construction so every schedule starts from an
    identical initial state.
    """

    def __init__(self, scenario: Callable,
                 nr_cpus: int = 2,
                 base_seed: int = 0,
                 migration_rate: float = 0.0,
                 max_decisions: int = 200_000) -> None:
        self.scenario = scenario
        self.nr_cpus = nr_cpus
        self.base_seed = base_seed
        self.migration_rate = migration_rate
        self.max_decisions = max_decisions

    def explore(self, budget: int = 32,
                stop_after: Optional[int] = None) -> ExplorationResult:
        """Run up to ``budget`` seeded schedules; stop early once
        ``stop_after`` distinct findings accumulated (None = never)."""
        from repro.kernel.kernel import Kernel
        from repro.kernel.smp import SeededInterleaving, SmpScheduler

        findings: List[Finding] = []
        finding_keys: set = set()
        state_hashes: set = set()
        runs = 0
        for index in range(budget):
            seed = self.base_seed + index
            runs += 1
            kernel = Kernel(nr_cpus=self.nr_cpus)
            detector = RaceDetector()
            smp = SmpScheduler(
                kernel,
                schedule=SeededInterleaving(
                    seed, migration_rate=self.migration_rate,
                    nr_cpus=self.nr_cpus),
                seed=seed, detector=detector,
                max_decisions=self.max_decisions)
            fingerprint = self.scenario(smp)
            deadlock: Optional[KernelDeadlock] = None
            try:
                smp.run(collect_errors=True)
            except KernelDeadlock as exc:
                deadlock = exc
            signature = smp.trace_signature()
            digest = hashlib.sha256(signature.encode())
            if fingerprint is not None:
                digest.update(repr(fingerprint()).encode())
            state_hashes.add(digest.hexdigest())

            for race in detector.races:
                kernel.telemetry.record_race(race.type_name)
                self._add(findings, finding_keys,
                          Finding("race", seed, race.describe(),
                                  signature),
                          ("race",) + race.key())
            for exc in smp.errors():
                kind = "oops" if isinstance(exc, KernelOops) else "error"
                if isinstance(exc, KernelDeadlock):
                    kind = "deadlock"
                self._add(findings, finding_keys,
                          Finding(kind, seed,
                                  f"{type(exc).__name__}: {exc}",
                                  signature),
                          (kind, type(exc).__name__, str(exc)))
            if deadlock is not None:
                self._add(findings, finding_keys,
                          Finding("deadlock", seed,
                                  f"KernelDeadlock: {deadlock}",
                                  signature),
                          ("deadlock", str(deadlock)))
            if stop_after is not None and len(findings) >= stop_after:
                break
        return ExplorationResult(
            schedules_run=runs,
            distinct_states=len(state_hashes),
            findings=findings)

    @staticmethod
    def _add(findings: List[Finding], keys: set, finding: Finding,
             key: Tuple[object, ...]) -> None:
        if key in keys:
            return
        keys.add(key)
        findings.append(finding)


def replay(scenario: Callable, seed: int, nr_cpus: int = 2,
           migration_rate: float = 0.0) -> "object":
    """Re-run ``scenario`` under one exact seed (the reproducer a
    :class:`Finding` hands you).  Returns the scheduler, post-run, so
    callers can inspect the trace/detector."""
    from repro.kernel.kernel import Kernel
    from repro.kernel.smp import SeededInterleaving, SmpScheduler

    kernel = Kernel(nr_cpus=nr_cpus)
    detector = RaceDetector()
    smp = SmpScheduler(
        kernel,
        schedule=SeededInterleaving(seed, migration_rate=migration_rate,
                                    nr_cpus=nr_cpus),
        seed=seed, detector=detector)
    scenario(smp)
    try:
        smp.run(collect_errors=True)
    except KernelDeadlock:
        pass
    return smp
