"""Verifier fuzzing (the [41] methodology, applied to our own model).

The paper cites fuzzing as one of the community's responses to
verifier bugs.  This module implements that methodology against the
reproduction's verifier, checking two properties over random programs:

1. **robustness** — the verifier never crashes: every input produces
   either acceptance or a clean :class:`VerifierError`;
2. **soundness** — a program the verifier *accepts* never compromises
   a patched kernel at run time (no oops, no stall, no leak).  On a
   patched kernel any such compromise would be a genuine soundness
   bug in the verifier under test.

The generator produces structurally plausible programs (valid opcodes,
plausible register/offset ranges, guaranteed trailing exit) so a
useful fraction survives verification; pure byte-noise would be
rejected at decode and test nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.ebpf import isa
from repro.ebpf.bugs import BugConfig
from repro.ebpf.isa import Insn
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progs import ProgType
from repro.errors import (
    BpfRuntimeError,
    KernelSafetyViolation,
    ReproError,
    VerifierError,
)
from repro.kernel import Kernel

_ALU_OPS = [isa.BPF_ADD, isa.BPF_SUB, isa.BPF_MUL, isa.BPF_DIV,
            isa.BPF_OR, isa.BPF_AND, isa.BPF_LSH, isa.BPF_RSH,
            isa.BPF_MOD, isa.BPF_XOR, isa.BPF_MOV, isa.BPF_ARSH]

_JMP_OPS = [isa.BPF_JEQ, isa.BPF_JGT, isa.BPF_JGE, isa.BPF_JSET,
            isa.BPF_JNE, isa.BPF_JSGT, isa.BPF_JSGE, isa.BPF_JLT,
            isa.BPF_JLE, isa.BPF_JSLT, isa.BPF_JSLE]

_SIZES = [isa.BPF_B, isa.BPF_H, isa.BPF_W, isa.BPF_DW]

#: helpers included in the fuzz pool (argument shapes come out random,
#: so most calls are rejected — which is fine, rejection is a result)
_HELPER_IDS = [1, 2, 3, 4, 5, 7, 8, 14, 15, 16, 105, 166, 182]


class _GenState:
    """Register/stack knowledge the generator uses to bias toward
    verifiable programs (pure noise never gets past decode)."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.scalars = {0}          # starts after the seed mov
        self.written_slots: List[int] = []

    def any_scalar(self) -> int:
        """A register known to hold an initialized scalar."""
        return self.rng.choice(sorted(self.scalars))

    def writable(self) -> int:
        """Any writable register (r0-r9)."""
        return self.rng.randint(0, 9)


def random_insn(state: _GenState, position: int,
                length: int) -> Insn:
    """One random instruction, biased toward plausibility but with a
    deliberate garbage tail to exercise rejection paths."""
    rng = state.rng
    choice = rng.random()

    def imm() -> int:
        return rng.choice([0, 1, 2, 7, 255, 4096,
                           rng.randint(-(1 << 31), (1 << 31) - 1)])

    if choice < 0.05:  # raw garbage: random fields
        return Insn(rng.choice(_ALU_OPS + _JMP_OPS)
                    | rng.choice([isa.BPF_ALU64, isa.BPF_JMP])
                    | rng.choice([isa.BPF_K, isa.BPF_X]),
                    rng.randint(0, 10), rng.randint(0, 10),
                    rng.randint(-8, 8), imm())
    if choice < 0.50:  # ALU on known-initialized registers
        op = rng.choice(_ALU_OPS)
        cls = rng.choice([isa.BPF_ALU64, isa.BPF_ALU])
        dst = state.writable()
        if op == isa.BPF_MOV or dst not in state.scalars:
            op = isa.BPF_MOV
        if rng.random() < 0.5 or not state.scalars:
            insn = Insn(cls | op | isa.BPF_K, dst, 0, 0, imm())
        else:
            insn = Insn(cls | op | isa.BPF_X, dst,
                        state.any_scalar(), 0, 0)
        state.scalars.add(dst)
        return insn
    if choice < 0.72:  # stack traffic
        size = rng.choice(_SIZES)
        nbytes = isa.SIZE_BYTES[size]
        kind = rng.random()
        if kind < 0.55 or not state.written_slots:
            # store to an aligned slot
            off = -nbytes * rng.randint(1, 64 // nbytes)
            if rng.random() < 0.5 and state.scalars:
                insn = Insn(isa.BPF_STX | size | isa.BPF_MEM, 10,
                            state.any_scalar(), off, 0)
            else:
                insn = Insn(isa.BPF_ST | size | isa.BPF_MEM, 10, 0,
                            off, imm())
            if size == isa.BPF_DW:
                state.written_slots.append(off)
            return insn
        # load back a previously written 8-byte slot
        dst = state.writable()
        state.scalars.add(dst)
        return Insn(isa.BPF_LDX | isa.BPF_DW | isa.BPF_MEM, dst, 10,
                    rng.choice(state.written_slots), 0)
    if choice < 0.78:  # ctx load
        dst = state.writable()
        state.scalars.add(dst)
        return Insn(isa.BPF_LDX | isa.BPF_DW | isa.BPF_MEM, dst, 1,
                    rng.choice([0, 8, 16, 24, 32, 40]), 0)
    if choice < 0.92:  # forward jump on an initialized register
        op = rng.choice(_JMP_OPS)
        max_fwd = max(0, length - position - 2)
        off = rng.randint(0, min(max_fwd, 6)) if max_fwd else 0
        if rng.random() < 0.6 or not state.scalars:
            return Insn(isa.BPF_JMP | op | isa.BPF_K,
                        state.any_scalar(), 0, off, imm())
        return Insn(isa.BPF_JMP | op | isa.BPF_X,
                    state.any_scalar(), state.any_scalar(), off, 0)
    if choice < 0.97:  # no-arg helper call
        for regno in range(6):
            state.scalars.discard(regno)
        state.scalars.add(0)
        return Insn(isa.BPF_JMP | isa.BPF_CALL, 0, 0, 0,
                    rng.choice([5, 7, 8, 14, 15]))
    # random helper with whatever is lying around (usually rejected)
    return Insn(isa.BPF_JMP | isa.BPF_CALL, 0, 0, 0,
                rng.choice(_HELPER_IDS))


def random_program(rng: random.Random,
                   max_insns: int = 24) -> List[Insn]:
    """A random program: seed mov, random body, clean epilogue."""
    state = _GenState(rng)
    length = rng.randint(1, max_insns)
    body = [Insn(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K, 0, 0, 0, 0)]
    body.extend(random_insn(state, index + 1, length + 3)
                for index in range(length))
    body.append(Insn(isa.BPF_ALU64 | isa.BPF_MOV | isa.BPF_K, 0, 0,
                     0, 0))
    body.append(Insn(isa.BPF_JMP | isa.BPF_EXIT))
    return body


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    total: int = 0
    rejected: int = 0
    accepted: int = 0
    ran_clean: int = 0
    ran_recoverable: int = 0
    #: verifier raised something other than VerifierError
    verifier_crashes: List[str] = field(default_factory=list)
    #: accepted program compromised a patched kernel
    soundness_violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when both fuzz properties held."""
        return not self.verifier_crashes \
            and not self.soundness_violations


def fuzz_campaign(iterations: int = 300, seed: int = 1337,
                  run_accepted: bool = True) -> FuzzReport:
    """Run the campaign; deterministic for a given seed."""
    rng = random.Random(seed)
    report = FuzzReport()
    for index in range(iterations):
        program = random_program(rng)
        report.total += 1
        kernel = Kernel()
        bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched())
        try:
            prog = bpf.load_program(program, ProgType.KPROBE,
                                    f"fuzz{index}")
        except VerifierError:
            report.rejected += 1
            continue
        except Exception as error:  # noqa: BLE001 - the property
            report.verifier_crashes.append(
                f"seed={seed} iter={index}: {error!r}")
            continue
        report.accepted += 1
        if not run_accepted:
            continue
        try:
            bpf.run_on_current_task(prog)
            report.ran_clean += 1
        except BpfRuntimeError:
            report.ran_recoverable += 1
        except KernelSafetyViolation as violation:
            report.soundness_violations.append(
                f"seed={seed} iter={index}: {violation!r}")
        if not kernel.healthy or kernel.rcu.stall_reports:
            report.soundness_violations.append(
                f"seed={seed} iter={index}: kernel tainted after an "
                "accepted program")
    return report

# ---------------------------------------------------------------------------
# differential fuzzing: four engines, one semantics
# ---------------------------------------------------------------------------

#: the execution engines that must agree on every program: the
#: decode-per-step reference interpreter, the predecoded fast path,
#: the fast path running JIT-lowered instructions, and the compiled
#: tier (exec-generated Python over the predecoded table)
DIFF_ENGINES = (
    ("interp", {"use_jit": False, "fast_path": False}),
    ("fast", {"use_jit": False, "fast_path": True}),
    ("jit", {"use_jit": True, "fast_path": True}),
    ("compiled", {"use_jit": False, "engine": "compiled"}),
)


def observe_engine(program: List[Insn], index: int,
                   engine_kwargs: dict) -> dict:
    """Run one program on one engine configuration (fresh kernel,
    stats on, patched bugs) and capture everything observable: the
    result or exception, final registers, instruction/helper/clock
    accounting, kernel health, and the telemetry row."""
    kernel = Kernel()
    kernel.telemetry.enable()
    bpf = BpfSubsystem(kernel, bugs=BugConfig.all_patched(),
                       **engine_kwargs)
    name = f"diff{index}"
    try:
        prog = bpf.load_program(program, ProgType.KPROBE, name)
    except VerifierError:
        return {"kind": "rejected"}
    except Exception as error:  # noqa: BLE001 - a crash is a result
        return {"kind": "load-crash", "error": type(error).__name__}
    try:
        result = ("ret", bpf.run_on_current_task(prog))
    except ReproError as error:
        result = ("err", type(error).__name__)
    except Exception as error:  # noqa: BLE001 - a crash is a result
        result = ("crash", type(error).__name__)
    row = kernel.telemetry.prog("ebpf", name)
    return {
        "kind": "ran",
        "result": result,
        "regs": tuple(bpf.vm.last_exit_regs)
        if bpf.vm.last_exit_regs is not None else None,
        "insns": bpf.vm.insns_executed,
        "helper_calls": bpf.vm.helper_calls,
        "clock_ns": kernel.clock.now_ns,
        "healthy": kernel.healthy,
        "stalls": len(kernel.rcu.stall_reports),
        "telemetry": (row.run_cnt, row.run_time_ns, row.insns,
                      row.helper_calls,
                      tuple(sorted(row.helper_counts.items())),
                      row.watchdog_fires, row.panics, row.oopses),
    }


@dataclass
class DifferentialReport:
    """Outcome of one differential campaign."""

    total: int = 0
    rejected: int = 0
    #: programs executed by all engines with identical observations
    compared: int = 0
    divergences: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no engine ever disagreed."""
        return not self.divergences


def differential_campaign(min_compared: int = 200, seed: int = 421,
                          max_insns: int = 24,
                          max_programs: int = 0) -> DifferentialReport:
    """Generate random programs until ``min_compared`` of them have
    *executed* identically on every engine in :data:`DIFF_ENGINES`
    (rejections are also compared, but don't count toward the quota).
    Deterministic for a given seed."""
    rng = random.Random(seed)
    report = DifferentialReport()
    cap = max_programs or min_compared * 12
    for index in range(cap):
        if report.compared >= min_compared:
            break
        program = random_program(rng, max_insns)
        report.total += 1
        observations = {
            engine: observe_engine(program, index, kwargs)
            for engine, kwargs in DIFF_ENGINES
        }
        baseline_engine, baseline = next(iter(observations.items()))
        diverged = False
        for engine, obs in observations.items():
            if obs != baseline:
                report.divergences.append(
                    f"seed={seed} iter={index}: {engine} disagrees "
                    f"with {baseline_engine}: {obs!r} != {baseline!r}")
                diverged = True
        if diverged:
            continue
        if baseline["kind"] == "rejected":
            report.rejected += 1
        else:
            report.compared += 1
    return report
