"""The §3.2 helper-retirement survey.

§3.2 partitions helper functions by what a safe-language framework
does to them:

* **retire** — pure-expressiveness helpers, replaced by language
  features (``bpf_loop`` -> loops, ``bpf_strtol`` ->
  ``str.parse_i64()``, ``bpf_strncmp`` -> a safe loop,
  ``bpf_tail_call`` -> function calls); 16 such helpers per [33],
* **simplify** — kernel-object interfaces whose error-prone parts
  (refcounts, integer math) move into safe kcrate code,
* **wrap** — helpers whose unsafe core stays but gets a sanitizing
  safe interface (``bpf_sys_bpf``, ``bpf_task_storage_get``),
* **keep** — already-minimal accessors.

The survey reads the classification off the helper registry and links
each discussed helper to the kcrate artifact that replaces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ebpf.helpers.registry import HelperRegistry, \
    build_default_registry

#: paper-named examples, with the kcrate artifact standing in for them
REPLACEMENT_EVIDENCE: Dict[str, str] = {
    "bpf_strtol": "str.parse_i64() (kcrate method m_str_parse_i64)",
    "bpf_strncmp": "safe byte loop over str.byte_at() "
                   "(examples/tracing_profiler.py)",
    "bpf_loop": "native for/while loops, bounded by the runtime "
                "watchdog",
    "bpf_tail_call": "ordinary function calls, bounded by the stack "
                     "guard",
    "bpf_sk_lookup_tcp": "api_sk_lookup_tcp: RAII Socket handle owns "
                         "every reference ([35] unreproducible)",
    "bpf_get_task_stack": "api_task_stack_sum: pinned task + "
                          "non-faulting read ([34] unreproducible)",
    "bpf_map_update_elem": "api_map_update: index math in safe code "
                           "([36] unreproducible)",
    "bpf_spin_lock": "api_spin_lock: SpinGuard unlocks in its "
                     "destructor ([48] discipline by construction)",
    "bpf_task_storage_get": "api_task_storage_get: &Task argument "
                            "cannot be NULL ([42] unrepresentable)",
    "bpf_sys_bpf": "api_sys_map_update: attr built from values in "
                   "trusted code (CVE-2022-2785 unrepresentable)",
}


@dataclass
class SurveyRow:
    """One helper's survey entry."""

    name: str
    classification: str
    callgraph_size: int
    implemented: bool
    evidence: str = ""


@dataclass
class SurveyReport:
    """The full §3.2 classification."""

    rows: List[SurveyRow]

    def count(self, classification: str) -> int:
        """How many helpers fall in one class."""
        return sum(1 for r in self.rows
                   if r.classification == classification)

    @property
    def retired_names(self) -> List[str]:
        """The 16 helpers the proposal retires outright."""
        return sorted(r.name for r in self.rows
                      if r.classification == "retire")

    def by_class(self) -> Dict[str, int]:
        """Class -> helper count."""
        result: Dict[str, int] = {}
        for row in self.rows:
            result[row.classification] = \
                result.get(row.classification, 0) + 1
        return result


def run_survey(registry: Optional[HelperRegistry] = None
               ) -> SurveyReport:
    """Classify the whole helper population."""
    registry = registry or build_default_registry()
    rows = [
        SurveyRow(
            name=spec.name,
            classification=spec.classification,
            callgraph_size=spec.callgraph_size,
            implemented=spec.is_implemented,
            evidence=REPLACEMENT_EVIDENCE.get(spec.name, ""),
        )
        for spec in registry.all_specs()
    ]
    return SurveyReport(rows=rows)
