"""Synthetic kernel function database and static call graph.

Figure 3 of the paper measures, for each of the 249 helper functions in
Linux 5.18, the number of unique nodes in its static call graph — from
0 (``bpf_get_current_pid_tgid``) to 4845 (``bpf_sys_bpf``), with 52.2%
of helpers calling 30+ functions and 34.5% calling 500+.

We cannot ship the Linux source tree, so this module generates a
deterministic *synthetic kernel*: ~20k functions across realistic
subsystems, wired into a DAG whose transitive-closure sizes span the
full range the paper reports.  The generator computes exact closure
sizes (bitset dynamic programming) so the eBPF helper registry can
attach each modeled helper at a point in the graph matching its
documented call-graph size; the *measurement* in
:mod:`repro.analysis.callgraph` then rediscovers those sizes with an
independent BFS, exactly as the paper's static analysis did over C.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence

#: subsystem name -> share of the function population
SUBSYSTEMS = [
    ("lib", 0.15),
    ("mm", 0.14),
    ("sched", 0.08),
    ("locking", 0.05),
    ("rcu", 0.03),
    ("net", 0.22),
    ("fs", 0.14),
    ("security", 0.05),
    ("irq", 0.04),
    ("time", 0.04),
    ("bpf", 0.06),
]

_VERBS = ["init", "alloc", "free", "get", "put", "find", "insert", "remove",
          "update", "lookup", "check", "handle", "process", "queue", "flush",
          "copy", "map", "unmap", "lock", "unlock", "commit", "prepare",
          "resolve", "validate", "walk", "scan", "emit", "attach", "detach"]

_NOUNS = ["page", "entry", "node", "buf", "ctx", "desc", "table", "slot",
          "range", "region", "group", "list", "tree", "cache", "ref",
          "state", "work", "event", "request", "object", "chain", "frame",
          "record", "item", "zone", "block", "segment", "policy", "rule"]


@dataclass
class KernelFunction:
    """One function in the synthetic kernel source tree."""

    fn_id: int
    name: str
    subsystem: str
    loc: int


class FunctionDatabase:
    """The synthetic kernel: functions, call edges, closure sizes.

    The call graph is a DAG by construction (functions only call
    functions with a lower id), which mirrors how the generator builds
    bottom-up layers; cycles in real kernels are collapsed by static
    analyzers anyway, so closure sizes are unaffected by this choice.
    """

    def __init__(self, seed: int = 2023) -> None:
        self.seed = seed
        self.functions: List[KernelFunction] = []
        self.callees: List[List[int]] = []
        self._by_name: Dict[str, int] = {}
        self._closure_size: List[int] = []
        # ids with exact closure size k, for attachment-point lookup
        self._size_index: Dict[int, List[int]] = {}

    # -- construction -------------------------------------------------------

    def add_function(self, name: str, subsystem: str, loc: int,
                     callees: Sequence[int] = ()) -> int:
        """Append a function calling only already-present functions."""
        fn_id = len(self.functions)
        for callee in callees:
            if not 0 <= callee < fn_id:
                raise ValueError(
                    f"{name}: callee id {callee} not below {fn_id} "
                    "(call graph must stay a DAG)")
        if name in self._by_name:
            raise ValueError(f"duplicate function name {name}")
        self.functions.append(KernelFunction(fn_id, name, subsystem, loc))
        self.callees.append(list(dict.fromkeys(callees)))
        self._by_name[name] = fn_id
        size = self._compute_closure_size(fn_id)
        self._closure_size.append(size)
        self._size_index.setdefault(size, []).append(fn_id)
        return fn_id

    def _compute_closure_size(self, fn_id: int) -> int:
        """Exact closure size for a newly added node (BFS; cheap because
        nodes are added once and bulk generation uses the mask DP)."""
        seen = set()
        stack = list(self.callees[fn_id])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.callees[node])
        return len(seen)

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.functions)

    def lookup(self, name: str) -> Optional[KernelFunction]:
        """Find a function by name."""
        fn_id = self._by_name.get(name)
        return self.functions[fn_id] if fn_id is not None else None

    def closure_size(self, fn_id: int) -> int:
        """Number of distinct functions transitively reachable from
        ``fn_id`` (excluding itself) — the Figure 3 metric."""
        return self._closure_size[fn_id]

    def callees_of(self, fn_id: int) -> List[int]:
        """Direct callees of a function."""
        return self.callees[fn_id]

    def total_loc(self, subsystem: Optional[str] = None) -> int:
        """Total lines of code, optionally for one subsystem."""
        return sum(f.loc for f in self.functions
                   if subsystem is None or f.subsystem == subsystem)

    def entry_with_closure(self, target: int) -> int:
        """Id of a function whose closure size is as close as possible
        to ``target`` — used to attach helpers at documented depths."""
        if target in self._size_index:
            return self._size_index[target][0]
        best_size = min(self._size_index,
                        key=lambda s: (abs(s - target), s))
        return self._size_index[best_size][0]

    def closure_spectrum(self) -> List[int]:
        """Sorted list of all distinct closure sizes present."""
        return sorted(self._size_index)


def _bulk_generate(db: FunctionDatabase, rng: random.Random,
                   total: int) -> None:
    """Populate ``db`` with a layered synthetic kernel.

    Layer plan (ids ascend through layers, keeping the DAG invariant):

    1. *leaves* — primitives with no callees (atomics, string ops).
    2. *utils* — small helpers calling a few leaves.
    3. *spine* — a long dependency chain through core-kernel layers;
       node k of the spine reaches ~k functions, giving a dense
       spectrum of closure sizes up to ~6000 (covering the paper's
       maximum of 4845).
    4. *mid* — subsystem logic calling a mix of everything below,
       providing realistic fan-out texture.
    """
    n_leaf = int(total * 0.15)
    n_util = int(total * 0.20)
    n_spine = int(total * 0.30)
    n_mid = total - n_leaf - n_util - n_spine

    def pick_subsystem() -> str:
        r = rng.random()
        acc = 0.0
        for name, share in SUBSYSTEMS:
            acc += share
            if r < acc:
                return name
        return SUBSYSTEMS[-1][0]

    def make_name(subsystem: str, fn_id: int) -> str:
        verb = rng.choice(_VERBS)
        noun = rng.choice(_NOUNS)
        return f"{subsystem}_{verb}_{noun}_{fn_id}"

    def make_loc() -> int:
        # heavy-ish tail like real kernel functions
        return max(3, int(rng.lognormvariate(3.0, 0.9)))

    # Bitset DP for exact closure sizes during bulk generation: masks[i]
    # holds the closure of node i as a Python int bitset.
    masks: List[int] = []

    def bulk_add(subsystem: str, callees: List[int]) -> int:
        fn_id = len(db.functions)
        name = make_name(subsystem, fn_id)
        db.functions.append(
            KernelFunction(fn_id, name, subsystem, make_loc()))
        db.callees.append(callees)
        db._by_name[name] = fn_id
        mask = 0
        for callee in callees:
            mask |= masks[callee] | (1 << callee)
        masks.append(mask)
        size = mask.bit_count() if hasattr(mask, "bit_count") \
            else bin(mask).count("1")
        db._closure_size.append(size)
        db._size_index.setdefault(size, []).append(fn_id)
        return fn_id

    # layer 1: leaves
    for __ in range(n_leaf):
        bulk_add(pick_subsystem(), [])
    leaf_end = len(db.functions)

    # layer 2: utils
    for __ in range(n_util):
        fanout = rng.randint(1, 4)
        callees = rng.sample(range(leaf_end), min(fanout, leaf_end))
        bulk_add(pick_subsystem(), callees)
    util_end = len(db.functions)

    # layer 3: spine — each node calls its predecessor plus some utils
    prev = None
    for k in range(n_spine):
        callees: List[int] = []
        if prev is not None:
            callees.append(prev)
        extra = rng.randint(0, 2)
        callees.extend(rng.sample(range(util_end), extra))
        prev = bulk_add(pick_subsystem(), callees)

    spine_end = len(db.functions)

    # layer 4: mid-layer subsystem logic
    for __ in range(n_mid):
        fanout = rng.randint(2, 5)
        pool_top = len(db.functions)
        callees = []
        for __ in range(fanout):
            # bias toward shallow targets; occasionally reach the spine
            if rng.random() < 0.25:
                callees.append(rng.randrange(util_end, spine_end))
            else:
                callees.append(rng.randrange(pool_top))
        bulk_add(pick_subsystem(), list(dict.fromkeys(callees)))


@lru_cache(maxsize=4)
def build_default_funcdb(seed: int = 2023,
                         total: int = 20000) -> FunctionDatabase:
    """Build (and cache) the default synthetic kernel."""
    db = FunctionDatabase(seed=seed)
    rng = random.Random(seed)
    _bulk_generate(db, rng, total)
    return db
