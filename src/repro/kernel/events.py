"""The kernel event stream: one subscribable bus per kernel.

Before the fleet work, anything that wanted to observe a kernel had to
reach into its internals: telemetry hung off a private ``on_oops``
callback, the supervisor's health transitions were visible only in its
audit list, and a load was an entry in the kernel log.  That was fine
while every consumer lived in the same module graph — it stops working
when an *orchestrator* owns hundreds of kernels and needs to watch all
of them without coupling to any subsystem's internals.

This module is the redesigned delivery path.  Each
:class:`~repro.kernel.kernel.Kernel` owns one :class:`EventBus`;
producers publish typed :class:`KernelEvent` records —

* ``oops`` — every kernel oops, as it is recorded (the bus replaces
  the old private callback; telemetry is now just the first
  subscriber),
* ``load`` — every program through a load pipeline,
* ``health`` — every supervisor health-state transition
  (old state, new state, reason),
* ``soft-reset`` — scoped taint cleared (a rollback leaves this
  fingerprint),
* ``telemetry`` — an on-demand roll-up snapshot
  (:meth:`~repro.kernel.kernel.Kernel.emit_telemetry_snapshot`),

and consumers subscribe by kind.  Delivery is synchronous and in
subscription order, so the stream is as deterministic as the
simulation itself: the sequence of events is a pure function of
(workload, seed), which is what lets the fleet's rollout log be
bit-identical across runs.

Hot-path contract: nothing here runs per instruction or per packet.
Oopses, loads and health transitions are control-plane-rate; the only
per-event cost beyond building the record is one list iteration over
the matching subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class KernelEvent:
    """One observed kernel fact, stamped on the virtual clock."""

    seq: int
    timestamp_ns: int
    kind: str
    source: str
    detail: Tuple[Tuple[str, object], ...] = ()

    def get(self, key: str, default: object = None) -> object:
        """One detail field (events carry details as sorted pairs so
        they hash stably into determinism digests)."""
        for name, value in self.detail:
            if name == key:
                return value
        return default

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view."""
        return {"seq": self.seq, "timestamp_ns": self.timestamp_ns,
                "kind": self.kind, "source": self.source,
                "detail": dict(self.detail)}

    def signature_bytes(self) -> bytes:
        """Stable serialization, hashed into rollout signatures."""
        return repr((self.seq, self.timestamp_ns, self.kind,
                     self.source, self.detail)).encode()


#: a subscriber: called synchronously with each matching event
EventHandler = Callable[[KernelEvent], None]


@dataclass
class Subscription:
    """One live subscription (returned by :meth:`EventBus.subscribe`;
    calling :meth:`cancel` detaches it)."""

    bus: "EventBus"
    handler: EventHandler
    kinds: Optional[Tuple[str, ...]] = None
    active: bool = True

    def matches(self, kind: str) -> bool:
        """True when this subscription wants ``kind`` events."""
        return self.active and (self.kinds is None
                                or kind in self.kinds)

    def cancel(self) -> None:
        """Detach; pending deliveries in the current publish still
        complete (delivery snapshots the subscriber list)."""
        self.active = False
        self.bus.prune()


class EventBus:
    """Synchronous, deterministic pub/sub over one kernel's events."""

    def __init__(self, clock: Optional[object] = None) -> None:
        self.clock = clock
        self._subs: List[Subscription] = []
        #: events published, by kind (cheap observability for tests)
        self.emitted: Dict[str, int] = {}
        self._next_seq = 0

    def subscribe(self, handler: EventHandler,
                  kinds: Optional[Tuple[str, ...]] = None,
                  ) -> Subscription:
        """Attach a handler for ``kinds`` (None = every kind).
        Handlers run synchronously, in subscription order."""
        sub = Subscription(self, handler,
                           tuple(kinds) if kinds is not None else None)
        self._subs.append(sub)
        return sub

    def prune(self) -> None:
        """Drop cancelled subscriptions."""
        self._subs = [s for s in self._subs if s.active]

    def publish(self, kind: str, source: str = "",
                timestamp_ns: Optional[int] = None,
                **detail: object) -> KernelEvent:
        """Build and deliver one event; returns it (tests assert on
        the return value).  ``timestamp_ns`` defaults to the kernel
        clock — producers that know a better stamp (an oops carries
        its own) pass it explicitly."""
        if timestamp_ns is None:
            timestamp_ns = self.clock.now_ns if self.clock else 0
        event = KernelEvent(
            seq=self._next_seq, timestamp_ns=timestamp_ns, kind=kind,
            source=source, detail=tuple(sorted(detail.items())))
        self._next_seq += 1
        self.emitted[kind] = self.emitted.get(kind, 0) + 1
        for sub in list(self._subs):
            if sub.matches(kind):
                sub.handler(event)
        return event
