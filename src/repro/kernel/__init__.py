"""Simulated Linux-kernel substrate.

Everything the paper's experiments need from a kernel is modeled here:
a virtual clock, per-CPU state, a typed kernel address space with fault
detection, refcounted objects, RCU with a stall detector, spinlocks, a
panic/oops path, kernel object types, a synthetic kernel function
database (for the call-graph measurements of Figure 3), and a minimal
``bpf(2)``-style syscall surface.

The central type is :class:`Kernel`, which aggregates the subsystems
and is passed to both extension frameworks.
"""

from repro.kernel.events import EventBus, KernelEvent, Subscription
from repro.kernel.kernel import Kernel
from repro.kernel.ktime import VirtualClock
from repro.kernel.spec import KernelSpec
from repro.kernel.memory import KernelAddressSpace, Allocation
from repro.kernel.panic import KernelLog
from repro.kernel.rcu import RcuSubsystem
from repro.kernel.locks import SpinLock
from repro.kernel.refcount import RefcountRegistry, RefcountedObject
from repro.kernel.cpu import Cpu
from repro.kernel.objects import TaskStruct, Sock, SkBuff, RequestSock

__all__ = [
    "EventBus",
    "Kernel",
    "KernelEvent",
    "KernelSpec",
    "Subscription",
    "VirtualClock",
    "KernelAddressSpace",
    "Allocation",
    "KernelLog",
    "RcuSubsystem",
    "SpinLock",
    "RefcountRegistry",
    "RefcountedObject",
    "Cpu",
    "TaskStruct",
    "Sock",
    "SkBuff",
    "RequestSock",
]
