"""The :class:`Kernel` aggregate: one simulated kernel instance.

Both extension frameworks — the modeled eBPF subsystem and the paper's
proposed SafeLang framework — execute against a ``Kernel``.  It wires
the subsystems together (memory faults flow into the oops path, RCU
stall detection hangs off the virtual clock) and exposes the object
population (tasks, sockets) that helper functions operate on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import KernelSafetyViolation, MemoryFault
from repro.faultinject.plane import FaultPlane
from repro.kernel.cpu import Cpu
from repro.kernel.events import EventBus
from repro.kernel.funcdb import FunctionDatabase, build_default_funcdb
from repro.kernel.ktime import VirtualClock
from repro.kernel.spec import KernelSpec
from repro.kernel.locks import LockRegistry
from repro.kernel.memory import KernelAddressSpace
from repro.kernel.objects import RequestSock, SkBuff, Sock, TaskStruct
from repro.kernel.panic import KernelLog
from repro.kernel.rcu import RcuSubsystem
from repro.kernel.refcount import RefcountRegistry
from repro.telemetry import Telemetry

#: virtual nanoseconds charged per executed extension instruction
NSEC_PER_INSN = 1


class Kernel:
    """One booted instance of the simulated kernel."""

    def __init__(self, nr_cpus: int = 4,
                 funcdb: Optional[FunctionDatabase] = None,
                 spec: Optional[KernelSpec] = None) -> None:
        """Boot a kernel.  The legacy keywords are a thin shim over
        :class:`~repro.kernel.spec.KernelSpec`: they are folded into
        one (``spec`` wins when both are given) and the spec's
        post-boot fields — stats toggle, supervisor, fault schedule —
        are applied last, exactly as :meth:`from_spec` would."""
        if spec is None:
            spec = KernelSpec(nr_cpus=nr_cpus)
        #: the declarative config this kernel was stamped from
        self.spec = spec
        self.clock = VirtualClock()
        self.log = KernelLog()
        #: the subscribable event stream (see
        #: :mod:`repro.kernel.events`); fleet orchestrators observe
        #: the kernel exclusively through this bus
        self.events = EventBus(clock=self.clock)
        #: the shared observability hub; ``telemetry.stats_enabled``
        #: models the ``kernel.bpf_stats_enabled`` sysctl
        self.telemetry = Telemetry(clock=self.clock)
        # telemetry is the bus's first subscriber, so counters update
        # before any external observer sees the event
        self.events.subscribe(
            lambda e: self.telemetry.record_oops(
                e.timestamp_ns, e.get("category"), e.source),
            kinds=("oops",))
        self.log.on_oops = lambda oops: self.events.publish(
            "oops", source=oops.source,
            timestamp_ns=oops.timestamp_ns, category=oops.category)
        #: the fault-injection plane; disabled (one bool test) unless
        #: a chaos experiment arms it
        self.faults = FaultPlane(clock=self.clock,
                                 telemetry=self.telemetry)
        self.mem = KernelAddressSpace()
        self.mem.fault_hook = self._on_memory_fault
        self.rcu = RcuSubsystem(self.clock, self.log)
        self.rcu.faults = self.faults
        self.rcu.kernel = self
        # locks created through the registry report violations through
        # the official oops path (recovery sees them like any fault)
        self.locks = LockRegistry(log=self.log, clock=self.clock,
                                  kernel=self)
        #: the recovery supervisor, once :meth:`enable_recovery` ran;
        #: None keeps every dispatch path on its zero-cost fast path
        self.recovery: Optional[object] = None
        self.refs = RefcountRegistry()
        self.cpus = [Cpu(i) for i in range(spec.nr_cpus)]
        self._current_cpu = 0
        self._funcdb = funcdb
        #: the deterministic SMP scheduler while a run is active (see
        #: :mod:`repro.kernel.smp`); None keeps every yield-point hook
        #: on its one-attribute-test fast path
        self.smp: Optional[object] = None

        self.tasks: List[TaskStruct] = []
        self.sockets: List[Sock] = []
        self.request_socks: List[RequestSock] = []
        self._next_pid = 100

        # the init task; extensions observe it as "current"
        self.current_task = self.create_task(comm="init", pid=1)
        self.log.log(0, "Linux version 5.18.0-repro (simulated)")

        # attachment points (built lazily to avoid an import cycle)
        self._hooks = None

        # declarative post-boot configuration (stats / recovery /
        # fault schedule) comes last: it needs the subsystems above
        spec.configure(self)

    @classmethod
    def from_spec(cls, spec: KernelSpec,
                  funcdb: Optional[FunctionDatabase] = None,
                  ) -> "Kernel":
        """Stamp one kernel from a declarative spec — the fleet's
        node factory.  Equal specs yield identically-configured
        kernels (module defaults aside), which is what makes a
        rollout wave uniform."""
        return cls(funcdb=funcdb, spec=spec)

    @property
    def hooks(self) -> "object":
        """The kernel's attachment points (see
        :mod:`repro.kernel.hooks`)."""
        if self._hooks is None:
            from repro.kernel.hooks import HookManager
            self._hooks = HookManager(self)
        return self._hooks

    # -- subsystem access ---------------------------------------------------

    @property
    def funcdb(self) -> FunctionDatabase:
        """The synthetic source tree (built lazily; shared by default)."""
        if self._funcdb is None:
            self._funcdb = build_default_funcdb()
        return self._funcdb

    @property
    def current_cpu(self) -> Cpu:
        """The CPU the simulation is currently executing on."""
        return self.cpus[self._current_cpu]

    def set_current_cpu(self, cpu_id: int) -> None:
        """Migrate the simulation to another CPU."""
        if not 0 <= cpu_id < len(self.cpus):
            raise ValueError(f"no such cpu {cpu_id}")
        self._current_cpu = cpu_id

    @property
    def healthy(self) -> bool:
        """False while the kernel carries an uncontained oops (or has
        panicked for good)."""
        return not self.log.tainted

    def assert_healthy(self) -> None:
        """Raise if the kernel is tainted (experiments use this to
        classify 'kernel compromised' outcomes).  Contained oopses —
        unwound and audited by the recovery supervisor — do not
        count."""
        self.check_alive()

    def check_alive(self) -> bool:
        """The liveness check the chaos harness runs after recovery:
        raises :class:`~repro.errors.KernelSafetyViolation` if the
        kernel has panicked or carries an uncontained oops; returns
        True otherwise."""
        if self.log.panicked:
            raise KernelSafetyViolation(
                f"kernel panicked: {self.log.panic_reason}",
                source="kernel")
        uncontained = self.log.uncontained_oopses()
        if uncontained:
            oops = uncontained[-1]
            raise KernelSafetyViolation(
                f"kernel is tainted: {oops.category}: {oops.reason}",
                source=oops.source)
        return True

    # -- recovery -----------------------------------------------------------

    def enable_recovery(self, policy: Optional[object] = None) -> object:
        """Attach the fault-containment supervisor (idempotent).

        Both extension frameworks consult ``kernel.recovery`` on their
        dispatch paths; while it is None (the default) the only cost is
        one attribute test."""
        if self.recovery is None:
            from repro.recovery import Supervisor
            self.recovery = Supervisor(self, policy=policy)
        return self.recovery

    def soft_reset(self, sources, reason: str,
                   breakers: bool = True) -> int:
        """Clear the taint attributed to ``sources`` after their fault
        domains were unwound — the scoped replacement for a reboot.
        Returns how many oopses were marked contained.

        With ``breakers`` (the default) the supervisor's circuit
        breakers for those sources are reset too — half-open trial
        flags, consecutive-quarantine backoff, the release window —
        so a node rolled back to a prior release re-enters HEALTHY
        cleanly instead of inheriting the bad release's open breaker.
        The supervisor's own containment path passes ``False``: mid-
        containment the breaker state *is* the health signal and the
        supervisor manages it itself."""
        cleared = self.log.mark_contained(
            sources, self.clock.now_ns, reason)
        if breakers and self.recovery is not None:
            self.recovery.reset_breakers(sources, reason=reason)
        self.events.publish(
            "soft-reset", source="kernel", reason=reason,
            cleared=cleared, breakers=breakers,
            sources=tuple(sorted(sources)) if not isinstance(
                sources, str) else (sources,))
        return cleared

    def emit_telemetry_snapshot(self) -> "object":
        """Publish a compact telemetry roll-up on the event stream
        (the fleet aggregator's per-wave census source); returns the
        published event."""
        progs = self.telemetry.progs.rows()
        return self.events.publish(
            "telemetry", source="kernel",
            progs=len(progs),
            oopses=len(self.log.oopses),
            contained=self.log.contained_count,
            tainted=self.log.tainted,
            panicked=self.log.panicked,
            clock_ns=self.clock.now_ns)

    # -- time / work accounting ---------------------------------------------

    def work(self, instructions: int) -> None:
        """Charge virtual time for executed extension instructions.

        This is what arms the RCU stall detector and watchdogs against
        long-running extensions: every instruction advances the clock.
        """
        self.clock.advance(instructions * NSEC_PER_INSN)

    # -- object population --------------------------------------------------

    def create_task(self, comm: str = "task",
                    pid: Optional[int] = None) -> TaskStruct:
        """Spawn a task."""
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
        task = TaskStruct(self.mem, self.refs, pid=pid, comm=comm)
        self.tasks.append(task)
        return task

    def create_socket(self, src_ip: int = 0x7F000001, src_port: int = 0,
                      dst_ip: int = 0, dst_port: int = 0) -> Sock:
        """Open a (simulated) TCP socket."""
        sock = Sock(self.mem, self.refs, src_ip=src_ip, src_port=src_port,
                    dst_ip=dst_ip, dst_port=dst_port)
        self.sockets.append(sock)
        return sock

    def create_request_sock(self, name: str) -> RequestSock:
        """Create a connection-request mini-socket."""
        reqsk = RequestSock(self.mem, self.refs, name)
        self.request_socks.append(reqsk)
        return reqsk

    def create_skb(self, payload: bytes, protocol: int = 0x0800) -> SkBuff:
        """Build a socket buffer carrying ``payload``."""
        return SkBuff(self.mem, payload, protocol=protocol)

    def lookup_socket(self, dst_ip: int, dst_port: int) -> Optional[Sock]:
        """Socket lookup by destination tuple (``sk_lookup`` model)."""
        for sock in self.sockets:
            if (sock.read_field("src_ip") == dst_ip
                    and sock.read_field("src_port") == dst_port):
                return sock
        return None

    def task_by_pid(self, pid: int) -> Optional[TaskStruct]:
        """Find a task by pid."""
        for task in self.tasks:
            if task.pid == pid:
                return task
        return None

    # -- fault plumbing ------------------------------------------------------

    def _on_memory_fault(self, fault: MemoryFault) -> None:
        """Route a detected memory fault into the oops path."""
        self.log.record_oops(
            self.clock.now_ns, str(fault),
            category=fault.category, source=fault.source)
