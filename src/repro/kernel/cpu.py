"""Per-CPU state: interrupt context, preemption, per-CPU storage.

eBPF programs frequently run in non-sleepable contexts (kprobes fire in
interrupt context, XDP in softirq).  The paper's proposed framework
relies on this: its memory pool is a *per-CPU region* precisely because
an allocator may not be available in interrupt context (§3.1, [17]).
The simulation models just enough — IRQ nesting depth, preempt count,
and a per-CPU key/value region — for those constraints to be real.
"""

from __future__ import annotations

from typing import Any, Dict


class Cpu:
    """One simulated CPU."""

    def __init__(self, cpu_id: int) -> None:
        self.cpu_id = cpu_id
        self._irq_depth = 0
        self._preempt_count = 0
        #: per-CPU storage region (used by the SafeLang memory pool)
        self.storage: Dict[str, Any] = {}

    @property
    def in_interrupt(self) -> bool:
        """True while servicing an interrupt (non-sleepable context)."""
        return self._irq_depth > 0

    @property
    def preemptible(self) -> bool:
        """True when preemption is enabled and not in IRQ context."""
        return self._preempt_count == 0 and self._irq_depth == 0

    def irq_enter(self) -> None:
        """Enter interrupt context (may nest)."""
        self._irq_depth += 1

    def irq_exit(self) -> None:
        """Leave interrupt context."""
        if self._irq_depth == 0:
            raise RuntimeError(f"cpu{self.cpu_id}: irq_exit with depth 0")
        self._irq_depth -= 1

    def preempt_disable(self) -> None:
        """Disable preemption (may nest)."""
        self._preempt_count += 1

    def preempt_enable(self) -> None:
        """Re-enable preemption."""
        if self._preempt_count == 0:
            raise RuntimeError(
                f"cpu{self.cpu_id}: preempt_enable with count 0")
        self._preempt_count -= 1


class InterruptContext:
    """Context manager that runs a block in simulated interrupt context.

    Example::

        with InterruptContext(cpu):
            framework.run(extension, ctx)   # non-sleepable here
    """

    def __init__(self, cpu: Cpu) -> None:
        self._cpu = cpu

    def __enter__(self) -> Cpu:
        self._cpu.irq_enter()
        return self._cpu

    def __exit__(self, *exc_info: object) -> None:
        self._cpu.irq_exit()
