"""Declarative kernel construction: :class:`KernelSpec`.

The keyword sprawl this consolidates grew one PR at a time: CPUs on
the :class:`~repro.kernel.kernel.Kernel` constructor, the execution
engine on :class:`~repro.ebpf.loader.BpfSubsystem`, run stats behind
``telemetry.enable()``, fault schedules armed imperatively on
``kernel.faults``, the supervisor via ``kernel.enable_recovery``.
Each knob is fine alone; a fleet that must stamp out *hundreds of
identical nodes* needs all of them in one declarative, hashable value
— the same spec, applied N times, yields N identically-configured
kernels, which is half of what makes a rollout replayable.

``KernelSpec`` is that value.  ``Kernel.from_spec(spec)`` (and the
old constructor, now a thin shim that builds a spec from its two
legacy keywords) boots a kernel and applies the kernel-side fields;
``BpfSubsystem.from_spec(kernel, spec)`` applies the subsystem-side
ones (engine, JIT, load cache).  Fault arms use the same
``SITE=SCHEDULE=ACTION`` strings as ``bpftool fault --arm`` so a
chaos schedule pastes straight into a fleet config.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.faultinject.plane import parse_action, parse_schedule


@dataclass(frozen=True)
class KernelSpec:
    """Everything needed to stamp out one simulated kernel node.

    Frozen (hashable, reusable): the fleet applies one spec to every
    node in a wave.  ``engine`` is an
    :class:`~repro.ebpf.engine.Engine`, its string value, or None
    (subsystem default); it is validated when a subsystem is built
    from the spec, keeping this module free of the ebpf import cycle.
    """

    #: CPUs the kernel boots with
    nr_cpus: int = 4
    #: execution tier for subsystems stamped from this spec
    engine: Optional[object] = None
    #: ``kernel.bpf_stats_enabled`` at boot
    stats_enabled: bool = False
    #: attach the recovery supervisor at boot
    recovery: bool = False
    #: supervisor tunables (:class:`~repro.recovery.RecoveryPolicy`);
    #: a non-None policy implies ``recovery``
    recovery_policy: Optional[object] = None
    #: seed for the fault plane; None leaves the plane disabled
    fault_seed: Optional[int] = None
    #: ``SITE=SCHEDULE=ACTION`` rules armed at boot (bpftool syntax)
    fault_arms: Tuple[str, ...] = ()
    #: subsystem-side toggles, threaded through ``from_spec``
    use_jit: bool = True
    use_load_cache: bool = True

    @property
    def wants_recovery(self) -> bool:
        """True when the spec asks for a supervisor (explicitly or by
        carrying a policy)."""
        return self.recovery or self.recovery_policy is not None

    def with_faults(self, seed: int,
                    *arms: str) -> "KernelSpec":
        """A copy with a fault schedule attached (chaos replay)."""
        return replace(self, fault_seed=seed,
                       fault_arms=self.fault_arms + tuple(arms))

    def configure(self, kernel: "object") -> None:
        """Apply the post-boot fields to a freshly-built kernel:
        stats toggle, supervisor, fault plane.  Called by
        ``Kernel.from_spec`` / the constructor shim; idempotent
        enough to call once per kernel."""
        if self.stats_enabled:
            kernel.telemetry.enable()
        if self.wants_recovery:
            kernel.enable_recovery(self.recovery_policy)
        if self.fault_seed is not None or self.fault_arms:
            kernel.faults.enable(self.fault_seed or 0)
            for arm in self.fault_arms:
                site, schedule, action = split_arm(arm)
                kernel.faults.arm(site, parse_schedule(schedule),
                                  parse_action(action))

    def boot(self, funcdb: Optional[object] = None) -> "object":
        """Build a configured :class:`~repro.kernel.kernel.Kernel`
        (convenience alias of ``Kernel.from_spec``)."""
        from repro.kernel.kernel import Kernel
        return Kernel.from_spec(self, funcdb=funcdb)

    def describe(self) -> str:
        """One-line form for logs and the fleet CLI."""
        parts = [f"cpus={self.nr_cpus}"]
        if self.engine is not None:
            parts.append(f"engine={self.engine}")
        if self.stats_enabled:
            parts.append("stats=on")
        if self.wants_recovery:
            parts.append("recovery=on")
        if self.fault_seed is not None or self.fault_arms:
            parts.append(f"faults(seed={self.fault_seed or 0},"
                         f"arms={len(self.fault_arms)})")
        return " ".join(parts)


def split_arm(text: str) -> Tuple[str, str, str]:
    """Split one ``SITE=SCHEDULE=ACTION`` rule (shared with bpftool's
    ``--arm``); raises ``ValueError`` on malformed input."""
    parts = text.split("=")
    if len(parts) != 3:
        raise ValueError(
            f"bad fault arm {text!r}; expected SITE=SCHEDULE=ACTION")
    return parts[0], parts[1], parts[2]
