"""Spinlocks with the discipline the eBPF verifier polices.

Since ``bpf_spin_lock`` was introduced, the verifier grew logic to
check that a program "only holds one lock at a time and releases the
lock before termination" [48] (paper §2.1).  The simulated spinlock
detects the violations directly: double acquisition (self-deadlock),
release by a non-owner, and locks still held when an extension exits.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import KernelDeadlock, ResourceLeak


class SpinLock:
    """A non-recursive spinlock with owner tracking."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._owner: Optional[str] = None
        self.acquire_count = 0

    @property
    def locked(self) -> bool:
        """True while held."""
        return self._owner is not None

    @property
    def owner(self) -> Optional[str]:
        """Current holder, if any."""
        return self._owner

    def lock(self, owner: str) -> None:
        """Acquire.  Re-acquisition by the same owner is a self-deadlock;
        acquisition while held by another simulated context would spin
        forever on one CPU, which we also surface as a deadlock."""
        if self._owner == owner:
            raise KernelDeadlock(
                f"AA deadlock: {owner} re-acquired spinlock {self.name}",
                source=owner)
        if self._owner is not None:
            raise KernelDeadlock(
                f"deadlock: {owner} spinning on {self.name} "
                f"held by {self._owner}",
                source=owner)
        self._owner = owner
        self.acquire_count += 1

    def unlock(self, owner: str) -> None:
        """Release.  Only the holder may release."""
        if self._owner is None:
            raise KernelDeadlock(
                f"{owner} unlocked {self.name} which is not held",
                source=owner)
        if self._owner != owner:
            raise KernelDeadlock(
                f"{owner} unlocked {self.name} held by {self._owner}",
                source=owner)
        self._owner = None


class LockRegistry:
    """All spinlocks reachable by extensions, with exit-time auditing."""

    def __init__(self) -> None:
        self._locks: List[SpinLock] = []

    def create(self, name: str) -> SpinLock:
        """Create and track a new spinlock."""
        lock = SpinLock(name)
        self._locks.append(lock)
        return lock

    def held_by(self, owner: str) -> List[SpinLock]:
        """Locks currently held by ``owner``."""
        return [lk for lk in self._locks if lk.owner == owner]

    def assert_none_held(self, owner: str) -> None:
        """Raise :class:`ResourceLeak` if ``owner`` still holds locks —
        the 'lock held at program exit' condition the verifier rejects
        statically and our runtime detects dynamically."""
        held = self.held_by(owner)
        if held:
            names = ", ".join(lk.name for lk in held)
            raise ResourceLeak(
                f"{owner} exited still holding spinlock(s): {names}",
                source=owner)
