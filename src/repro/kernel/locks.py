"""Spinlocks with the discipline the eBPF verifier polices.

Since ``bpf_spin_lock`` was introduced, the verifier grew logic to
check that a program "only holds one lock at a time and releases the
lock before termination" [48] (paper §2.1).  The simulated spinlock
detects the violations directly: double acquisition (self-deadlock),
release by a non-owner, and locks still held when an extension exits.

Violations go through the *official oops path* when the lock is wired
to a kernel log (the registry the :class:`~repro.kernel.kernel.Kernel`
creates does this): the oops is recorded with attribution first, then
:class:`~repro.errors.KernelDeadlock` is raised — so the recovery
supervisor sees lock abuse exactly like any other kernel fault.
Standalone locks (no log) just raise.

SMP semantics: each lock records the **owner CPU** alongside the owner
tag.  While a deterministic SMP run is active
(:mod:`repro.kernel.smp`), acquire and release are yield points, a
*cross-CPU* contended acquire genuinely spins (the task blocks, other
CPUs keep running, contention is counted in telemetry), and a
*same-CPU* contended acquire is a lockdep violation — a non-preemptible
context spinning on a lock its own CPU already holds can never make
progress, so it oopses through the official path immediately instead
of hanging the schedule.  Without an active SMP run, behavior is
unchanged: any contended acquire is surfaced as a deadlock, because
serialized execution could never release it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import KernelDeadlock, ResourceLeak


class SpinLock:
    """A non-recursive spinlock with owner + owner-CPU tracking."""

    def __init__(self, name: str, log: Optional[object] = None,
                 clock: Optional[object] = None,
                 kernel: Optional[object] = None) -> None:
        self.name = name
        self._owner: Optional[str] = None
        #: CPU the current holder acquired on (lockdep state)
        self.owner_cpu: Optional[int] = None
        self.acquire_count = 0
        #: acquisitions that had to spin on another CPU's holder
        self.contended_count = 0
        self._log = log
        self._clock = clock
        self._kernel = kernel

    @property
    def locked(self) -> bool:
        """True while held."""
        return self._owner is not None

    @property
    def owner(self) -> Optional[str]:
        """Current holder, if any."""
        return self._owner

    def _violation(self, reason: str, source: str) -> None:
        """Record the violation as an oops (official path) and raise."""
        if self._log is not None:
            now = self._clock.now_ns if self._clock is not None else 0
            self._log.record_oops(now, reason, category="deadlock",
                                  source=source)
        raise KernelDeadlock(reason, source=source)

    def _smp(self) -> Optional[object]:
        """The active SMP scheduler, if a deterministic run is on."""
        if self._kernel is None:
            return None
        return self._kernel.smp

    def lock(self, owner: str) -> None:
        """Acquire.

        Re-acquisition by the same owner is a self-deadlock.  Under an
        active SMP run a contended acquire from *another* CPU blocks
        until the holder releases, while a contended acquire from the
        **same** CPU is a lockdep violation (nothing on that CPU can
        ever release it).  Serialized (non-SMP) execution surfaces any
        contention as a deadlock, as before.
        """
        smp = self._smp()
        if smp is not None:
            smp.yield_point("lock.acquire", self.name)
        if self._owner == owner:
            self._violation(
                f"AA deadlock: {owner} re-acquired spinlock {self.name}",
                owner)
        if self._owner is not None:
            if smp is None:
                self._violation(
                    f"deadlock: {owner} spinning on {self.name} "
                    f"held by {self._owner}",
                    owner)
            cpu = self._kernel.current_cpu.cpu_id
            if self.owner_cpu == cpu:
                self._violation(
                    f"lockdep: cpu{cpu} ({owner}) spinning on "
                    f"{self.name} already held on cpu{cpu} by "
                    f"{self._owner} — non-preemptible self-spin",
                    owner)
            self.contended_count += 1
            smp.note_lock_contention(self.name)
            smp.wait_until(lambda: self._owner is None,
                           f"lock:{self.name}")
        self._owner = owner
        self.owner_cpu = (self._kernel.current_cpu.cpu_id
                          if self._kernel is not None else None)
        self.acquire_count += 1
        if smp is not None:
            smp.note_lock_acquired(self.name)

    def unlock(self, owner: str) -> None:
        """Release.  Only the holder may release."""
        if self._owner is None:
            self._violation(
                f"{owner} unlocked {self.name} which is not held",
                owner)
        if self._owner != owner:
            self._violation(
                f"{owner} unlocked {self.name} held by {self._owner}",
                owner)
        self._owner = None
        self.owner_cpu = None
        smp = self._smp()
        if smp is not None:
            smp.note_lock_released(self.name)
            smp.yield_point("lock.release", self.name)

    def force_unlock(self, source: str = "recovery") -> Optional[str]:
        """Containment release: drop the lock regardless of owner.

        Used only by the recovery supervisor while unwinding a fault
        domain; logged (not an oops — this is the cure, not the
        disease).  Returns the previous owner, or None if unheld."""
        previous = self._owner
        if previous is None:
            return None
        self._owner = None
        self.owner_cpu = None
        if self._log is not None:
            now = self._clock.now_ns if self._clock is not None else 0
            self._log.log(
                now, f"recovery: {source} force-released spinlock "
                     f"{self.name} (was held by {previous})",
                level="warn")
        return previous


class LockRegistry:
    """All spinlocks reachable by extensions, with exit-time auditing."""

    def __init__(self, log: Optional[object] = None,
                 clock: Optional[object] = None,
                 kernel: Optional[object] = None) -> None:
        self._locks: List[SpinLock] = []
        self._log = log
        self._clock = clock
        self._kernel = kernel

    def create(self, name: str) -> SpinLock:
        """Create and track a new spinlock."""
        lock = SpinLock(name, log=self._log, clock=self._clock,
                        kernel=self._kernel)
        self._locks.append(lock)
        return lock

    def all_locks(self) -> List[SpinLock]:
        """Every lock ever created through this registry."""
        return list(self._locks)

    def held_by(self, owner: str) -> List[SpinLock]:
        """Locks currently held by ``owner``."""
        return [lk for lk in self._locks if lk.owner == owner]

    def assert_none_held(self, owner: str) -> None:
        """Raise :class:`ResourceLeak` if ``owner`` still holds locks —
        the 'lock held at program exit' condition the verifier rejects
        statically and our runtime detects dynamically."""
        held = self.held_by(owner)
        if held:
            names = ", ".join(lk.name for lk in held)
            raise ResourceLeak(
                f"{owner} exited still holding spinlock(s): {names}",
                source=owner)
