"""Deterministic SMP: seeded multi-CPU interleaving on the virtual clock.

`kernel/cpu.py` models CPUs, but until now dispatch was effectively
serialized: one logical thread of execution visited CPUs in turn, so
the scenario band the paper cares most about — RCU grace periods with
*real* concurrent readers, lock discipline under contention, per-CPU
vs shared-map races — simply could not occur.  This module makes
extensions genuinely race, deterministically.

The model: every logical CPU owns a FIFO run queue of tasks (eBPF
program invocations, writers, pollers).  Exactly one task executes at
any moment — concurrency is *logical*, host threads are only the
mechanism for suspending and resuming deep interpreter stacks — and
every cross-CPU interleaving decision happens at a **yield point**:

==================  =====================================================
kind                where it fires
==================  =====================================================
``lock.acquire``    :meth:`~repro.kernel.locks.SpinLock.lock` entry
``lock.release``    :meth:`~repro.kernel.locks.SpinLock.unlock`
``rcu.enter``       ``rcu_read_lock`` from an SMP task
``rcu.exit``        ``rcu_read_unlock`` from an SMP task
``rcu.sync``        grace-period advance in ``synchronize_rcu``
``map.<op>``        shared-map lookup/update/delete entry
``mem.access``      load/store hitting shared map storage or a kernel
                    object (per-CPU slices and private stacks excluded)
``ringbuf.produce`` ring-buffer record production
``helper``          every helper call (all three engines route here)
``migrate``         task moved to another CPU's queue
``ipi``             cross-CPU function-call delivery
``block``/``spawn``/``exit``  scheduler-internal transitions
==================  =====================================================

At each yield point the seeded :class:`InterleavingSchedule` picks
which CPU runs next.  Same seed, same workload => byte-identical
decision trace, pinned by a SHA-256 :meth:`SmpScheduler.trace_signature`
exactly like the fault plane's.  A :class:`ScriptedInterleaving`
replays an explicit choice prefix, which is what the race-hunting
explorer (:mod:`repro.analysis.racehunt`) uses to enumerate and replay
interesting interleavings.

Hot-path contract: while no scheduler is installed, ``kernel.smp`` is
None and every hook site pays one attribute test — the serial fast
paths are untouched.
"""

from __future__ import annotations

import hashlib
import threading
from random import Random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import KernelDeadlock

#: guard against a host-level hang (a bug, never a schedule): the main
#: thread refuses to wait longer than this for the run to finish
RUN_TIMEOUT_S = 120.0


class SmpAborted(Exception):
    """Raised inside suspended tasks when the run aborts (deadlock)."""


class InterleavingSchedule:
    """Decides, per yield point, which CPU's run queue advances.

    Schedules see the list of runnable CPU ids (sorted ascending), the
    1-based decision index, and the scheduler's seeded RNG.  They must
    be pure functions of those inputs plus their own construction
    arguments — that is what makes a trace replayable from its seed.
    """

    def choose(self, runnable: Sequence[int], decision: int,
               rng: Random) -> int:
        """Return the CPU id (member of ``runnable``) to run next."""
        raise NotImplementedError

    def migrate_to(self, decision: int, rng: Random) -> Optional[int]:
        """Target CPU to migrate the *current* task to at this yield
        point, or None.  Default: never migrate."""
        return None

    def describe(self) -> str:
        """Parseable human-readable form (``seeded:7``)."""
        raise NotImplementedError


class SeededInterleaving(InterleavingSchedule):
    """Uniform seeded choice among runnable CPUs — the explorer's
    random-sampling workhorse.  ``migration_rate`` > 0 additionally
    migrates the deciding task to a random CPU with that probability,
    exercising the migration/IPI yield points."""

    def __init__(self, seed: int = 0,
                 migration_rate: float = 0.0,
                 nr_cpus: int = 0) -> None:
        self.seed = seed
        self.migration_rate = migration_rate
        self.nr_cpus = nr_cpus

    def choose(self, runnable: Sequence[int], decision: int,
               rng: Random) -> int:
        """See :meth:`InterleavingSchedule.choose`."""
        return runnable[rng.randrange(len(runnable))]

    def migrate_to(self, decision: int, rng: Random) -> Optional[int]:
        """See :meth:`InterleavingSchedule.migrate_to`."""
        if self.migration_rate <= 0.0 or self.nr_cpus <= 1:
            return None
        if rng.random() < self.migration_rate:
            return rng.randrange(self.nr_cpus)
        return None

    def describe(self) -> str:
        """See :meth:`InterleavingSchedule.describe`."""
        if self.migration_rate:
            return f"seeded:{self.seed}+mig:{self.migration_rate:g}"
        return f"seeded:{self.seed}"


class RoundRobin(InterleavingSchedule):
    """Cycle CPUs in id order — the serialized baseline, useful for
    pinning that SMP with one runnable CPU degenerates to the old
    behavior."""

    def choose(self, runnable: Sequence[int], decision: int,
               rng: Random) -> int:
        """See :meth:`InterleavingSchedule.choose`."""
        return runnable[decision % len(runnable)]

    def describe(self) -> str:
        """See :meth:`InterleavingSchedule.describe`."""
        return "roundrobin"


class ScriptedInterleaving(InterleavingSchedule):
    """Replay an explicit CPU-choice prefix; past the end, fall back
    to the seeded uniform choice.  ``migrations`` maps decision index
    -> target CPU, so a test can force a migration at an exact yield
    point (the per-CPU-map regression tests do)."""

    def __init__(self, choices: Sequence[int], seed: int = 0,
                 migrations: Optional[Dict[int, int]] = None) -> None:
        self.choices: Tuple[int, ...] = tuple(choices)
        self.seed = seed
        self.migrations = dict(migrations or {})

    def choose(self, runnable: Sequence[int], decision: int,
               rng: Random) -> int:
        """See :meth:`InterleavingSchedule.choose`."""
        if decision <= len(self.choices):
            want = self.choices[decision - 1]
            if want in runnable:
                return want
        return runnable[rng.randrange(len(runnable))]

    def migrate_to(self, decision: int, rng: Random) -> Optional[int]:
        """See :meth:`InterleavingSchedule.migrate_to`."""
        return self.migrations.get(decision)

    def describe(self) -> str:
        """See :meth:`InterleavingSchedule.describe`."""
        return ("script:" + ",".join(str(c) for c in self.choices)
                + f"+seed:{self.seed}")


class SmpTask:
    """One logical context on one CPU's run queue."""

    __slots__ = ("task_id", "name", "cpu_id", "fn", "state", "result",
                 "exc", "wake", "_go", "thread", "locks_held",
                 "migrations", "vm_state")

    def __init__(self, task_id: int, name: str, cpu_id: int,
                 fn: Callable[[], object]) -> None:
        self.task_id = task_id
        self.name = name
        self.cpu_id = cpu_id
        self.fn = fn
        #: ready | running | blocked | done
        self.state = "ready"
        self.result: object = None
        self.exc: Optional[BaseException] = None
        #: predicate that must turn true before a blocked task resumes
        self.wake: Optional[Callable[[], bool]] = None
        self._go = threading.Event()
        self.thread: Optional[threading.Thread] = None
        #: names of spinlocks currently held (lockset for the detector)
        self.locks_held: List[str] = []
        self.migrations = 0
        #: saved BpfVm activation state while suspended (the VM is a
        #: shared singleton; each task owns its own program binding)
        self.vm_state: Optional[tuple] = None

    @property
    def runnable(self) -> bool:
        """True when this task could be chosen to run."""
        return self.state in ("ready", "running")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SmpTask {self.name} cpu{self.cpu_id} {self.state}>"


class SmpScheduler:
    """Per-CPU run queues + the deterministic interleaving engine.

    Usage::

        smp = SmpScheduler(kernel, seed=7)
        smp.spawn(lambda: bpf.run(prog, ctx), cpu=0, name="rx0")
        smp.spawn(writer_fn, cpu=1, name="writer")
        results = smp.run()
        smp.trace_signature()   # replayable: pure function of seed

    Host threads exist only so a task can suspend mid-interpreter;
    exactly one is ever released at a time, so execution order is a
    pure function of (workload, schedule, seed) and the decision trace
    is byte-reproducible.
    """

    def __init__(self, kernel: "object",
                 schedule: Optional[InterleavingSchedule] = None,
                 seed: int = 0,
                 detector: Optional[object] = None,
                 max_decisions: int = 2_000_000) -> None:
        self.kernel = kernel
        self.seed = seed
        self.schedule = schedule if schedule is not None \
            else SeededInterleaving(seed, nr_cpus=len(kernel.cpus))
        self._rng = Random(seed)
        #: optional race detector receiving access/sync callbacks
        #: (duck-typed; see :mod:`repro.analysis.racehunt`)
        self.detector = detector
        #: the BpfVm whose per-program activation state is context-
        #: switched with each task (set by scenarios whose tasks run
        #: eBPF programs; see :meth:`BpfVm.save_smp_state`)
        self.vm: Optional[object] = None
        self.max_decisions = max_decisions
        #: cpu_id -> FIFO run queue (head = the task that CPU runs)
        self.queues: Dict[int, List[SmpTask]] = {
            cpu.cpu_id: [] for cpu in kernel.cpus}
        self.tasks: List[SmpTask] = []
        self.active = False
        self._current: Optional[SmpTask] = None
        self._abort_reason: Optional[str] = None
        self._done = threading.Event()
        self._finish_lock = threading.Lock()
        self._decisions = 0
        #: nesting depth of an atomic RMW (accesses inside are tagged
        #: atomic for the detector and are not preemption points)
        self.atomic_depth = 0
        #: decision trace: (seq, kind, detail, task, cpu, next_cpu)
        self.trace: List[Tuple[int, str, str, str, int, int]] = []
        #: contended lock acquisitions observed (telemetry mirror)
        self.lock_contentions = 0
        self.switches = 0
        self._next_task_id = 1

    # -- population ---------------------------------------------------------

    def spawn(self, fn: Callable[[], object], cpu: Optional[int] = None,
              name: Optional[str] = None) -> SmpTask:
        """Enqueue a task on a CPU's run queue (round-robin default).

        Must be called before :meth:`run` or from a running task (the
        IPI path); spawned tasks run to completion before ``run``
        returns."""
        if cpu is None:
            cpu = (self._next_task_id - 1) % len(self.queues)
        if cpu not in self.queues:
            raise ValueError(f"no such cpu {cpu}")
        task = SmpTask(self._next_task_id,
                       name or f"task{self._next_task_id}", cpu, fn)
        self._next_task_id += 1
        self.tasks.append(task)
        self.queues[cpu].append(task)
        if self.active:
            self._start_thread(task)
            self.yield_point("spawn", task.name)
        return task

    def send_ipi(self, cpu: int, fn: Callable[[], object],
                 name: Optional[str] = None) -> SmpTask:
        """Queue a function call on another CPU (IPI-style): the target
        CPU runs it when the schedule next picks that queue's head."""
        task = self.spawn(fn, cpu=cpu,
                          name=name or f"ipi->cpu{cpu}")
        if self.active:
            self.yield_point("ipi", f"cpu{cpu}:{task.name}")
        return task

    # -- the run loop --------------------------------------------------------

    def run(self, collect_errors: bool = False) -> List[object]:
        """Execute every task to completion under the schedule.

        Returns task results in spawn order.  A task exception aborts
        its task only; the first one is re-raised after the run unless
        ``collect_errors`` is true (the explorer collects).  A genuine
        cross-CPU deadlock (every queue blocked) is recorded through
        the official oops path and raised as
        :class:`~repro.errors.KernelDeadlock`."""
        if self.active:
            raise RuntimeError("scheduler is already running")
        if not self.tasks:
            return []
        self.active = True
        self.kernel.smp = self
        mem = self.kernel.mem
        prev_note = getattr(mem, "smp_note", None)
        mem.smp_note = self._on_mem_access
        if self.detector is not None:
            for task in self.tasks:
                self.detector.begin_task(task.name)
        try:
            for task in self.tasks:
                self._start_thread(task)
            first = self._pick("start", "")
            if first is None:  # pragma: no cover - spawn guarantees one
                raise RuntimeError("no runnable task")
            self._current = first
            first.state = "running"
            self.kernel.set_current_cpu(first.cpu_id)
            first._go.set()
            if not self._done.wait(timeout=RUN_TIMEOUT_S):
                self._abort_reason = "run timeout (scheduler bug)"
                for task in self.tasks:
                    task._go.set()
                raise RuntimeError("SMP run timed out")
            for task in self.tasks:
                if task.thread is not None:
                    task.thread.join(timeout=5.0)
        finally:
            self.active = False
            self._current = None
            self.kernel.smp = None
            mem.smp_note = prev_note
            telemetry = getattr(self.kernel, "telemetry", None)
            if telemetry is not None:
                telemetry.record_smp_switches(self.switches)
        errors = [t.exc for t in self.tasks
                  if t.exc is not None
                  and not isinstance(t.exc, SmpAborted)]
        if errors and not collect_errors:
            raise errors[0]
        return [t.result for t in self.tasks]

    def errors(self) -> List[BaseException]:
        """Task exceptions from the last run (aborts excluded)."""
        return [t.exc for t in self.tasks
                if t.exc is not None
                and not isinstance(t.exc, SmpAborted)]

    # -- yield points (the hook surface) -------------------------------------

    def yield_point(self, kind: str, detail: str = "") -> None:
        """One interleaving decision.  Called from hook sites; no-op
        unless this scheduler is actively running the calling task."""
        if not self.active:
            return
        task = self._current
        if task is None or task.thread is not threading.current_thread():
            return  # hook fired outside the scheduled task (setup code)
        if self.atomic_depth > 0:
            return  # atomic RMW is a single indivisible step
        target = self.schedule.migrate_to(self._decisions + 1, self._rng)
        if target is not None and target != task.cpu_id \
                and target in self.queues:
            self._migrate(task, target)
        nxt = self._pick(kind, detail)
        if nxt is None:
            self._deadlock(f"at {kind}:{detail}")
        if nxt is not task:
            self._handoff(task, nxt)

    def wait_until(self, cond: Callable[[], bool],
                   reason: str = "") -> None:
        """Block the current task until ``cond()`` holds (spin-wait on
        the logical CPU: no virtual time passes, other CPUs run)."""
        if not self.active:
            raise RuntimeError("wait_until outside an SMP run")
        task = self._current
        if task is None or task.thread is not threading.current_thread():
            raise RuntimeError("wait_until from a non-scheduled thread")
        while not cond():
            task.state = "blocked"
            task.wake = cond
            nxt = self._pick("block", reason)
            if nxt is None:
                self._deadlock(f"waiting for {reason}")
            self._handoff(task, nxt)

    def migrate(self, cpu: int) -> None:
        """Move the current task to another CPU's run queue."""
        if not self.active or self._current is None:
            raise RuntimeError("migrate outside an SMP run")
        if cpu not in self.queues:
            raise ValueError(f"no such cpu {cpu}")
        self._migrate(self._current, cpu)
        self.yield_point("migrate", f"->cpu{cpu}")

    @property
    def current_task(self) -> Optional[SmpTask]:
        """The task executing right now (None between runs)."""
        return self._current

    def note_lock_contention(self, lock_name: str) -> None:
        """Record one contended acquire (locks.py calls this)."""
        self.lock_contentions += 1
        telemetry = getattr(self.kernel, "telemetry", None)
        if telemetry is not None:
            telemetry.record_lock_contention(
                lock_name, self.kernel.current_cpu.cpu_id)

    # -- trace ----------------------------------------------------------------

    def trace_signature(self) -> str:
        """SHA-256 over the decision trace: two runs with the same
        seed and workload must produce the same signature."""
        digest = hashlib.sha256()
        for entry in self.trace:
            digest.update(repr(entry).encode())
        return digest.hexdigest()

    def summary(self) -> Dict[str, object]:
        """JSON-ready roll-up for ``bpftool race``."""
        return {
            "schedule": self.schedule.describe(),
            "seed": self.seed,
            "tasks": len(self.tasks),
            "decisions": self._decisions,
            "switches": self.switches,
            "lock_contentions": self.lock_contentions,
            "migrations": sum(t.migrations for t in self.tasks),
            "trace_signature": self.trace_signature(),
        }

    # -- internals -------------------------------------------------------------

    def _start_thread(self, task: SmpTask) -> None:
        task.thread = threading.Thread(
            target=self._task_main, args=(task,),
            name=f"smp-{task.name}", daemon=True)
        task.thread.start()

    def _task_main(self, task: SmpTask) -> None:
        task._go.wait()
        if self._abort_reason is not None:
            task.state = "done"
            task.exc = SmpAborted(self._abort_reason)
            self._maybe_finish()
            return
        try:
            task.result = task.fn()
        except SmpAborted as exc:
            # run aborted while this task was suspended: exit quietly
            # without touching the (already final) decision trace
            task.exc = exc
            task.state = "done"
            self._maybe_finish()
            return
        except BaseException as exc:  # noqa: BLE001 - oopses included
            task.exc = exc
        task.state = "done"
        if self._abort_reason is not None:
            self._maybe_finish()
            return
        nxt = self._pick("exit", task.name)
        if nxt is None:
            if any(t.state == "blocked" for t in self.tasks):
                # last runnable task finished; the rest can never wake
                try:
                    self._deadlock("all remaining tasks blocked")
                except KernelDeadlock as exc:
                    if task.exc is None:
                        task.exc = exc
            self._done.set()
            return
        self._current = nxt
        nxt.state = "running"
        self.kernel.set_current_cpu(nxt.cpu_id)
        self.switches += 1
        if self.vm is not None:
            self.vm.restore_smp_state(nxt.vm_state)
        nxt._go.set()

    def _maybe_finish(self) -> None:
        with self._finish_lock:
            if all(t.state == "done" for t in self.tasks):
                self._done.set()

    def _runnable_cpus(self) -> List[int]:
        """CPUs whose queue head may run (blocked heads re-checked)."""
        cpus: List[int] = []
        for cpu_id in sorted(self.queues):
            queue = self.queues[cpu_id]
            while queue and queue[0].state == "done":
                queue.pop(0)
            if not queue:
                continue
            head = queue[0]
            if head.state == "blocked" and head.wake is not None \
                    and head.wake():
                head.state = "ready"
                head.wake = None
            if head.runnable:
                cpus.append(cpu_id)
        return cpus

    def _pick(self, kind: str, detail: str) -> Optional[SmpTask]:
        """One scheduling decision: choose the next queue head to run
        and log it.  Returns None when nothing is runnable."""
        runnable = self._runnable_cpus()
        if not runnable:
            return None
        self._decisions += 1
        if self._decisions > self.max_decisions \
                and kind not in ("start", "exit"):
            raise RuntimeError(
                f"interleaving decision budget exhausted "
                f"({self.max_decisions}) — livelock?")
        choice = self.schedule.choose(runnable, self._decisions, self._rng)
        if choice not in runnable:  # defensive: bad schedule
            choice = runnable[0]
        cur = self._current
        self.trace.append((self._decisions, kind, detail,
                           cur.name if cur is not None else "-",
                           cur.cpu_id if cur is not None else -1,
                           choice))
        return self.queues[choice][0]

    def _handoff(self, cur: SmpTask, nxt: SmpTask) -> None:
        """Suspend ``cur`` (the calling thread) and resume ``nxt``.

        The release order is the determinism linchpin: ``cur`` does
        nothing after setting ``nxt``'s baton except wait on its own,
        so exactly one thread is ever runnable."""
        if cur.state == "running":
            cur.state = "ready"
        self._current = nxt
        nxt.state = "running"
        self.kernel.set_current_cpu(nxt.cpu_id)
        if nxt is not cur:
            self.switches += 1
            if self.vm is not None:
                cur.vm_state = self.vm.save_smp_state()
                self.vm.restore_smp_state(nxt.vm_state)
        cur._go.clear()
        nxt._go.set()
        cur._go.wait()
        if self._abort_reason is not None:
            raise SmpAborted(self._abort_reason)

    def _migrate(self, task: SmpTask, cpu: int) -> None:
        if cpu == task.cpu_id or cpu not in self.queues:
            return
        self.queues[task.cpu_id].remove(task)
        self.queues[cpu].append(task)
        task.cpu_id = cpu
        task.migrations += 1
        if task is self._current:
            self.kernel.set_current_cpu(cpu)
        self.trace.append((self._decisions, "migrate",
                           f"{task.name}->cpu{cpu}",
                           task.name, cpu, cpu))

    def _deadlock(self, detail: str) -> None:
        """Every CPU is blocked with no wake possible: record through
        the official oops path, abort suspended tasks, and raise."""
        reason = f"SMP deadlock: {detail}"
        self._abort_reason = reason
        log = getattr(self.kernel, "log", None)
        if log is not None:
            log.record_oops(self.kernel.clock.now_ns, reason,
                            category="deadlock", source="smp")
        for task in self.tasks:
            task._go.set()
        raise KernelDeadlock(reason)

    # -- hook bridges (locks / rcu / interpreter call these) -----------------

    def _scheduled_task(self) -> Optional[SmpTask]:
        """The current task, but only from its own thread."""
        if not self.active:
            return None
        task = self._current
        if task is None or task.thread is not threading.current_thread():
            return None
        return task

    def note_lock_acquired(self, name: str) -> None:
        """Lockset bookkeeping + detector edge on a lock acquire."""
        task = self._scheduled_task()
        if task is None:
            return
        task.locks_held.append(name)
        if self.detector is not None:
            self.detector.on_acquire(task.name, name)

    def note_lock_released(self, name: str) -> None:
        """Lockset bookkeeping + detector edge on a lock release."""
        task = self._scheduled_task()
        if task is None:
            return
        if name in task.locks_held:
            task.locks_held.remove(name)
        if self.detector is not None:
            self.detector.on_release(task.name, name)

    def note_rcu_exit(self) -> None:
        """Reader left its read-side section: publish its clock to the
        RCU pseudo-lock so a later grace period orders after it."""
        task = self._scheduled_task()
        if task is None:
            return
        if self.detector is not None:
            self.detector.on_rcu_exit(task.name)

    def note_rcu_sync(self) -> None:
        """Grace period completed for the calling writer."""
        task = self._scheduled_task()
        if task is None:
            return
        if self.detector is not None:
            self.detector.on_rcu_sync(task.name)

    def atomic_scope(self) -> "_AtomicScope":
        """Context manager marking an indivisible atomic RMW: inner
        accesses are tagged atomic and are not preemption points."""
        return _AtomicScope(self)

    def _on_mem_access(self, alloc: "object", address: int, size: int,
                      write: bool) -> None:
        """KernelAddressSpace hook: every load/store lands here while
        a run is active.  Shared storage (map values, kernel objects)
        is recorded for the detector and becomes a yield point;
        private per-task storage (bpf stacks, packet frames) stays
        invisible so hot paths keep their decision counts small."""
        task = self._scheduled_task()
        if task is None:
            return
        type_name = getattr(alloc, "type_name", "")
        if type_name in PRIVATE_TYPES:
            return
        offset = address - alloc.base
        if self.detector is not None:
            self.detector.record_access(
                task.name, alloc.alloc_id, type_name, offset, size,
                write, tuple(task.locks_held), self.atomic_depth > 0)
        self.yield_point(
            "mem.access",
            f"{'w' if write else 'r'}:{type_name}+{offset}")


class _AtomicScope:
    """``with smp.atomic_scope():`` — see :meth:`SmpScheduler.atomic_scope`."""

    __slots__ = ("_smp",)

    def __init__(self, smp: SmpScheduler) -> None:
        self._smp = smp

    def __enter__(self) -> None:
        self._smp.atomic_depth += 1

    def __exit__(self, *exc: object) -> None:
        self._smp.atomic_depth -= 1


#: allocation type names that are private to one task/CPU by
#: construction — accesses to them are neither recorded nor yielded
PRIVATE_TYPES = frozenset({
    "bpf_stack",      # one per program invocation
    "xdp_frame",      # one preallocated frame per RX queue
    "xdp_ctx",        # ditto: the 32-byte SkBuff-layout context
    "skb_data",       # packet payload owned by its queue's CPU
    "safelang_pool",  # per-CPU bump allocator region
    "pt_regs",        # scratch register file per trace dispatch
    "bpf_attr",       # kcrate syscall scratch buffers
    "key",
    "val",
})
