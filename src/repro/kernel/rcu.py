"""RCU read-side critical sections and the stall detector.

The paper's termination-violation experiment (§2.2) runs an eBPF
program "for practically infinite time while holding the RCU read
lock, causing RCU stalls".  eBPF programs run under
``rcu_read_lock()``; a program that never terminates therefore blocks
grace periods and the kernel's RCU stall detector fires.

The simulation models exactly that: entering a program takes the RCU
read lock, the stall detector is a virtual-clock tick callback, and a
critical section that outlives the stall timeout produces
:class:`~repro.errors.RcuStall` reports in the kernel log (repeating,
as the real detector does) — and, like the real kernel, the detector
*reports* the stall but cannot stop the offending code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import RcuStall
from repro.kernel.ktime import NSEC_PER_SEC, VirtualClock
from repro.kernel.panic import KernelLog

#: Linux default: RCU CPU stall warnings after 21 seconds
DEFAULT_STALL_TIMEOUT_NS = 21 * NSEC_PER_SEC


@dataclass
class StallReport:
    """One RCU stall warning, as would appear in dmesg."""

    detected_at_ns: int
    section_started_at_ns: int
    holder: str

    @property
    def duration_ns(self) -> int:
        """How long the critical section had been running at detection."""
        return self.detected_at_ns - self.section_started_at_ns


class RcuSubsystem:
    """Read-side lock nesting plus the stall detector."""

    def __init__(self, clock: VirtualClock, log: KernelLog,
                 stall_timeout_ns: int = DEFAULT_STALL_TIMEOUT_NS) -> None:
        self._clock = clock
        self._log = log
        #: optional fault-injection plane (wired by the Kernel); the
        #: ``rcu.synchronize`` failpoint stretches grace periods
        self.faults: Optional[object] = None
        self.stall_timeout_ns = stall_timeout_ns
        self._nesting = 0
        self._section_start_ns: Optional[int] = None
        self._holder = "unknown"
        self._next_report_at: Optional[int] = None
        self.stall_reports: List[StallReport] = []
        #: backref to the owning kernel (wired by Kernel.__init__);
        #: only consulted for ``kernel.smp`` — one attribute test
        self.kernel: Optional[object] = None
        #: per-reader nesting under SMP: task name -> depth.  The
        #: serialized world keeps using the single global section
        #: (key ``__serial__``), so ``_nesting``/``_holder`` stay
        #: exactly what the leak-check invariants expect.
        self._readers: Dict[str, int] = {}
        #: completed grace periods (advances on every synchronize)
        self.gp_seq = 0
        clock.add_tick_callback("rcu-stall-detector", self._on_tick)

    @property
    def read_lock_held(self) -> bool:
        """True inside a read-side critical section."""
        return self._nesting > 0

    def readers_active(self) -> List[str]:
        """Reader keys currently inside read-side sections."""
        return sorted(k for k, d in self._readers.items() if d > 0)

    def _smp_task(self):
        """(scheduler, task) when called from a scheduled SMP task."""
        kernel = self.kernel
        if kernel is None or kernel.smp is None:
            return None, None
        smp = kernel.smp
        task = smp._scheduled_task()
        if task is None:
            return None, None
        return smp, task

    def read_lock(self, holder: str = "kernel") -> None:
        """Enter a read-side critical section (nests per reader)."""
        smp, task = self._smp_task()
        if smp is not None:
            smp.yield_point("rcu.enter", holder)
        key = task.name if task is not None else "__serial__"
        self._readers[key] = self._readers.get(key, 0) + 1
        if self._nesting == 0:
            self._section_start_ns = self._clock.now_ns
            self._holder = holder
            self._next_report_at = self._clock.now_ns + self.stall_timeout_ns
        self._nesting += 1

    def read_unlock(self) -> None:
        """Leave a read-side critical section."""
        if self._nesting == 0:
            raise RuntimeError("rcu_read_unlock without rcu_read_lock")
        smp, task = self._smp_task()
        key = task.name if task is not None else "__serial__"
        if self._readers.get(key, 0) == 0:
            raise RuntimeError(
                f"rcu_read_unlock by {key} which holds no read lock")
        self._readers[key] -= 1
        if self._readers[key] == 0:
            del self._readers[key]
        self._nesting -= 1
        if self._nesting == 0:
            self._section_start_ns = None
            self._next_report_at = None
        if smp is not None:
            smp.note_rcu_exit()
            smp.yield_point("rcu.exit", key)

    def synchronize(self) -> None:
        """Wait for a grace period.

        Serialized execution: faults (self-deadlock) if *any* read-side
        section is open, as before — nothing else could ever close it.
        Under an active SMP run: still a self-deadlock if the calling
        task itself holds the read lock; otherwise the grace period
        snapshots the readers currently inside their sections and
        **blocks the caller until every one of them exits** (readers
        that enter after the snapshot are irrelevant, like real RCU).
        Advances :attr:`gp_seq` on completion.
        """
        smp, task = self._smp_task()
        if smp is None:
            if self.read_lock_held:
                raise RcuStall(
                    "synchronize_rcu() called with RCU read lock held "
                    f"by {self._holder}: self-deadlock",
                    source=self._holder)
            self._check_sync_faults()
            self.gp_seq += 1
            return
        if self._readers.get(task.name, 0) > 0:
            raise RcuStall(
                "synchronize_rcu() called with RCU read lock held "
                f"by {task.name}: self-deadlock",
                source=task.name)
        smp.yield_point("rcu.sync", "enter")
        snapshot = self.readers_active()
        if snapshot:
            smp.wait_until(
                lambda: all(self._readers.get(k, 0) == 0
                            for k in snapshot),
                f"rcu.gp({','.join(snapshot)})")
        self._check_sync_faults()
        self.gp_seq += 1
        smp.note_rcu_sync()
        smp.yield_point("rcu.sync", f"gp{self.gp_seq}")

    def _check_sync_faults(self) -> None:
        faults = self.faults
        if faults is not None and faults.armed:
            # an injected delay stretches the grace period on the
            # virtual clock (applied by the plane); errno/panic make
            # no sense for a void wait and are ignored
            faults.check("rcu.synchronize")

    #: warnings emitted per clock advance before the detector resyncs
    #: (bulk fast-forwards would otherwise emit unbounded reports)
    MAX_REPORTS_PER_TICK = 8

    def _on_tick(self, now_ns: int) -> None:
        """Stall detector: fires repeatedly while a section overstays.

        Reports are stamped at their *scheduled* deadlines, so a bulk
        virtual-time jump (loop fast-forward) still produces the first
        warning at exactly the stall timeout, like a real periodic
        timer would have."""
        if self._next_report_at is None or now_ns < self._next_report_at:
            return
        assert self._section_start_ns is not None
        emitted = 0
        while self._next_report_at is not None \
                and now_ns >= self._next_report_at \
                and emitted < self.MAX_REPORTS_PER_TICK:
            report = StallReport(
                detected_at_ns=self._next_report_at,
                section_started_at_ns=self._section_start_ns,
                holder=self._holder,
            )
            self.stall_reports.append(report)
            stalled_s = report.duration_ns / NSEC_PER_SEC
            self._log.log(
                report.detected_at_ns,
                f"rcu: INFO: rcu_sched self-detected stall on CPU "
                f"({self._holder} stuck for {stalled_s:.0f}s)",
                level="err")
            self._next_report_at += self.stall_timeout_ns
            emitted += 1
        if now_ns >= self._next_report_at:
            # far behind after a huge jump: resync like a rate-limited
            # printk would
            self._next_report_at = now_ns + self.stall_timeout_ns


class RcuReadGuard:
    """Context manager for a read-side critical section."""

    def __init__(self, rcu: RcuSubsystem, holder: str = "kernel") -> None:
        self._rcu = rcu
        self._holder = holder

    def __enter__(self) -> None:
        self._rcu.read_lock(self._holder)

    def __exit__(self, *exc_info: object) -> None:
        self._rcu.read_unlock()
