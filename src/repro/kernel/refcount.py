"""Refcounted kernel objects and leak accounting.

Two bugs in the paper's Table 1 are reference-count leaks in helpers
(``bpf_get_task_stack`` and the ``sk_lookup`` family, [34, 35]); the
proposed framework prevents them with RAII wrappers (§3.2).  To make
both sides executable, the simulation gives kernel objects a real
refcount and a registry that can answer "which references did this
extension leak?" after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ResourceLeak, UseAfterFree


class RefcountedObject:
    """A kernel object with an explicit reference count.

    Mirrors ``refcount_t`` semantics: the object is created with one
    reference held by the kernel; extension code takes extra references
    via :meth:`get` and must drop them with :meth:`put`.  When the count
    reaches zero the object is released and further gets fault.
    """

    def __init__(self, name: str, type_name: str,
                 registry: "RefcountRegistry") -> None:
        self.name = name
        self.type_name = type_name
        self._registry = registry
        self._count = 1
        self._released = False

    @property
    def refcount(self) -> int:
        """Current reference count."""
        return self._count

    @property
    def released(self) -> bool:
        """True once the count dropped to zero."""
        return self._released

    def get(self, holder: str) -> None:
        """Take a reference on behalf of ``holder``."""
        if self._released:
            raise UseAfterFree(
                f"refcount get on released {self.type_name} {self.name}",
                source=holder)
        self._count += 1
        self._registry.note_get(self, holder)

    def put(self, holder: str) -> None:
        """Drop a reference on behalf of ``holder``."""
        if self._released:
            raise UseAfterFree(
                f"refcount put on released {self.type_name} {self.name}",
                source=holder)
        if self._count <= 0:
            raise ResourceLeak(
                f"refcount underflow on {self.type_name} {self.name}",
                source=holder)
        self._count -= 1
        self._registry.note_put(self, holder)
        if self._count == 0:
            self._released = True


@dataclass
class RefLedgerEntry:
    """Outstanding references one holder has on one object."""

    obj: RefcountedObject
    holder: str
    outstanding: int


class RefcountRegistry:
    """Tracks who holds references, to detect leaks per holder.

    After an extension finishes (or is killed), the framework asks
    :meth:`outstanding_for` — a non-empty answer is a reference-count
    leak of exactly the kind Table 1 reports.
    """

    def __init__(self) -> None:
        # (id(obj), holder) -> RefLedgerEntry
        self._ledger: Dict[tuple, RefLedgerEntry] = {}
        self._objects: List[RefcountedObject] = []

    def create(self, name: str, type_name: str) -> RefcountedObject:
        """Create a new refcounted object (count 1, held by the kernel)."""
        obj = RefcountedObject(name, type_name, self)
        self._objects.append(obj)
        return obj

    def note_get(self, obj: RefcountedObject, holder: str) -> None:
        """Record that ``holder`` took a reference."""
        key = (id(obj), holder)
        entry = self._ledger.get(key)
        if entry is None:
            entry = RefLedgerEntry(obj=obj, holder=holder, outstanding=0)
            self._ledger[key] = entry
        entry.outstanding += 1

    def note_put(self, obj: RefcountedObject, holder: str) -> None:
        """Record that ``holder`` dropped a reference."""
        key = (id(obj), holder)
        entry = self._ledger.get(key)
        if entry is not None:
            entry.outstanding -= 1

    def outstanding_for(self, holder: str) -> List[RefLedgerEntry]:
        """Outstanding (leaked) references held by ``holder``."""
        return [e for e in self._ledger.values()
                if e.holder == holder and e.outstanding > 0]

    def outstanding_holders(self) -> List[str]:
        """Every holder with outstanding references, sorted — leak
        checks enumerate these without knowing holder names upfront."""
        return sorted({e.holder for e in self._ledger.values()
                       if e.outstanding > 0})

    def reclaim(self, holder: str) -> int:
        """Drop every outstanding reference ``holder`` still has — the
        recovery supervisor's unwind step for refcount leaks.  Safe on
        already-released objects (the ledger is zeroed either way);
        returns how many references were dropped."""
        dropped = 0
        for entry in self.outstanding_for(holder):
            while entry.outstanding > 0:
                if entry.obj.released or entry.obj.refcount <= 0:
                    # object already gone: the ledger is stale, zero it
                    entry.outstanding = 0
                    break
                entry.obj.put(holder)
                dropped += 1
        return dropped

    def assert_no_leaks(self, holder: str) -> None:
        """Raise :class:`ResourceLeak` if ``holder`` leaked references."""
        leaks = self.outstanding_for(holder)
        if leaks:
            detail = ", ".join(
                f"{e.outstanding}x {e.obj.type_name}:{e.obj.name}"
                for e in leaks)
            raise ResourceLeak(
                f"{holder} leaked references: {detail}", source=holder)
