"""Virtual monotonic time.

All timing-sensitive behaviour in the simulation — RCU stall detection,
watchdog timers, the runtime-extrapolation experiment of §2.2 — runs on
a deterministic virtual clock advanced by executed work, never on host
wall time.  This is what lets the reproduction "run" the paper's
800-second RCU stall (and its millions-of-years extrapolation) in
milliseconds of host time.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

NSEC_PER_USEC = 1_000
NSEC_PER_MSEC = 1_000_000
NSEC_PER_SEC = 1_000_000_000


class VirtualClock:
    """A monotonic nanosecond clock advanced explicitly by the simulation.

    Subsystems may register tick callbacks which are invoked whenever
    time advances; the RCU stall detector and watchdogs hook in this
    way, so a long-running extension is interrupted *during* execution
    exactly as a timer interrupt would on real hardware.
    """

    def __init__(self) -> None:
        self._now_ns = 0
        self._tick_callbacks: List[Tuple[str, Callable[[int], None]]] = []

    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds since boot."""
        return self._now_ns

    @property
    def now_seconds(self) -> float:
        """Current virtual time in seconds since boot."""
        return self._now_ns / NSEC_PER_SEC

    def advance(self, delta_ns: int) -> None:
        """Advance time by ``delta_ns`` nanoseconds and fire tick hooks.

        Raises ``ValueError`` on negative deltas: the clock is monotonic.
        """
        if delta_ns < 0:
            raise ValueError(f"clock cannot go backwards (delta={delta_ns})")
        if delta_ns == 0:
            return
        self._now_ns += delta_ns
        if not self._tick_callbacks:
            return  # fast path: nothing is watching the clock
        now = self._now_ns
        for __, callback in self._tick_callbacks:
            callback(now)

    def add_tick_callback(self, name: str,
                          callback: Callable[[int], None]) -> None:
        """Register ``callback(now_ns)`` to run whenever time advances."""
        self._tick_callbacks.append((name, callback))

    def remove_tick_callback(self, name: str) -> None:
        """Unregister every tick callback registered under ``name``.

        Rebinds the list rather than mutating it, so a callback may
        remove itself (or others) while ``advance`` is iterating.
        """
        self._tick_callbacks = [
            (cb_name, cb) for cb_name, cb in self._tick_callbacks
            if cb_name != name
        ]

    def tick_callback_count(self, name: Optional[str] = None) -> int:
        """How many tick callbacks are registered (optionally only
        those under ``name``) — leak checks use this."""
        if name is None:
            return len(self._tick_callbacks)
        return sum(1 for cb_name, __ in self._tick_callbacks
                   if cb_name == name)

    def tick_callback_names(self) -> List[str]:
        """Registered callback names, in registration order — leak
        checks scan these for stale watchdog hooks."""
        return [name for name, __ in self._tick_callbacks]
