"""The simulated kernel address space.

Kernel memory is modeled as a set of typed allocations living at
simulated virtual addresses.  Every load and store goes through
:meth:`KernelAddressSpace.read` / :meth:`KernelAddressSpace.write`,
which detect exactly the fault classes of the paper's Table 1:

* NULL-pointer dereference (access inside the zero page),
* use-after-free (access to a freed allocation),
* out-of-bounds access (access past a live allocation's end),
* wild access (address mapped to no allocation at all).

A detected fault is reported through the fault hook (wired to the
kernel's oops path) and raised, so an unsafe helper genuinely *crashes
the simulated kernel* rather than raising a polite Python error.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import (
    MemoryFault,
    NullDereference,
    OutOfBoundsAccess,
    UseAfterFree,
)

#: base of the simulated kernel direct map (mirrors x86-64)
KERNEL_BASE = 0xFFFF_8880_0000_0000

#: accesses below this address are NULL-page dereferences
NULL_PAGE_SIZE = 4096

#: allocation granularity
ALLOC_ALIGN = 16


@dataclass
class Allocation:
    """One live (or freed) kernel allocation."""

    alloc_id: int
    base: int
    size: int
    type_name: str
    owner: str
    data: bytearray = field(repr=False, default_factory=bytearray)
    freed: bool = False

    @property
    def end(self) -> int:
        """One past the last valid byte."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """True if ``address`` falls inside this allocation's range."""
        return self.base <= address < self.end


class KernelAddressSpace:
    """Allocator plus checked load/store for simulated kernel memory."""

    def __init__(self) -> None:
        self._next_base = KERNEL_BASE
        self._next_id = 1
        self._by_base: List[int] = []          # sorted bases, live + freed
        self._allocations: Dict[int, Allocation] = {}  # base -> Allocation
        self._live_bytes = 0
        #: called with the fault exception before it is raised; the
        #: kernel wires this to its oops path
        self.fault_hook: Optional[Callable[[MemoryFault], None]] = None
        #: optional access policy called on every valid access with
        #: (alloc, address, size, source, write); raising from it
        #: blocks the access — models protection-key checks (§4)
        self.access_policy: Optional[Callable] = None
        #: optional SMP observer called with (alloc, address, size,
        #: write) after a valid access resolves — the deterministic
        #: scheduler turns shared-storage accesses into yield points
        #: and feeds the race detector through it (one attribute test
        #: while no SMP run is active)
        self.smp_note: Optional[Callable] = None

    # -- allocation ---------------------------------------------------------

    def kmalloc(self, size: int, type_name: str = "void",
                owner: str = "kernel") -> Allocation:
        """Allocate ``size`` bytes of zeroed kernel memory."""
        if size <= 0:
            raise ValueError(f"kmalloc size must be positive, got {size}")
        base = self._next_base
        aligned = (size + ALLOC_ALIGN - 1) & ~(ALLOC_ALIGN - 1)
        self._next_base += aligned + ALLOC_ALIGN  # red zone between objects
        alloc = Allocation(
            alloc_id=self._next_id,
            base=base,
            size=size,
            type_name=type_name,
            owner=owner,
            data=bytearray(size),
        )
        self._next_id += 1
        bisect.insort(self._by_base, base)
        self._allocations[base] = alloc
        self._live_bytes += size
        return alloc

    def kfree(self, alloc: Allocation) -> None:
        """Free an allocation.  Double-free faults."""
        if alloc.freed:
            self._fault(UseAfterFree(
                f"double free of {alloc.type_name} at {alloc.base:#x}",
                address=alloc.base, source=alloc.owner))
        alloc.freed = True
        self._live_bytes -= alloc.size
        # The range stays known so later accesses report use-after-free
        # instead of a wild access (KASAN-style quarantine).

    @property
    def live_bytes(self) -> int:
        """Bytes currently allocated and not freed."""
        return self._live_bytes

    def live_allocations(self, owner: Optional[str] = None) -> List[Allocation]:
        """All live allocations, optionally filtered by owner tag."""
        allocs = (a for a in self._allocations.values() if not a.freed)
        if owner is not None:
            allocs = (a for a in allocs if a.owner == owner)
        return sorted(allocs, key=lambda a: a.base)

    # -- checked access -----------------------------------------------------

    def read(self, address: int, size: int, *,
             source: str = "kernel") -> bytes:
        """Checked load of ``size`` bytes; faults on any invalid access."""
        if size == 0:
            return b""
        alloc = self._resolve(address, size, source)
        if self.access_policy is not None:
            self.access_policy(alloc, address, size, source, False)
        if self.smp_note is not None:
            self.smp_note(alloc, address, size, False)
        offset = address - alloc.base
        return bytes(alloc.data[offset:offset + size])

    def write(self, address: int, data: bytes, *,
              source: str = "kernel") -> None:
        """Checked store; faults on any invalid access."""
        if not data:
            return
        alloc = self._resolve(address, len(data), source)
        if self.access_policy is not None:
            self.access_policy(alloc, address, len(data), source, True)
        if self.smp_note is not None:
            self.smp_note(alloc, address, len(data), True)
        offset = address - alloc.base
        alloc.data[offset:offset + len(data)] = data

    def read_u64(self, address: int, *, source: str = "kernel") -> int:
        """Checked 8-byte little-endian load."""
        return int.from_bytes(self.read(address, 8, source=source), "little")

    def write_u64(self, address: int, value: int, *,
                  source: str = "kernel") -> None:
        """Checked 8-byte little-endian store."""
        self.write(address, (value & (2**64 - 1)).to_bytes(8, "little"),
                   source=source)

    # -- non-faulting access (exception-table style, like probe_read) --------

    def valid_range(self, address: int, size: int) -> bool:
        """True when [address, address+size) is fully inside one live
        allocation — the check ``copy_from_kernel_nofault`` relies on."""
        if size <= 0 or address < NULL_PAGE_SIZE:
            return False
        alloc = self.find_allocation(address)
        return (alloc is not None and not alloc.freed
                and address + size <= alloc.end)

    def try_read(self, address: int, size: int) -> Optional[bytes]:
        """Read without faulting; None when the range is invalid."""
        if not self.valid_range(address, size):
            return None
        alloc = self.find_allocation(address)
        assert alloc is not None
        offset = address - alloc.base
        return bytes(alloc.data[offset:offset + size])

    def try_write(self, address: int, data: bytes) -> bool:
        """Write without faulting; False when the range is invalid."""
        if not self.valid_range(address, len(data)):
            return False
        alloc = self.find_allocation(address)
        assert alloc is not None
        offset = address - alloc.base
        alloc.data[offset:offset + len(data)] = data
        return True

    def find_allocation(self, address: int) -> Optional[Allocation]:
        """The allocation whose range covers ``address``, if any
        (freed allocations included)."""
        idx = bisect.bisect_right(self._by_base, address) - 1
        if idx < 0:
            return None
        alloc = self._allocations[self._by_base[idx]]
        return alloc if alloc.contains(address) else None

    # -- internals ----------------------------------------------------------

    def _resolve(self, address: int, size: int, source: str) -> Allocation:
        """Map an access to its allocation or fault."""
        if size <= 0:
            raise ValueError(f"access size must be positive, got {size}")
        if 0 <= address < NULL_PAGE_SIZE:
            self._fault(NullDereference(
                f"NULL pointer dereference at {address:#x}",
                address=address, source=source))
        alloc = self.find_allocation(address)
        if alloc is None:
            self._fault(MemoryFault(
                f"wild kernel access at unmapped address {address:#x}",
                address=address, source=source))
            raise AssertionError("unreachable")  # pragma: no cover
        if alloc.freed:
            self._fault(UseAfterFree(
                f"use-after-free of {alloc.type_name} at {address:#x}",
                address=address, source=source))
        if address + size > alloc.end:
            self._fault(OutOfBoundsAccess(
                f"out-of-bounds access of {alloc.type_name}: "
                f"[{address:#x}, +{size}) beyond {alloc.end:#x}",
                address=address, source=source))
        return alloc

    def _fault(self, fault: MemoryFault) -> None:
        """Report a fault through the hook, then raise it."""
        if self.fault_hook is not None:
            self.fault_hook(fault)
        raise fault
