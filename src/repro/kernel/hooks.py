"""Kernel attachment points: where extensions actually hook in.

The examples drive programs by hand; this module models the kernel's
own dispatch: named hooks (XDP ingress, a tracepoint) with an ordered
chain of attached extensions.  Any callable with the signature
``(kernel, event_object) -> int`` can attach, so eBPF programs and
SafeLang extensions compose on the same hook — which is how real
deployments look during a migration between the two frameworks.

For packet hooks the chain short-circuits on DROP (verdict 1), like
XDP's multi-program attachment; trace hooks run every attachment and
collect return values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

XDP_DROP = 1
XDP_PASS = 2

HookFn = Callable[[object], int]


@dataclass
class Attachment:
    """One extension attached to a hook."""

    name: str
    run: HookFn
    priority: int = 0


class HookManager:
    """Named dispatch points over one kernel."""

    def __init__(self, kernel: "object") -> None:
        self.kernel = kernel
        self._hooks: Dict[str, List[Attachment]] = {}
        self.dispatched: Dict[str, int] = {}

    def attach(self, hook: str, name: str, run: HookFn,
               priority: int = 0) -> Attachment:
        """Attach ``run`` to ``hook``; lower priority runs first."""
        attachment = Attachment(name=name, run=run, priority=priority)
        chain = self._hooks.setdefault(hook, [])
        chain.append(attachment)
        chain.sort(key=lambda a: a.priority)
        self.kernel.log.log(
            self.kernel.clock.now_ns,
            f"hook: attached {name} to {hook} "
            f"(chain length {len(chain)})")
        return attachment

    def detach(self, hook: str, name: str) -> bool:
        """Remove an attachment by name."""
        chain = self._hooks.get(hook, [])
        for index, attachment in enumerate(chain):
            if attachment.name == name:
                del chain[index]
                return True
        return False

    def detach_everywhere(self, name: str) -> int:
        """Remove ``name`` from every hook chain (quarantine's
        auto-detach); returns how many attachments were removed."""
        removed = 0
        for hook, chain in self._hooks.items():
            before = len(chain)
            chain[:] = [a for a in chain if a.name != name]
            if len(chain) != before:
                removed += before - len(chain)
                self.kernel.log.log(
                    self.kernel.clock.now_ns,
                    f"hook: detached {name} from {hook} (quarantine)")
        return removed

    def chain(self, hook: str) -> List[Attachment]:
        """Current attachment order for a hook."""
        return list(self._hooks.get(hook, []))

    def deliver_packet(self, payload: bytes,
                       hook: str = "xdp") -> Tuple[int, List[str]]:
        """Run a packet through the hook chain.

        Returns the final verdict and the names that saw the packet;
        the chain stops at the first DROP (the packet is gone)."""
        self.dispatched[hook] = self.dispatched.get(hook, 0) + 1
        skb = self.kernel.create_skb(payload)
        saw: List[str] = []
        for attachment in self._hooks.get(hook, []):
            saw.append(attachment.name)
            verdict = attachment.run(skb)
            if verdict == XDP_DROP:
                return XDP_DROP, saw
        return XDP_PASS, saw

    def fire_trace(self, hook: str = "trace") -> List[Tuple[str, int]]:
        """Fire a tracing hook; every attachment runs."""
        self.dispatched[hook] = self.dispatched.get(hook, 0) + 1
        results = []
        for attachment in self._hooks.get(hook, []):
            results.append((attachment.name, attachment.run(None)))
        return results
