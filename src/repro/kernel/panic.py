"""Kernel log, oops and panic machinery.

The paper's §2.2 experiment ends in a kernel crash; the simulation must
make "the kernel crashed" a first-class, observable outcome.  An oops
is recorded in the kernel log and raised as :class:`~repro.errors.KernelOops`
(or a subclass); once the kernel has oopsed it is *tainted* and refuses
further work, which is how experiments distinguish "extension was
contained" from "kernel compromised".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import KernelOops


@dataclass
class LogRecord:
    """One line of kernel log output."""

    timestamp_ns: int
    level: str
    message: str

    def render(self) -> str:
        """Format like a dmesg line: ``[    1.234567] message``."""
        seconds = self.timestamp_ns / 1_000_000_000
        return f"[{seconds:12.6f}] {self.message}"


@dataclass
class OopsRecord:
    """A recorded kernel oops with attribution."""

    timestamp_ns: int
    reason: str
    category: str
    source: str


class KernelLog:
    """An append-only kernel message buffer plus oops bookkeeping."""

    def __init__(self) -> None:
        self.records: List[LogRecord] = []
        self.oopses: List[OopsRecord] = []
        self._tainted = False
        #: invoked with each :class:`OopsRecord` as it is recorded;
        #: the kernel wires this into the telemetry hub
        self.on_oops: Optional[Callable[[OopsRecord], None]] = None

    @property
    def tainted(self) -> bool:
        """True once any oops has been recorded."""
        return self._tainted

    def log(self, timestamp_ns: int, message: str,
            level: str = "info") -> None:
        """Append a log record."""
        self.records.append(LogRecord(timestamp_ns, level, message))

    def record_oops(self, timestamp_ns: int, reason: str, *,
                    category: str, source: str) -> None:
        """Record an oops and taint the kernel."""
        self._tainted = True
        oops = OopsRecord(timestamp_ns, reason, category, source)
        self.oopses.append(oops)
        if self.on_oops is not None:
            self.on_oops(oops)
        self.log(timestamp_ns,
                 f"BUG: {category}: {reason} (source: {source})",
                 level="emerg")
        self.log(timestamp_ns, "---[ end trace ]---", level="emerg")

    def grep(self, needle: str) -> List[LogRecord]:
        """Return every log record containing ``needle``."""
        return [r for r in self.records if needle in r.message]

    def dmesg(self) -> str:
        """Render the whole log as text."""
        return "\n".join(r.render() for r in self.records)

    def last_oops(self) -> Optional[OopsRecord]:
        """The most recent oops, or ``None`` if the kernel is healthy."""
        return self.oopses[-1] if self.oopses else None
