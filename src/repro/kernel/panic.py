"""Kernel log, oops and panic machinery.

The paper's §2.2 experiment ends in a kernel crash; the simulation must
make "the kernel crashed" a first-class, observable outcome.  An oops
is recorded in the kernel log and raised as :class:`~repro.errors.KernelOops`
(or a subclass); once the kernel has oopsed it is *tainted* and refuses
further work, which is how experiments distinguish "extension was
contained" from "kernel compromised".

Taint is *scoped*, not global: an oops attributed to one extension can
be marked **contained** after the recovery supervisor has unwound that
extension's fault domain, which clears the taint it caused — with a
full audit trail in the log.  A kernel is tainted while any
*uncontained* oops exists, and permanently once it has **panicked**
(the hard, unrecoverable state the supervisor escalates to when
containment itself fails or the oops budget is exhausted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Union


@dataclass
class LogRecord:
    """One line of kernel log output."""

    timestamp_ns: int
    level: str
    message: str

    def render(self) -> str:
        """Format like a dmesg line: ``[    1.234567] message``."""
        seconds = self.timestamp_ns / 1_000_000_000
        return f"[{seconds:12.6f}] {self.message}"


@dataclass
class OopsRecord:
    """A recorded kernel oops with attribution."""

    timestamp_ns: int
    reason: str
    category: str
    source: str
    #: set by the recovery supervisor once this oops's fault domain was
    #: unwound and verified; a contained oops no longer taints
    contained: bool = False
    #: why containment was granted (audit trail)
    contained_reason: str = ""


class KernelLog:
    """An append-only kernel message buffer plus oops bookkeeping."""

    def __init__(self) -> None:
        self.records: List[LogRecord] = []
        self.oopses: List[OopsRecord] = []
        self._tainted = False
        self._panicked = False
        self.panic_reason: Optional[str] = None
        #: invoked with each :class:`OopsRecord` as it is recorded;
        #: the kernel wires this into the telemetry hub
        self.on_oops: Optional[Callable[[OopsRecord], None]] = None

    @property
    def tainted(self) -> bool:
        """True while any *uncontained* oops exists, and permanently
        after a panic."""
        return self._tainted

    @property
    def panicked(self) -> bool:
        """True once the kernel went down hard (no recovery)."""
        return self._panicked

    def log(self, timestamp_ns: int, message: str,
            level: str = "info") -> None:
        """Append a log record."""
        self.records.append(LogRecord(timestamp_ns, level, message))

    def record_oops(self, timestamp_ns: int, reason: str, *,
                    category: str, source: str) -> None:
        """Record an oops and taint the kernel."""
        self._tainted = True
        oops = OopsRecord(timestamp_ns, reason, category, source)
        self.oopses.append(oops)
        if self.on_oops is not None:
            self.on_oops(oops)
        self.log(timestamp_ns,
                 f"BUG: {category}: {reason} (source: {source})",
                 level="emerg")
        self.log(timestamp_ns, "---[ end trace ]---", level="emerg")

    def panic(self, timestamp_ns: int, reason: str, *,
              source: str = "kernel") -> None:
        """The hard stop: no containment, no recovery, taint forever."""
        self._panicked = True
        self._tainted = True
        self.panic_reason = reason
        self.log(timestamp_ns,
                 f"Kernel panic - not syncing: {reason} "
                 f"(source: {source})", level="emerg")

    # -- scoped taint / containment -----------------------------------------

    def uncontained_oopses(self) -> List[OopsRecord]:
        """Oopses whose fault domains were never unwound."""
        return [o for o in self.oopses if not o.contained]

    @property
    def contained_count(self) -> int:
        """How many oopses have been contained so far (budget input)."""
        return sum(1 for o in self.oopses if o.contained)

    def mark_contained(self, sources: Union[str, Iterable[str]],
                       timestamp_ns: int, reason: str) -> int:
        """Mark every uncontained oops attributed to ``sources`` as
        contained, clearing the taint they caused.  Each containment is
        logged (the audit trail); the kernel stays tainted if oopses
        from *other* sources remain, or if it has panicked.  Returns
        how many oopses were marked."""
        if isinstance(sources, str):
            sources = {sources}
        else:
            sources = set(sources)
        marked = 0
        for oops in self.oopses:
            if oops.contained or oops.source not in sources:
                continue
            oops.contained = True
            oops.contained_reason = reason
            marked += 1
            self.log(timestamp_ns,
                     f"recovery: contained oops ({oops.category}: "
                     f"{oops.reason}) [{oops.source}]: {reason}",
                     level="warn")
        if marked:
            self._tainted = self._panicked or \
                bool(self.uncontained_oopses())
        return marked

    def grep(self, needle: str) -> List[LogRecord]:
        """Return every log record containing ``needle``."""
        return [r for r in self.records if needle in r.message]

    def dmesg(self) -> str:
        """Render the whole log as text."""
        return "\n".join(r.render() for r in self.records)

    def last_oops(self) -> Optional[OopsRecord]:
        """The most recent oops, or ``None`` if the kernel never
        oopsed."""
        return self.oopses[-1] if self.oopses else None
