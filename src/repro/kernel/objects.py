"""Kernel object models: tasks, sockets, socket buffers.

These are the objects the paper's helpers touch: ``task_struct``
(``bpf_get_current_pid_tgid``, ``bpf_get_task_stack``,
``bpf_task_storage_get``), sockets and request sockets
(``bpf_sk_lookup_tcp`` and its leak bug [35]), and ``sk_buff`` (the
context of socket filters / XDP).

Each object is backed by a real allocation in the simulated address
space, with a declared field layout, so extension bytecode can reach
them through raw addresses — and fault exactly where real code would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.kernel.memory import Allocation, KernelAddressSpace
from repro.kernel.refcount import RefcountedObject, RefcountRegistry


@dataclass(frozen=True)
class Field:
    """One field in a kernel object layout."""

    offset: int
    size: int


class KernelObject:
    """Base class: a typed, memory-backed kernel object."""

    #: subclasses declare their layout here
    LAYOUT: Dict[str, Field] = {}
    #: total object size in bytes
    SIZE = 0
    TYPE_NAME = "object"

    def __init__(self, mem: KernelAddressSpace, owner: str = "kernel") -> None:
        self._mem = mem
        self.alloc: Allocation = mem.kmalloc(
            self.SIZE, type_name=self.TYPE_NAME, owner=owner)

    @property
    def address(self) -> int:
        """Kernel virtual address of the object."""
        return self.alloc.base

    def field_address(self, name: str) -> int:
        """Address of a named field."""
        return self.alloc.base + self.LAYOUT[name].offset

    def read_field(self, name: str) -> int:
        """Load a field as an unsigned little-endian integer."""
        fld = self.LAYOUT[name]
        raw = self._mem.read(self.alloc.base + fld.offset, fld.size)
        return int.from_bytes(raw, "little")

    def write_field(self, name: str, value: int) -> None:
        """Store an unsigned integer into a field."""
        fld = self.LAYOUT[name]
        data = (value & ((1 << (fld.size * 8)) - 1)).to_bytes(
            fld.size, "little")
        self._mem.write(self.alloc.base + fld.offset, data)

    def free(self) -> None:
        """Release the backing allocation."""
        self._mem.kfree(self.alloc)


class TaskStruct(KernelObject):
    """A process/thread, with the fields helpers actually read."""

    LAYOUT = {
        "pid": Field(0, 4),
        "tgid": Field(4, 4),
        "flags": Field(8, 4),
        "stack_ptr": Field(16, 8),
        "comm": Field(24, 16),
    }
    SIZE = 64
    TYPE_NAME = "task_struct"

    def __init__(self, mem: KernelAddressSpace, refs: RefcountRegistry,
                 pid: int, tgid: Optional[int] = None,
                 comm: str = "task") -> None:
        super().__init__(mem)
        self.pid = pid
        self.tgid = tgid if tgid is not None else pid
        self.comm = comm
        self.write_field("pid", pid)
        self.write_field("tgid", self.tgid)
        self.refs = refs.create(f"task:{pid}", "task_struct")
        encoded = comm.encode()[:15].ljust(16, b"\x00")
        mem.write(self.field_address("comm"), encoded)
        # a small kernel stack, target of bpf_get_task_stack
        self.kernel_stack = mem.kmalloc(
            256, type_name="kernel_stack", owner=f"task:{pid}")
        self.write_field("stack_ptr", self.kernel_stack.base)


class Sock(KernelObject):
    """A full socket (``struct sock``)."""

    LAYOUT = {
        "family": Field(0, 2),
        "state": Field(2, 2),
        "src_port": Field(4, 2),
        "dst_port": Field(6, 2),
        "src_ip": Field(8, 4),
        "dst_ip": Field(12, 4),
    }
    SIZE = 32
    TYPE_NAME = "sock"

    def __init__(self, mem: KernelAddressSpace, refs: RefcountRegistry,
                 src_ip: int = 0, src_port: int = 0,
                 dst_ip: int = 0, dst_port: int = 0) -> None:
        super().__init__(mem)
        self.write_field("family", 2)  # AF_INET
        self.write_field("src_ip", src_ip)
        self.write_field("src_port", src_port)
        self.write_field("dst_ip", dst_ip)
        self.write_field("dst_port", dst_port)
        self.refs = refs.create(
            f"sock:{src_ip:#x}:{src_port}", "sock")


class RequestSock(KernelObject):
    """A connection-request mini-socket (``struct request_sock``).

    ``bpf_sk_lookup_tcp`` can return one of these; the leak bug the
    paper cites [35] failed to drop its reference.
    """

    LAYOUT = {
        "family": Field(0, 2),
        "state": Field(2, 2),
    }
    SIZE = 16
    TYPE_NAME = "request_sock"

    def __init__(self, mem: KernelAddressSpace,
                 refs: RefcountRegistry, name: str) -> None:
        super().__init__(mem)
        self.refs = refs.create(f"reqsk:{name}", "request_sock")


class SkBuff(KernelObject):
    """A socket buffer: packet metadata plus a data area."""

    LAYOUT = {
        "len": Field(0, 4),
        "protocol": Field(4, 4),
        "data": Field(8, 8),       # pointer to packet data
        "data_end": Field(16, 8),  # pointer one past packet data
        "mark": Field(24, 4),
    }
    SIZE = 32
    TYPE_NAME = "sk_buff"

    def __init__(self, mem: KernelAddressSpace, payload: bytes,
                 protocol: int = 0x0800) -> None:
        super().__init__(mem)
        self._mem2 = mem
        self.payload_alloc = mem.kmalloc(
            max(len(payload), 1), type_name="skb_data", owner="net")
        mem.write(self.payload_alloc.base, payload)
        self.write_field("len", len(payload))
        self.write_field("protocol", protocol)
        self.write_field("data", self.payload_alloc.base)
        self.write_field("data_end", self.payload_alloc.base + len(payload))

    @property
    def data(self) -> int:
        """Address of the first payload byte."""
        return self.read_field("data")

    @property
    def data_end(self) -> int:
        """Address one past the last payload byte."""
        return self.read_field("data_end")
