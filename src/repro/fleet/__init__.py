"""Fleet control plane: signed staged rollouts with canary rollback.

The paper's §3 architecture moves safety out of the kernel and into a
trusted toolchain — but once verification happens *before* deployment,
the deployment machinery itself becomes part of the safety story: a
signed release that misbehaves in production must be caught and rolled
back by the control plane, not by an in-kernel verifier.  This package
models that control plane over hundreds of simulated kernels:

* :mod:`repro.fleet.services` — the pure core: a release registry
  that content-hashes and signs extension images
  (:class:`~repro.fleet.services.registry.ReleaseRegistry`), a
  staged-rollout planner (1% → 10% → 50% → 100% waves,
  :class:`~repro.fleet.services.planner.RolloutPlanner`), a canary
  evaluator over supervisor health states
  (:class:`~repro.fleet.services.canary.CanaryEvaluator`), a
  fleet-wide telemetry aggregator
  (:class:`~repro.fleet.services.aggregate.FleetTelemetry`) and the
  orchestrator that drives a rollout to completion or rolls it back
  (:class:`~repro.fleet.services.orchestrator.RolloutOrchestrator`).
* :mod:`repro.fleet.ports` — the boundary the services drive the
  fleet through; the orchestrator never touches a ``Kernel``.
* :mod:`repro.fleet.adapters` — the in-process simulated fleet
  (:class:`~repro.fleet.adapters.sim.SimFleet`, hundreds of
  :class:`~repro.kernel.kernel.Kernel` instances stamped from one
  :class:`~repro.kernel.spec.KernelSpec`) and the ``bpftool fleet``
  CLI adapter.
* :mod:`repro.fleet.transport` — the unreliable control channel:
  every orchestrator→node operation travels as an
  :class:`~repro.fleet.transport.RpcRequest` through
  :class:`~repro.fleet.transport.FleetTransport`, where seeded
  failpoints drop, delay, duplicate or partition it and the client
  retries with exponential backoff; nodes the channel cannot raise
  land in the ``unreachable`` census state.
* :mod:`repro.fleet.journal` — the rollout write-ahead journal
  (:class:`~repro.fleet.journal.MemoryJournal`,
  :class:`~repro.fleet.journal.FileJournal`):
  ``RolloutOrchestrator.resume()`` replays a crashed rollout's
  journaled prefix and drives the remainder live.

Determinism is the contract throughout: the same (release, seed,
fault schedule) yields a bit-identical rollout log and final health
census, pinned by a SHA-256 signature over the wave log — whether the
rollout ran straight through or crashed and resumed.
"""

from repro.fleet.ports import DeployResult, FleetPort, NODE_STATES
from repro.fleet.journal import (
    FileJournal,
    MemoryJournal,
    OrchestratorCrash,
    RolloutJournal,
)
from repro.fleet.services.aggregate import FleetTelemetry
from repro.fleet.services.canary import (
    CanaryEvaluator,
    CanaryPolicy,
    CanaryVerdict,
)
from repro.fleet.services.orchestrator import (
    ResumeDiverged,
    RolloutEntry,
    RolloutOrchestrator,
    RolloutReport,
)
from repro.fleet.services.planner import RolloutPlanner, Wave
from repro.fleet.services.registry import Release, ReleaseRegistry
from repro.fleet.transport import (
    FleetTransport,
    RetryPolicy,
    RpcOutcome,
    RpcRequest,
)
from repro.fleet.adapters.node import FleetNode
from repro.fleet.adapters.sim import SimFleet

__all__ = [
    "CanaryEvaluator",
    "CanaryPolicy",
    "CanaryVerdict",
    "DeployResult",
    "FileJournal",
    "FleetNode",
    "FleetPort",
    "FleetTelemetry",
    "FleetTransport",
    "MemoryJournal",
    "NODE_STATES",
    "OrchestratorCrash",
    "Release",
    "ReleaseRegistry",
    "ResumeDiverged",
    "RetryPolicy",
    "RolloutEntry",
    "RolloutJournal",
    "RolloutOrchestrator",
    "RolloutPlanner",
    "RolloutReport",
    "RpcOutcome",
    "RpcRequest",
    "SimFleet",
    "Wave",
]
