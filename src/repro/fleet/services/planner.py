"""Staged rollout planning: who upgrades, in which wave.

The planner turns a node list and a seed into waves sized by
cumulative fleet fractions — the classic 1% → 10% → 50% → 100%
progression.  Assignment is a seeded shuffle, so which nodes land in
the canary wave is unpredictable to the release author but exactly
reproducible from the seed — the property the determinism suite pins.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: the default cumulative wave fractions
DEFAULT_FRACTIONS: Tuple[float, ...] = (0.01, 0.10, 0.50, 1.0)


@dataclass(frozen=True)
class Wave:
    """One rollout stage: the nodes that upgrade in it."""

    #: 1-based wave number
    index: int
    #: cumulative fleet fraction this wave completes
    fraction: float
    #: the nodes newly upgraded in this wave
    node_ids: Tuple[str, ...]

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary."""
        return {"index": self.index, "fraction": self.fraction,
                "nodes": len(self.node_ids)}


class RolloutPlanner:
    """Split a fleet into waves along cumulative fractions."""

    def __init__(self,
                 fractions: Sequence[float] = DEFAULT_FRACTIONS,
                 ) -> None:
        """Validate and fix the wave fractions: strictly increasing,
        each in (0, 1], ending at 1.0 (a rollout that never reaches
        the whole fleet is a config error, not a plan)."""
        fractions = tuple(fractions)
        if not fractions or fractions[-1] != 1.0:
            raise ValueError(
                f"wave fractions must end at 1.0, got {fractions!r}")
        previous = 0.0
        for fraction in fractions:
            if not previous < fraction <= 1.0:
                raise ValueError(
                    "wave fractions must be strictly increasing "
                    f"within (0, 1], got {fractions!r}")
            previous = fraction
        self.fractions = fractions

    def plan(self, node_ids: Sequence[str], seed: int) -> List[Wave]:
        """The wave assignment for this fleet under this seed.

        Nodes are shuffled by a dedicated seeded RNG, then sliced at
        the cumulative counts ``ceil(fraction * N)``; every wave gets
        at least one new node (small fleets still canary), and the
        last wave absorbs the remainder so the plan always covers the
        fleet exactly once."""
        order = sorted(node_ids)
        if not order:
            raise ValueError("cannot plan a rollout over zero nodes")
        random.Random(f"rollout-plan:{seed}").shuffle(order)
        total = len(order)
        waves: List[Wave] = []
        done = 0
        for index, fraction in enumerate(self.fractions, start=1):
            target = min(total, max(done + 1,
                                    math.ceil(fraction * total)))
            if fraction == 1.0:
                target = total
            if target <= done:
                continue  # fleet exhausted by earlier waves
            waves.append(Wave(
                index=index, fraction=fraction,
                node_ids=tuple(order[done:target])))
            done = target
            if done == total:
                break
        return waves
