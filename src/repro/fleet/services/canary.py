"""Canary evaluation: is this wave healthy enough to continue?

The canary signal is the supervisor's health-state machine (PR 4),
observed per node through the fleet port: after a wave deploys and
soaks, every wave node is classified into the census vocabulary
(:data:`~repro.fleet.ports.NODE_STATES`) and the unhealthy fraction —
DEGRADED, QUARANTINED, deploy-failed or dead — is compared against
the policy threshold.  One failed wave halts the rollout; the
orchestrator then rolls every upgraded node back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.fleet.ports import NODE_STATES, UNHEALTHY_STATES


@dataclass(frozen=True)
class CanaryPolicy:
    """Tunables for the canary gate."""

    #: fraction of a wave's nodes allowed to be unhealthy before the
    #: wave fails (0.05 = one bad node in twenty halts the rollout)
    max_unhealthy_fraction: float = 0.05
    #: supervised invocations driven through each node per wave before
    #: the census is taken — enough for the circuit breaker to reach
    #: QUARANTINED (quarantine_threshold faults) on a bad release
    soak_runs: int = 4
    #: fraction of a wave's nodes the control channel may fail to
    #: raise before the wave fails anyway — a wave the orchestrator
    #: cannot *see* must not be certified on the health of the nodes
    #: it can (the unreachable budget)
    max_unreachable_fraction: float = 0.10


@dataclass(frozen=True)
class CanaryVerdict:
    """The census and pass/fail decision for one wave."""

    #: which wave was judged
    wave_index: int
    #: ``(state, count)`` pairs in :data:`NODE_STATES` order,
    #: zero-count states included — a fixed-shape census row
    census: Tuple[Tuple[str, int], ...]
    #: nodes counted unhealthy (see :data:`UNHEALTHY_STATES`)
    unhealthy: int
    #: wave size
    total: int
    #: whether the rollout may continue
    passed: bool
    #: nodes the control channel could not raise (their census state
    #: is ``unreachable``); judged against the separate unreachable
    #: budget
    unreachable: int = 0

    @property
    def unhealthy_fraction(self) -> float:
        """Unhealthy nodes over wave size (0.0 for an empty wave)."""
        return self.unhealthy / self.total if self.total else 0.0

    @property
    def unreachable_fraction(self) -> float:
        """Unreachable nodes over wave size (0.0 for an empty wave)."""
        return self.unreachable / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form for the rollout log and telemetry export."""
        return {
            "wave": self.wave_index,
            "census": dict(self.census),
            "unhealthy": self.unhealthy,
            "unreachable": self.unreachable,
            "total": self.total,
            "unhealthy_fraction": round(self.unhealthy_fraction, 6),
            "unreachable_fraction":
                round(self.unreachable_fraction, 6),
            "passed": self.passed,
        }


class CanaryEvaluator:
    """Turn a wave's node states into a :class:`CanaryVerdict`."""

    def __init__(self, policy: Optional[CanaryPolicy] = None) -> None:
        """Create an evaluator with ``policy`` (defaults apply)."""
        self.policy = policy or CanaryPolicy()

    def evaluate(self, wave_index: int,
                 states: Mapping[str, str]) -> CanaryVerdict:
        """Judge one wave from its per-node census states.  Unknown
        state strings are refused loudly — a silent miscount here
        would green-light a bad release."""
        counts = {state: 0 for state in NODE_STATES}
        for node_id, state in states.items():
            if state not in counts:
                raise ValueError(
                    f"node {node_id} reported unknown health state "
                    f"{state!r}; expected one of {NODE_STATES}")
            counts[state] += 1
        unhealthy = sum(counts[state] for state in UNHEALTHY_STATES)
        unreachable = counts["unreachable"]
        total = len(states)
        passed = (total == 0
                  or (unhealthy / total
                      <= self.policy.max_unhealthy_fraction
                      and unreachable / total
                      <= self.policy.max_unreachable_fraction))
        return CanaryVerdict(
            wave_index=wave_index,
            census=tuple((state, counts[state])
                         for state in NODE_STATES),
            unhealthy=unhealthy, total=total, passed=passed,
            unreachable=unreachable)
