"""Fleet-wide telemetry: one dashboardable export for N kernels.

Each simulated kernel already exports its own metrics (PR 2); a fleet
needs the roll-up.  :class:`FleetTelemetry` subscribes to every node's
kernel event stream through the fleet port — oopses, health
transitions, loads, soft resets — and folds the orchestrator's wave
verdicts and rollout outcomes into one
:class:`~repro.telemetry.metrics.MetricsRegistry`, exported as a JSON
snapshot or a Prometheus scrape body (the same exposition format as
the per-kernel exporter, rendered by the shared
:func:`~repro.telemetry.export.registry_to_prometheus`).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.telemetry.export import registry_to_prometheus
from repro.telemetry.metrics import MetricsRegistry


class FleetTelemetry:
    """The fleet's observability hub (pure service: it only ever sees
    the port and event objects, never a kernel)."""

    def __init__(self) -> None:
        """Create an empty aggregator and its metric families."""
        self.registry = MetricsRegistry()
        self._events = self.registry.counter(
            "repro_fleet_events_total",
            "kernel events observed fleet-wide, by kind",
            ("kind",))
        self._health_transitions = self.registry.counter(
            "repro_fleet_health_transitions_total",
            "supervisor health transitions observed fleet-wide",
            ("to",))
        self._wave_nodes = self.registry.counter(
            "repro_fleet_wave_nodes_total",
            "per-wave canary census, by rollout wave and state",
            ("release", "wave", "state"))
        self._rollouts = self.registry.counter(
            "repro_fleet_rollouts_total",
            "finished rollouts by outcome",
            ("outcome",))
        self._rollbacks = self.registry.counter(
            "repro_fleet_rollbacks_total",
            "nodes rolled back to a prior release")
        self._rpc_retries = self.registry.counter(
            "repro_fleet_rpc_retries_total",
            "control-channel delivery retries across rollouts")
        self._rpc_unreachable = self.registry.counter(
            "repro_fleet_rpc_unreachable_total",
            "logical RPCs that exhausted their retry budget")
        self._resumes = self.registry.counter(
            "repro_fleet_rollout_resumes_total",
            "rollouts resumed from a write-ahead journal")
        self._fleet_size = self.registry.gauge(
            "repro_fleet_nodes", "nodes under observation")
        #: per-wave census dicts, in rollout order (the JSON export's
        #: ``waves`` section)
        self.waves: List[Dict[str, object]] = []
        #: finished rollout summaries, in order
        self.rollouts: List[Dict[str, object]] = []
        self._subscriptions: List[object] = []

    # -- event-stream side ----------------------------------------------------

    def observe(self, fleet: object) -> int:
        """Subscribe to every node's event stream via the port;
        returns how many nodes are now observed.  Safe to call once
        per fleet — double observation would double-count."""
        node_ids = fleet.node_ids()
        for node_id in node_ids:
            self._subscriptions.append(
                fleet.subscribe(node_id, self._on_event))
        self._fleet_size.labels().set(len(node_ids))
        return len(node_ids)

    def _on_event(self, event: object) -> None:
        """Fold one kernel event into the fleet counters."""
        self._events.labels(event.kind).inc()
        if event.kind == "health":
            self._health_transitions.labels(event.get("new")).inc()

    # -- orchestrator side ----------------------------------------------------

    def record_wave(self, release_id: str, verdict: object) -> None:
        """Fold one wave's canary verdict into the export."""
        for state, count in verdict.census:
            if count:
                self._wave_nodes.labels(
                    release_id, str(verdict.wave_index), state) \
                    .inc(count)
        row = verdict.as_dict()
        row["release"] = release_id
        self.waves.append(row)

    def record_rollback(self, count: int = 1) -> None:
        """Count nodes restored to their prior release."""
        self._rollbacks.labels().inc(count)

    def record_rollout(self, report: object) -> None:
        """Fold a finished rollout's outcome into the export."""
        self._rollouts.labels(report.outcome).inc()
        self.rollouts.append(report.summary())

    def record_transport(self, retries: int,
                         unreachable: int) -> None:
        """Fold one rollout's control-channel accounting in."""
        if retries:
            self._rpc_retries.labels().inc(retries)
        if unreachable:
            self._rpc_unreachable.labels().inc(unreachable)

    def record_resume(self) -> None:
        """Count one journal resume of an unfinished rollout."""
        self._resumes.labels().inc()

    # -- exports ---------------------------------------------------------------

    def event_counts(self) -> Dict[str, int]:
        """Fleet-wide event totals by kind (stable order)."""
        family = self.registry.get("repro_fleet_events_total")
        return {labels[0]: inst.value
                for labels, inst in sorted(family.samples())}

    def snapshot(self) -> Dict[str, object]:
        """The aggregator's full state as a JSON-able dict."""
        return {
            "events": self.event_counts(),
            "waves": list(self.waves),
            "rollouts": list(self.rollouts),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as a JSON document (sorted keys: the export
        itself is part of the determinism contract)."""
        return json.dumps(self.snapshot(), indent=indent,
                          sort_keys=True) + "\n"

    def to_prometheus(self) -> str:
        """The fleet registry as a Prometheus scrape body."""
        return registry_to_prometheus(self.registry)
