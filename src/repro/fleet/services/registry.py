"""Signed release images: the fleet's unit of deployment.

§3.1's trusted toolchain signs an extension once; every kernel then
checks the signature instead of re-verifying the program.  A
:class:`Release` is that signed artifact at fleet scale: a named,
versioned bytecode image whose content hash (the same per-instruction
serialization the load cache keys on —
:func:`repro.ebpf.progcache.insns_digest`) is bound to its name and
version and HMAC-signed by the registry's
:class:`~repro.core.signing.SigningKey`.  Nodes hold the public half
(here: the same deterministic key) and refuse anything that does not
verify — a tampered image or a signature lifted from another version
both fail closed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.signing import SigningKey
from repro.ebpf.progcache import insns_digest


@dataclass(frozen=True)
class Release:
    """One immutable, signed extension release."""

    #: extension name (the program tag on every node is ``bpf:name``,
    #: stable across versions so the supervisor's history follows the
    #: extension, not the image)
    name: str
    #: version string; ``name@version`` identifies the release
    version: str
    #: program type value (e.g. ``"xdp"``)
    prog_type: object
    #: the bytecode image
    insns: Tuple[object, ...]
    #: SHA-256 over the instruction fields (see
    #: :func:`~repro.ebpf.progcache.insns_digest`)
    content_hash: str
    #: id of the key that signed this release
    key_id: str
    #: HMAC-SHA256 over :meth:`image_bytes`
    signature: str

    @property
    def release_id(self) -> str:
        """The canonical ``name@version`` identifier."""
        return f"{self.name}@{self.version}"

    def image_bytes(self) -> bytes:
        """The canonical signed image: name, version and content hash
        — binding the signature to *this* version of *this* extension,
        not just to the bytes."""
        return (f"{self.name}@{self.version}:"
                f"{getattr(self.prog_type, 'value', self.prog_type)}:"
                f"{self.content_hash}").encode()

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary (no bytecode)."""
        return {
            "release_id": self.release_id,
            "prog_type": getattr(self.prog_type, "value",
                                 self.prog_type),
            "insns": len(self.insns),
            "content_hash": self.content_hash,
            "key_id": self.key_id,
            "signature": self.signature,
        }


class ReleaseRegistry:
    """The trusted toolchain's release store.

    ``publish`` hashes and signs; ``verify`` is what every node (and
    the orchestrator, before it wastes a rollout on a forgery) runs
    against the registry key.  Deterministic: the same name, version
    and bytecode always produce the same signed release.
    """

    def __init__(self, key: Optional[SigningKey] = None) -> None:
        """Create a registry; ``key`` defaults to the deterministic
        fleet toolchain key."""
        self.key = key or SigningKey.generate("fleet-toolchain")
        self._releases: Dict[str, Release] = {}

    def publish(self, name: str, version: str,
                insns: Sequence[object],
                prog_type: object) -> Release:
        """Hash, sign and store one release; returns it.  Re-publishing
        an existing ``name@version`` with different content is refused
        — releases are immutable."""
        content_hash = insns_digest(insns)
        release = Release(
            name=name, version=version, prog_type=prog_type,
            insns=tuple(insns), content_hash=content_hash,
            key_id=self.key.key_id, signature="")
        release = replace(
            release, signature=self.key.sign(release.image_bytes()))
        existing = self._releases.get(release.release_id)
        if existing is not None:
            if existing.signature != release.signature:
                raise ValueError(
                    f"release {release.release_id} already published "
                    "with different content")
            return existing
        self._releases[release.release_id] = release
        return release

    def get(self, release_id: str) -> Release:
        """Look up a release by ``name@version``; raises ``KeyError``
        with the known ids when absent."""
        release = self._releases.get(release_id)
        if release is None:
            raise KeyError(
                f"unknown release {release_id!r}; published: "
                f"{sorted(self._releases) or 'none'}")
        return release

    def verify(self, release: Release) -> bool:
        """True when the release's signature checks out against the
        registry key *and* its content hash matches its bytecode (a
        re-hashed image catches bytecode swapped under a valid
        signature)."""
        if insns_digest(release.insns) != release.content_hash:
            return False
        return self.key.verify(release.image_bytes(),
                               release.signature)

    def releases(self) -> List[Release]:
        """Every published release, in publish order."""
        return list(self._releases.values())
