"""The rollout driver: staged deploy, canary gate, auto-rollback.

One :meth:`RolloutOrchestrator.rollout` call takes a published release
through the planner's waves.  Per wave: deploy to every wave node
(signature re-checked on each node), soak the wave under supervised
dispatch, take the health census through the port, ask the canary.  A
failed verdict halts the rollout and rolls **every** upgraded node
back to its prior release — the supervisor's circuit breakers are
reset by the rollback path (``kernel.soft_reset``), so restored nodes
re-enter HEALTHY instead of inheriting the bad release's open breaker.

Everything the orchestrator decides lands in an append-only
:class:`RolloutEntry` log whose SHA-256 :meth:`RolloutReport.signature`
is a pure function of (release, seed, fault schedule) — the rollout
analogue of the supervisor's audit signature, and what the
determinism suite pins.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fleet.ports import FleetPort
from repro.fleet.services.canary import CanaryEvaluator, CanaryVerdict
from repro.fleet.services.planner import RolloutPlanner, Wave
from repro.fleet.services.registry import Release, ReleaseRegistry


@dataclass(frozen=True)
class RolloutEntry:
    """One control-plane decision, stamped with a sequence number
    (the control plane has no clock of its own — node time is node
    business)."""

    seq: int
    kind: str
    #: wave number the entry belongs to (0 = rollout-level)
    wave: int
    #: sorted ``(key, value)`` pairs
    detail: Tuple[Tuple[str, object], ...]

    def get(self, key: str, default: object = None) -> object:
        """One detail value."""
        return dict(self.detail).get(key, default)

    def render(self) -> str:
        """One log line."""
        parts = " ".join(f"{k}={v}" for k, v in self.detail)
        return (f"[{self.seq:03d}] wave={self.wave} {self.kind}"
                + (f" {parts}" if parts else ""))

    def signature_bytes(self) -> bytes:
        """Stable serialization for the rollout signature."""
        return repr((self.seq, self.kind, self.wave,
                     self.detail)).encode()


class RolloutReport:
    """Everything one rollout did: log, verdicts, final census."""

    def __init__(self, release_id: str, seed: int) -> None:
        """Start an empty report for ``release_id`` under ``seed``."""
        self.release_id = release_id
        self.seed = seed
        #: terminal state: ``completed`` (100% fleet), ``rolled-back``
        #: (canary failed, every upgraded node restored), ``halted``
        #: (operator stop, nodes left as they are), ``rejected``
        #: (signature refused before any deploy)
        self.outcome = "in-progress"
        self.entries: List[RolloutEntry] = []
        self.verdicts: List[CanaryVerdict] = []
        #: fleet-wide ``state -> count`` census taken after the
        #: rollout settled
        self.final_census: Dict[str, int] = {}
        #: nodes running the release when the rollout settled
        self.converged_nodes = 0

    def log(self, kind: str, wave: int = 0,
            **detail: object) -> RolloutEntry:
        """Append one decision to the rollout log."""
        entry = RolloutEntry(
            seq=len(self.entries), kind=kind, wave=wave,
            detail=tuple(sorted(detail.items())))
        self.entries.append(entry)
        return entry

    def signature(self) -> str:
        """SHA-256 over the log and the final census: two rollouts
        with the same signature made the same decisions about the
        same fleet."""
        digest = hashlib.sha256()
        for entry in self.entries:
            digest.update(entry.signature_bytes())
        digest.update(repr(sorted(self.final_census.items())).encode())
        return digest.hexdigest()

    def summary(self) -> Dict[str, object]:
        """The compact JSON-able roll-up (telemetry's ``rollouts``
        rows)."""
        return {
            "release": self.release_id,
            "seed": self.seed,
            "outcome": self.outcome,
            "waves": len(self.verdicts),
            "converged_nodes": self.converged_nodes,
            "final_census": dict(self.final_census),
            "signature": self.signature(),
        }

    def as_dict(self) -> Dict[str, object]:
        """The full report (CLI ``--json`` body)."""
        body = self.summary()
        body["verdicts"] = [v.as_dict() for v in self.verdicts]
        body["log"] = [e.render() for e in self.entries]
        return body

    def render(self) -> str:
        """The human-readable rollout log."""
        lines = [e.render() for e in self.entries]
        lines.append(f"outcome: {self.outcome} "
                     f"signature={self.signature()[:16]}")
        return "\n".join(lines)


class RolloutOrchestrator:
    """Drives releases through a fleet, one rollout at a time."""

    def __init__(self, fleet: FleetPort, registry: ReleaseRegistry,
                 planner: Optional[RolloutPlanner] = None,
                 canary: Optional[CanaryEvaluator] = None,
                 telemetry: Optional[object] = None) -> None:
        """Wire the services together; ``telemetry`` (a
        :class:`~repro.fleet.services.aggregate.FleetTelemetry`) is
        optional — rollouts work headless."""
        self.fleet = fleet
        self.registry = registry
        self.planner = planner or RolloutPlanner()
        self.canary = canary or CanaryEvaluator()
        self.telemetry = telemetry
        self._halt_requested = False

    def halt(self) -> None:
        """Operator stop: the rollout finishes its current wave and
        goes no further (no rollback — the operator decides next)."""
        self._halt_requested = True

    # -- the rollout ----------------------------------------------------------

    def rollout(self, release_id: str, seed: int,
                halt_after: Optional[int] = None) -> RolloutReport:
        """Deploy ``release_id`` through staged waves under ``seed``.

        ``halt_after`` stops after that wave index (the CLI's
        ``fleet halt`` demonstration).  Returns the full
        :class:`RolloutReport`; never raises for release misbehavior —
        a bad release is an *outcome*, not an exception."""
        self._halt_requested = False
        report = RolloutReport(release_id, seed)
        release = self.registry.get(release_id)
        if not self.registry.verify(release):
            report.log("rejected", release=release_id,
                       reason="signature verification failed")
            report.outcome = "rejected"
            self._finish(report)
            return report

        node_ids = self.fleet.node_ids()
        waves = self.planner.plan(node_ids, seed)
        report.log(
            "plan", release=release_id, seed=seed,
            fleet=len(node_ids), waves=len(waves),
            fractions=",".join(str(f) for f in
                               self.planner.fractions))
        upgraded: List[str] = []
        outcome = "completed"
        for wave in waves:
            if self._halt_requested:
                outcome = "halted"
                report.log("halt", wave=wave.index,
                           reason="operator", upgraded=len(upgraded))
                break
            verdict = self._run_wave(report, release, wave, upgraded)
            if not verdict.passed:
                self._roll_back(report, wave, upgraded)
                outcome = "rolled-back"
                break
            if halt_after is not None and wave.index >= halt_after:
                outcome = "halted"
                report.log("halt", wave=wave.index,
                           reason=f"halt-after-{halt_after}",
                           upgraded=len(upgraded))
                break
        report.outcome = outcome
        self._finish(report)
        return report

    def _run_wave(self, report: RolloutReport, release: Release,
                  wave: Wave, upgraded: List[str]) -> CanaryVerdict:
        """Deploy, soak and judge one wave; extends ``upgraded`` with
        the nodes that took the release."""
        report.log("wave-start", wave=wave.index,
                   fraction=wave.fraction, nodes=len(wave.node_ids))
        failures = 0
        for node_id in wave.node_ids:
            result = self.fleet.deploy(node_id, release)
            if result.ok:
                upgraded.append(node_id)
            else:
                failures += 1
                report.log("deploy-failed", wave=wave.index,
                           node=node_id, error=result.error,
                           detail=result.detail)
        for node_id in wave.node_ids:
            self.fleet.soak(node_id, self.canary.policy.soak_runs)
        states = {node_id: self.fleet.census(node_id)
                  for node_id in wave.node_ids}
        verdict = self.canary.evaluate(wave.index, states)
        report.verdicts.append(verdict)
        if self.telemetry is not None:
            self.telemetry.record_wave(release.release_id, verdict)
        report.log("canary", wave=wave.index,
                   passed=verdict.passed,
                   unhealthy=verdict.unhealthy, total=verdict.total,
                   census=";".join(f"{s}:{c}" for s, c
                                   in verdict.census if c))
        return verdict

    def _roll_back(self, report: RolloutReport, wave: Wave,
                   upgraded: List[str]) -> None:
        """Canary failure: restore every upgraded node, deploy order."""
        report.log("halt", wave=wave.index, reason="canary-failed",
                   upgraded=len(upgraded))
        restored = 0
        stuck = 0
        for node_id in upgraded:
            previous = self.fleet.rollback(node_id)
            if previous is None:
                stuck += 1
                report.log("rollback-failed", wave=wave.index,
                           node=node_id)
            else:
                restored += 1
        if self.telemetry is not None and restored:
            self.telemetry.record_rollback(restored)
        report.log("rollback", wave=wave.index,
                   restored=restored, stuck=stuck)

    def _finish(self, report: RolloutReport) -> None:
        """Take the settled fleet-wide census and close the report."""
        census: Dict[str, int] = {}
        converged = 0
        for node_id in self.fleet.node_ids():
            state = self.fleet.census(node_id)
            census[state] = census.get(state, 0) + 1
            if self.fleet.current_release(node_id) \
                    == report.release_id:
                converged += 1
        report.final_census = census
        report.converged_nodes = converged
        report.log("done", outcome=report.outcome,
                   converged=converged,
                   census=";".join(f"{s}:{c}" for s, c
                                   in sorted(census.items())))
        if self.telemetry is not None:
            self.telemetry.record_rollout(report)
