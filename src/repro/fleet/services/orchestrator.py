"""The rollout driver: staged deploy, canary gate, auto-rollback —
now over an unreliable control channel, and crash-resumable.

One :meth:`RolloutOrchestrator.rollout` call takes a published release
through the planner's waves.  Per wave: deploy to every wave node
(signature re-checked on each node), soak the deployed nodes under
supervised dispatch, take the health census, ask the canary.  A failed
verdict halts the rollout and rolls **every** upgraded node back.

Everything between the orchestrator and a node travels through the
:class:`~repro.fleet.transport.FleetTransport` envelope: requests can
be dropped, delayed, duplicated or partitioned by the fault plane, the
client retries with exponential backoff and seeded jitter, and every
logical operation carries one request id so retries and duplicates
cannot double-apply.  A node that exhausts the retry budget lands in
the ``unreachable`` census state and is judged against the wave's
unreachable budget — a wave the orchestrator cannot see does not pass
on the health of the nodes it can.

Rollouts are durable: every decision (:class:`RolloutEntry`) and every
RPC result is appended to a write-ahead
:class:`~repro.fleet.journal.RolloutJournal` before the rollout moves
on.  ``fleet.orch.crash`` kills the orchestrator at an append
boundary; :meth:`RolloutOrchestrator.resume` replays the journaled
prefix without re-touching the fleet and drives the remainder live —
same seed ⇒ a :meth:`RolloutReport.signature` bit-identical to an
uninterrupted run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fleet.journal import (
    MemoryJournal,
    OrchestratorCrash,
    RolloutJournal,
)
from repro.fleet.ports import DeployResult, FleetPort
from repro.fleet.services.canary import CanaryEvaluator, CanaryVerdict
from repro.fleet.services.planner import RolloutPlanner, Wave
from repro.fleet.services.registry import Release, ReleaseRegistry
from repro.fleet.transport import (
    FleetTransport,
    RpcOutcome,
    RpcRequest,
)


@dataclass(frozen=True)
class RolloutEntry:
    """One control-plane decision, stamped with a sequence number
    (the control plane has no clock of its own — node time is node
    business)."""

    seq: int
    kind: str
    #: wave number the entry belongs to (0 = rollout-level)
    wave: int
    #: sorted ``(key, value)`` pairs
    detail: Tuple[Tuple[str, object], ...]

    def get(self, key: str, default: object = None) -> object:
        """One detail value."""
        return dict(self.detail).get(key, default)

    def render(self) -> str:
        """One log line."""
        parts = " ".join(f"{k}={v}" for k, v in self.detail)
        return (f"[{self.seq:03d}] wave={self.wave} {self.kind}"
                + (f" {parts}" if parts else ""))

    def signature_bytes(self) -> bytes:
        """Stable serialization for the rollout signature."""
        return repr((self.seq, self.kind, self.wave,
                     self.detail)).encode()


class RolloutReport:
    """Everything one rollout did: log, verdicts, final census."""

    def __init__(self, release_id: str, seed: int) -> None:
        """Start an empty report for ``release_id`` under ``seed``."""
        self.release_id = release_id
        self.seed = seed
        #: terminal state: ``completed`` (100% fleet), ``rolled-back``
        #: (canary failed, every upgraded node restored), ``halted``
        #: (operator stop, nodes left as they are), ``rejected``
        #: (signature refused before any deploy)
        self.outcome = "in-progress"
        self.entries: List[RolloutEntry] = []
        self.verdicts: List[CanaryVerdict] = []
        #: fleet-wide ``state -> count`` census taken after the
        #: rollout settled
        self.final_census: Dict[str, int] = {}
        #: nodes running the release when the rollout settled
        self.converged_nodes = 0
        #: nodes whose rollback failed on the node itself (quarantined
        #: by the orchestrator — parked, not forgotten)
        self.stuck_nodes: List[str] = []
        #: nodes the control channel never reached again after they
        #: took the release (still listed when the rollout settles)
        self.unreachable_nodes: List[str] = []
        #: control-channel accounting for this rollout (derived from
        #: the journaled op outcomes, so it survives crash + resume)
        self.rpc_retries = 0
        self.rpc_unreachable = 0

    def log(self, kind: str, wave: int = 0,
            **detail: object) -> RolloutEntry:
        """Append one decision to the rollout log."""
        entry = RolloutEntry(
            seq=len(self.entries), kind=kind, wave=wave,
            detail=tuple(sorted(detail.items())))
        self.entries.append(entry)
        return entry

    def signature(self) -> str:
        """SHA-256 over the log and the final census: two rollouts
        with the same signature made the same decisions about the
        same fleet."""
        digest = hashlib.sha256()
        for entry in self.entries:
            digest.update(entry.signature_bytes())
        digest.update(repr(sorted(self.final_census.items())).encode())
        return digest.hexdigest()

    def summary(self) -> Dict[str, object]:
        """The compact JSON-able roll-up (telemetry's ``rollouts``
        rows)."""
        return {
            "release": self.release_id,
            "seed": self.seed,
            "outcome": self.outcome,
            "waves": len(self.verdicts),
            "converged_nodes": self.converged_nodes,
            "final_census": dict(self.final_census),
            "stuck_nodes": list(self.stuck_nodes),
            "unreachable_nodes": list(self.unreachable_nodes),
            "rpc_retries": self.rpc_retries,
            "rpc_unreachable": self.rpc_unreachable,
            "signature": self.signature(),
        }

    def as_dict(self) -> Dict[str, object]:
        """The full report (CLI ``--json`` body)."""
        body = self.summary()
        body["verdicts"] = [v.as_dict() for v in self.verdicts]
        body["log"] = [e.render() for e in self.entries]
        return body

    def render(self) -> str:
        """The human-readable rollout log."""
        lines = [e.render() for e in self.entries]
        lines.append(f"outcome: {self.outcome} "
                     f"signature={self.signature()[:16]}")
        return "\n".join(lines)


def _encode_value(value: object) -> object:
    """JSON-able form of an op's return value (journal payload)."""
    if isinstance(value, DeployResult):
        return {"__deploy_result__": value.as_dict()}
    return value


def _decode_value(value: object) -> object:
    """Inverse of :func:`_encode_value`."""
    if isinstance(value, dict) and "__deploy_result__" in value:
        body = value["__deploy_result__"]
        return DeployResult(
            node_id=body["node_id"], release_id=body["release_id"],
            ok=body["ok"], error=body["error"],
            detail=body["detail"])
    return value


class ResumeDiverged(RuntimeError):
    """Resume re-drove the rollout and produced a different decision
    than the journal recorded — the determinism contract broke."""


class RolloutOrchestrator:
    """Drives releases through a fleet, one rollout at a time."""

    def __init__(self, fleet: FleetPort, registry: ReleaseRegistry,
                 planner: Optional[RolloutPlanner] = None,
                 canary: Optional[CanaryEvaluator] = None,
                 telemetry: Optional[object] = None,
                 transport: Optional[FleetTransport] = None) -> None:
        """Wire the services together; ``telemetry`` (a
        :class:`~repro.fleet.services.aggregate.FleetTelemetry`) is
        optional — rollouts work headless.  ``transport`` defaults to
        a transparent envelope around ``fleet`` (no faults armed, one
        wire-latency tick per call)."""
        self.fleet = fleet
        self.registry = registry
        self.planner = planner or RolloutPlanner()
        self.canary = canary or CanaryEvaluator()
        self.telemetry = telemetry
        self.transport = transport or FleetTransport(fleet)
        self._halt_requested = False
        #: rollouts started through this orchestrator (scopes request
        #: ids — see :meth:`_call`)
        self._rollout_count = 0
        # replay state (inert outside an active rollout)
        self._journal: RolloutJournal = MemoryJournal()
        self._replay_entries: List[Dict[str, object]] = []
        self._replay_ops: Dict[str, Dict[str, object]] = {}
        self._replay_op_count = 0
        self._entry_cursor = 0
        self._op_seq = 0
        self._appended = 0
        self._last_entry_live = True
        self._rid = 0

    def halt(self) -> None:
        """Operator stop: the rollout finishes its current wave and
        goes no further (no rollback — the operator decides next)."""
        self._halt_requested = True

    # -- entry points ---------------------------------------------------------

    def rollout(self, release_id: str, seed: int,
                halt_after: Optional[int] = None,
                journal: Optional[RolloutJournal] = None,
                ) -> RolloutReport:
        """Deploy ``release_id`` through staged waves under ``seed``.

        ``halt_after`` stops after that wave index (the CLI's
        ``fleet halt`` demonstration).  ``journal`` receives the
        write-ahead log (defaults to an in-memory one).  Returns the
        full :class:`RolloutReport`; never raises for release *or
        channel* misbehavior — a bad release and an unreachable node
        are outcomes.  The one deliberate exception is
        :class:`~repro.fleet.journal.OrchestratorCrash` from an armed
        ``fleet.orch.crash`` failpoint: the journal stays consistent
        and :meth:`resume` picks the rollout back up."""
        self._rollout_count += 1
        self._begin(journal or MemoryJournal(),
                    entries=[], ops={}, rid=self._rollout_count)
        self._journal.append_header(release_id, seed, halt_after,
                                    rollout=self._rollout_count)
        self._crash_point()
        return self._drive(release_id, seed, halt_after)

    def resume(self, journal: RolloutJournal) -> RolloutReport:
        """Reload a rollout from its write-ahead journal and drive it
        to its terminal state.  The journaled prefix is replayed
        without touching the fleet — recorded ops return their
        recorded results, recorded entries are re-emitted — and the
        first un-journaled operation onward runs live, so the control
        channel's RNG and clock continue exactly where the dead
        orchestrator left them.  Resuming a *complete* journal is a
        pure replay: the report is rebuilt with zero fleet traffic."""
        header = journal.header()
        if header is None:
            raise ValueError("cannot resume an empty journal "
                             "(no header record)")
        was_complete = journal.complete()
        self._begin(journal, entries=journal.entries(),
                    ops=journal.ops(),
                    rid=int(header.get("rollout", 1)))
        if self.telemetry is not None and not was_complete:
            self.telemetry.record_resume()
        halt_after = header.get("halt_after")
        return self._drive(str(header["release"]),
                           int(header["seed"]),
                           None if halt_after is None
                           else int(halt_after))

    def _begin(self, journal: RolloutJournal,
               entries: List[Dict[str, object]],
               ops: Dict[str, Dict[str, object]],
               rid: int) -> None:
        """Reset per-rollout state (fresh or resumed)."""
        self._journal = journal
        self._rid = rid
        self._replay_entries = entries
        self._replay_ops = ops
        self._replay_op_count = len(ops)
        self._entry_cursor = 0
        self._op_seq = 0
        self._appended = len(journal.records())
        self._last_entry_live = not entries

    # -- journal plumbing -----------------------------------------------------

    def _crash_point(self) -> None:
        """The orchestrator-death failpoint, consulted after every
        journal append — so a crash never splits an append."""
        plane = self.transport.plane
        if plane is not None and plane.armed:
            action = plane.check("fleet.orch.crash")
            if action is not None and action.kind == "panic":
                raise OrchestratorCrash(self._appended)

    def _log(self, report: RolloutReport, kind: str, wave: int = 0,
             **detail: object) -> RolloutEntry:
        """Append one decision to the report *and* the journal — or,
        while replaying a resumed rollout's prefix, check it against
        the journaled entry instead of re-journaling it."""
        entry = report.log(kind, wave=wave, **detail)
        if self._entry_cursor < len(self._replay_entries):
            recorded = self._replay_entries[self._entry_cursor]
            self._entry_cursor += 1
            self._last_entry_live = False
            if recorded["entry_kind"] != kind \
                    or recorded["seq"] != entry.seq:
                raise ResumeDiverged(
                    f"journal has {recorded['entry_kind']!r} at seq "
                    f"{recorded['seq']}, resume produced {kind!r} at "
                    f"seq {entry.seq}")
            return entry
        self._last_entry_live = True
        self._journal.append_entry(
            entry.seq, entry.kind, entry.wave,
            [[k, v] for k, v in entry.detail])
        self._appended += 1
        self._crash_point()
        return entry

    def _call(self, method: str, node_id: str,
              *args: object) -> RpcOutcome:
        """One logical RPC through the transport, write-ahead
        journaled — or replayed from the journal on resume."""
        self._op_seq += 1
        key = f"r{self._rid:03d}:{self._op_seq:05d}:{method}:{node_id}"
        if self._op_seq <= self._replay_op_count:
            recorded = self._replay_ops.get(key)
            if recorded is None:
                raise ResumeDiverged(
                    f"resume produced op {key!r} which the journal "
                    "does not record")
            body = recorded["outcome"]
            outcome = RpcOutcome(
                request_id=key, method=method, node_id=node_id,
                ok=bool(body["ok"]),
                value=_decode_value(recorded["value"]),
                error=str(body["error"]),
                attempts=int(body["attempts"]))
        else:
            outcome = self.transport.call(RpcRequest(
                request_id=key, method=method, node_id=node_id,
                args=args))
            self._journal.append_op(key, outcome.as_dict(),
                                    _encode_value(outcome.value))
            self._appended += 1
            self._crash_point()
        return outcome

    def _pause(self, label: str) -> None:
        """A deliberate control-clock pause (between rollback
        sweeps), journaled like an op so resume does not re-advance
        replayed time."""
        self._op_seq += 1
        key = f"r{self._rid:03d}:{self._op_seq:05d}:pause:{label}"
        if self._op_seq <= self._replay_op_count:
            if key not in self._replay_ops:
                raise ResumeDiverged(
                    f"resume produced pause {key!r} which the "
                    "journal does not record")
            return
        self.transport.clock.advance(
            self.transport.policy.sweep_pause_ns)
        self._journal.append_op(
            key, {"request_id": key, "method": "pause",
                  "node_id": label, "ok": True, "error": "",
                  "attempts": 0}, None)
        self._appended += 1
        self._crash_point()

    def _account(self, report: RolloutReport,
                 outcome: RpcOutcome) -> None:
        """Fold one op outcome into the report's RPC accounting
        (identical whether the op ran live or was replayed)."""
        report.rpc_retries += max(0, outcome.attempts - 1)
        if not outcome.ok:
            report.rpc_unreachable += 1

    # -- the rollout ----------------------------------------------------------

    def _drive(self, release_id: str, seed: int,
               halt_after: Optional[int]) -> RolloutReport:
        """The rollout engine (shared by fresh runs and resumes)."""
        self._halt_requested = False
        report = RolloutReport(release_id, seed)
        release = self.registry.get(release_id)
        if not self.registry.verify(release):
            self._log(report, "rejected", release=release_id,
                      reason="signature verification failed")
            report.outcome = "rejected"
            self._finish(report)
            return report

        node_ids = self.transport.node_ids()
        waves = self.planner.plan(node_ids, seed)
        self._log(
            report, "plan", release=release_id, seed=seed,
            fleet=len(node_ids), waves=len(waves),
            fractions=",".join(str(f) for f in
                               self.planner.fractions))
        upgraded: List[str] = []
        outcome = "completed"
        for wave in waves:
            if self._halt_requested:
                outcome = "halted"
                self._log(report, "halt", wave=wave.index,
                          reason="operator", upgraded=len(upgraded))
                break
            verdict = self._run_wave(report, release, wave, upgraded)
            if not verdict.passed:
                self._roll_back(report, wave, upgraded)
                outcome = "rolled-back"
                break
            if halt_after is not None and wave.index >= halt_after:
                outcome = "halted"
                self._log(report, "halt", wave=wave.index,
                          reason=f"halt-after-{halt_after}",
                          upgraded=len(upgraded))
                break
        report.outcome = outcome
        self._finish(report)
        return report

    def _run_wave(self, report: RolloutReport, release: Release,
                  wave: Wave, upgraded: List[str]) -> CanaryVerdict:
        """Deploy, soak and judge one wave; extends ``upgraded`` with
        the nodes that took the release.

        The wave census is the *orchestrator's* accounting, not the
        nodes' self-reports: a node whose deploy failed is counted
        ``deploy-failed`` (or ``dead``) against the wave even if its
        own census looks healthy, and a node the channel cannot raise
        is counted ``unreachable`` — so a wave where half the deploys
        fail cannot pass on the health of the other half."""
        self._log(report, "wave-start", wave=wave.index,
                  fraction=wave.fraction, nodes=len(wave.node_ids))
        states: Dict[str, str] = {}
        for node_id in wave.node_ids:
            outcome = self._call("deploy", node_id, release)
            self._account(report, outcome)
            if not outcome.ok:
                states[node_id] = "unreachable"
                self._log(report, "unreachable", wave=wave.index,
                          node=node_id, op="deploy",
                          attempts=outcome.attempts)
                continue
            result = outcome.value
            if result.ok:
                upgraded.append(node_id)
            else:
                states[node_id] = ("dead" if result.error == "dead"
                                   else "deploy-failed")
                self._log(report, "deploy-failed", wave=wave.index,
                          node=node_id, error=result.error,
                          detail=result.detail)
        deployed = [n for n in wave.node_ids if n not in states]
        for node_id in deployed:
            outcome = self._call("soak", node_id,
                                 self.canary.policy.soak_runs)
            self._account(report, outcome)
            if not outcome.ok:
                states[node_id] = "unreachable"
                self._log(report, "unreachable", wave=wave.index,
                          node=node_id, op="soak",
                          attempts=outcome.attempts)
        for node_id in deployed:
            if node_id in states:
                continue
            outcome = self._call("census", node_id)
            self._account(report, outcome)
            if not outcome.ok:
                states[node_id] = "unreachable"
                self._log(report, "unreachable", wave=wave.index,
                          node=node_id, op="census",
                          attempts=outcome.attempts)
            else:
                states[node_id] = outcome.value
        verdict = self.canary.evaluate(wave.index, states)
        report.verdicts.append(verdict)
        self._log(report, "canary", wave=wave.index,
                  passed=verdict.passed,
                  unhealthy=verdict.unhealthy,
                  unreachable=verdict.unreachable,
                  total=verdict.total,
                  census=";".join(f"{s}:{c}" for s, c
                                  in verdict.census if c))
        if self.telemetry is not None and self._last_entry_live:
            self.telemetry.record_wave(release.release_id, verdict)
        return verdict

    def _roll_back(self, report: RolloutReport, wave: Wave,
                   upgraded: List[str]) -> None:
        """Canary failure: restore every upgraded node, deploy order.

        Unreachable nodes are retried in bounded convergence sweeps
        (partitions heal, crashed agents reboot — each sweep pauses
        the control clock first).  A node whose rollback fails *on
        the node* is quarantined through the port and surfaced in
        ``report.stuck_nodes`` — parked, not forgotten."""
        self._log(report, "halt", wave=wave.index,
                  reason="canary-failed", upgraded=len(upgraded))
        restored = 0
        stuck: List[str] = []
        pending = list(upgraded)
        sweep = 0
        while pending:
            sweep += 1
            unreachable: List[str] = []
            for node_id in pending:
                outcome = self._call("rollback", node_id)
                self._account(report, outcome)
                if not outcome.ok:
                    unreachable.append(node_id)
                    self._log(report, "unreachable", wave=wave.index,
                              node=node_id, op="rollback",
                              attempts=outcome.attempts, sweep=sweep)
                elif outcome.value is None:
                    stuck.append(node_id)
                    self._log(report, "rollback-failed",
                              wave=wave.index, node=node_id)
                else:
                    restored += 1
            pending = unreachable
            if not pending \
                    or sweep > self.transport.policy.rollback_sweeps:
                break
            self._log(report, "rollback-sweep", wave=wave.index,
                      sweep=sweep, remaining=len(pending))
            self._pause(f"sweep-{sweep}")
        for node_id in stuck:
            outcome = self._call("quarantine", node_id,
                                 "stuck-rollback")
            self._account(report, outcome)
            self._log(report, "quarantine", wave=wave.index,
                      node=node_id,
                      ok=bool(outcome.ok and outcome.value))
        report.stuck_nodes = sorted(stuck)
        report.unreachable_nodes = sorted(pending)
        self._log(report, "rollback", wave=wave.index,
                  restored=restored, stuck=len(stuck),
                  unreachable=len(pending))
        if self.telemetry is not None and self._last_entry_live \
                and restored:
            self.telemetry.record_rollback(restored)

    def _reconcile_unreachable(self, report: RolloutReport) -> None:
        """Last-chance pass before the final census: a partition that
        healed after the rollback sweeps must not leave a reachable
        node on the withdrawn release."""
        still: List[str] = []
        healed = 0
        for node_id in report.unreachable_nodes:
            probe = self._call("census", node_id)
            self._account(report, probe)
            if not probe.ok:
                still.append(node_id)
                continue
            outcome = self._call("rollback", node_id)
            self._account(report, outcome)
            if not outcome.ok:
                still.append(node_id)
            elif outcome.value is None:
                quarantine = self._call("quarantine", node_id,
                                        "stuck-rollback")
                self._account(report, quarantine)
                report.stuck_nodes = sorted(
                    report.stuck_nodes + [node_id])
                self._log(report, "quarantine", node=node_id,
                          ok=bool(quarantine.ok and quarantine.value))
            else:
                healed += 1
                self._log(report, "rollback-late", node=node_id,
                          restored=outcome.value)
        if healed or len(still) != len(report.unreachable_nodes):
            self._log(report, "reconcile", healed=healed,
                      still_unreachable=len(still))
        report.unreachable_nodes = sorted(still)

    def _finish(self, report: RolloutReport) -> None:
        """Take the settled fleet-wide census and close the report."""
        if report.outcome == "rolled-back" \
                and report.unreachable_nodes:
            self._reconcile_unreachable(report)
        census: Dict[str, int] = {}
        converged = 0
        for node_id in self.transport.node_ids():
            outcome = self._call("census", node_id)
            self._account(report, outcome)
            if not outcome.ok:
                census["unreachable"] = \
                    census.get("unreachable", 0) + 1
                continue
            state = outcome.value
            census[state] = census.get(state, 0) + 1
            current = self._call("current_release", node_id)
            self._account(report, current)
            if current.ok and current.value == report.release_id:
                converged += 1
        report.final_census = census
        report.converged_nodes = converged
        self._log(report, "done", outcome=report.outcome,
                  converged=converged,
                  census=";".join(f"{s}:{c}" for s, c
                                  in sorted(census.items())),
                  rpc_retries=report.rpc_retries,
                  rpc_unreachable=report.rpc_unreachable)
        if self.telemetry is not None and self._last_entry_live:
            self.telemetry.record_rollout(report)
            self.telemetry.record_transport(
                retries=report.rpc_retries,
                unreachable=report.rpc_unreachable)
