"""The fleet control plane's pure core.

Five services, each alone in its module, all driving the fleet through
:class:`~repro.fleet.ports.FleetPort` and none importing a kernel:

* :mod:`~repro.fleet.services.registry` — signed release images
* :mod:`~repro.fleet.services.planner` — staged wave planning
* :mod:`~repro.fleet.services.canary` — health-census verdicts
* :mod:`~repro.fleet.services.aggregate` — fleet-wide telemetry
* :mod:`~repro.fleet.services.orchestrator` — the rollout driver
"""

from repro.fleet.services.aggregate import FleetTelemetry
from repro.fleet.services.canary import (
    CanaryEvaluator,
    CanaryPolicy,
    CanaryVerdict,
)
from repro.fleet.services.orchestrator import (
    RolloutEntry,
    RolloutOrchestrator,
    RolloutReport,
)
from repro.fleet.services.planner import RolloutPlanner, Wave
from repro.fleet.services.registry import Release, ReleaseRegistry

__all__ = [
    "CanaryEvaluator",
    "CanaryPolicy",
    "CanaryVerdict",
    "FleetTelemetry",
    "Release",
    "ReleaseRegistry",
    "RolloutEntry",
    "RolloutOrchestrator",
    "RolloutPlanner",
    "RolloutReport",
    "Wave",
]
