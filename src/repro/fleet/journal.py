"""The rollout write-ahead journal: crash-resumable control plane.

Every decision the orchestrator makes (a :class:`RolloutEntry`) and
every RPC result it acts on (an *op*) is appended here before the
rollout moves on.  Kill the orchestrator at any append boundary —
``fleet.orch.crash`` does exactly that — and
``RolloutOrchestrator.resume()`` reloads the journal, replays the
recorded prefix without touching the fleet (journaled ops return their
recorded results; journaled entries are re-emitted, not re-journaled),
and drives the remainder live.  Because every side effect is journaled
immediately after it completes and the crash fires *at* the append,
there is never a performed-but-unrecorded operation: the resumed run
continues from exactly the first un-journaled op, the control channel's
RNG and clock pick up where they stopped, and the finished
``RolloutReport.signature()`` is bit-identical to an uninterrupted run
under the same seed.

Two implementations: :class:`MemoryJournal` (tests, chaos harness) and
:class:`FileJournal` (JSONL on disk — ``bpftool fleet resume`` reloads
one from a path, proving the resumed orchestrator shares no Python
state with the dead one).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional


class OrchestratorCrash(RuntimeError):
    """The injected orchestrator death (``fleet.orch.crash``).  Raised
    *after* the triggering journal append is durable, so the journal
    is always a consistent prefix of the rollout."""

    def __init__(self, appended: int) -> None:
        super().__init__(
            f"orchestrator crashed after journal record {appended}")
        #: how many records were durable when the crash hit
        self.appended = appended


class RolloutJournal:
    """Append-only rollout journal (see module docstring).

    Record vocabulary (every record is a JSON-able dict with ``kind``):

    * ``header`` — one per journal: release id, seed, halt_after.
    * ``entry``  — one :class:`RolloutEntry` (seq, entry kind, wave,
      detail pairs); the report log and its signature are built from
      exactly these.
    * ``op``     — one completed RPC: deterministic op key plus the
      :class:`~repro.fleet.transport.RpcOutcome` dict and its decoded
      return value.

    A journal whose last entry record has entry-kind ``done`` is
    complete; anything else is resumable.
    """

    def append(self, record: Dict[str, object]) -> None:
        """Make one record durable (subclass hook)."""
        raise NotImplementedError

    def records(self) -> List[Dict[str, object]]:
        """Every record, in append order (subclass hook)."""
        raise NotImplementedError

    # -- typed appends ------------------------------------------------------

    def append_header(self, release_id: str, seed: int,
                      halt_after: Optional[int],
                      rollout: int = 1) -> None:
        """Journal the rollout's identity before anything else.
        ``rollout`` is the orchestrator's rollout ordinal — it scopes
        every request id, so two rollouts over the same transport can
        never collide in the nodes' reply caches."""
        self.append({"kind": "header", "release": release_id,
                     "seed": seed, "halt_after": halt_after,
                     "rollout": rollout})

    def append_entry(self, seq: int, entry_kind: str, wave: int,
                     detail: List[List[object]]) -> None:
        """Journal one rollout-log entry."""
        self.append({"kind": "entry", "seq": seq,
                     "entry_kind": entry_kind, "wave": wave,
                     "detail": detail})

    def append_op(self, key: str, outcome: Dict[str, object],
                  value: object) -> None:
        """Journal one completed RPC and its (JSON-able) value."""
        self.append({"kind": "op", "key": key, "outcome": outcome,
                     "value": value})

    # -- typed reads --------------------------------------------------------

    def header(self) -> Optional[Dict[str, object]]:
        """The header record, or None for an empty journal."""
        for record in self.records():
            if record["kind"] == "header":
                return record
        return None

    def entries(self) -> List[Dict[str, object]]:
        """Every journaled rollout-log entry, in seq order."""
        return [r for r in self.records() if r["kind"] == "entry"]

    def ops(self) -> Dict[str, Dict[str, object]]:
        """Journaled op records, keyed by their deterministic op key."""
        return {r["key"]: r for r in self.records()
                if r["kind"] == "op"}

    def complete(self) -> bool:
        """True when the journaled rollout reached a terminal state."""
        entries = self.entries()
        return bool(entries) and entries[-1]["entry_kind"] == "done"

    def describe(self) -> str:
        """One status line for the CLI."""
        header = self.header()
        if header is None:
            return "journal: empty"
        entries = self.entries()
        state = "complete" if self.complete() else "in-progress"
        return (f"journal: {header['release']} seed={header['seed']} "
                f"{state} entries={len(entries)} "
                f"ops={len(self.ops())}")


class MemoryJournal(RolloutJournal):
    """The in-process journal (tests and the chaos harness)."""

    def __init__(self) -> None:
        self._records: List[Dict[str, object]] = []

    def append(self, record: Dict[str, object]) -> None:
        """See :meth:`RolloutJournal.append`."""
        self._records.append(record)

    def records(self) -> List[Dict[str, object]]:
        """See :meth:`RolloutJournal.records`."""
        return list(self._records)


class FileJournal(RolloutJournal):
    """JSONL-on-disk journal: each append is written, flushed and
    fsync'd before the rollout proceeds — the write-ahead discipline
    a real orchestrator would need to survive its host dying."""

    def __init__(self, path: str) -> None:
        """Open (or create) the journal at ``path``; existing records
        are loaded, so constructing one on a crashed rollout's path is
        how resume finds its history."""
        self.path = path
        self._records: List[Dict[str, object]] = []
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        self._records.append(json.loads(line))

    def append(self, record: Dict[str, object]) -> None:
        """See :meth:`RolloutJournal.append` (durable before return)."""
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._records.append(record)

    def records(self) -> List[Dict[str, object]]:
        """See :meth:`RolloutJournal.records`."""
        return list(self._records)
