"""The fleet control channel: a fault-modeled RPC envelope.

PR 8's orchestrator called the fleet port as if the network between
the control plane and its nodes were lossless and instantaneous.  This
module inserts the honest layer: every control-plane operation becomes
an :class:`RpcRequest` that travels through :class:`FleetTransport`,
where the existing fault-injection plane can drop it, delay it,
duplicate it, or cut the link entirely — all seeded and deterministic
on a dedicated control-plane :class:`~repro.kernel.ktime.VirtualClock`
(node time is node business; the control channel has its own).

The named failpoints (see :data:`~repro.faultinject.plane.KNOWN_SITES`):

* ``fleet.rpc.send.<node>`` — request delivery.  ``errno`` drops the
  request before the node sees it; ``delay`` models a slow hop (a
  delay at or past the RPC deadline means the request *still lands*,
  but the client has already given up — the classic timed-out-but-
  applied case); ``dup`` delivers the request twice.
* ``fleet.rpc.reply.<node>`` — reply delivery.  ``errno`` drops the
  reply *after* the node applied the request — exactly the failure
  idempotent retries exist for.
* ``fleet.node.crash.<node>`` — the node's agent crashes: the
  in-flight request is lost and the node stays down for
  ``RetryPolicy.crash_reboot_ns`` of control-clock time.
* ``fleet.partition.<node>`` — both directions cut for this attempt;
  the partition heals when its schedule stops firing.

Against all of that the client runs a retry policy: a per-attempt
deadline, exponential backoff with seeded jitter, and a bounded attempt
budget; a request that exhausts it comes back ``unreachable`` instead
of raising.  Every logical operation carries one ``request_id`` across
all its retries, and the server side keeps a durable reply cache keyed
by it — a duplicated or retried ``deploy`` is absorbed by the cache
instead of double-applying.  (The cache models the node agent's
on-disk op journal: a real fleet daemon persists exactly this so that
redelivery after an ack loss is safe.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Tuple

from repro.faultinject.plane import FaultPlane
from repro.kernel.ktime import VirtualClock

#: fleet-port methods whose effects mutate node state; reads share the
#: same envelope (a census must survive the same wire) but are listed
#: for documentation — the reply cache covers both.
MUTATING_METHODS: Tuple[str, ...] = (
    "deploy", "rollback", "soak", "quarantine")


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side tunables for the control channel."""

    #: delivery attempts per logical RPC before ``unreachable``
    max_attempts: int = 4
    #: per-attempt deadline on the control clock
    rpc_timeout_ns: int = 1_000_000
    #: first backoff span; doubles per attempt (``backoff_factor``)
    base_backoff_ns: int = 250_000
    #: exponential backoff multiplier
    backoff_factor: float = 2.0
    #: backoff ceiling
    max_backoff_ns: int = 4_000_000
    #: uniform seeded jitter added to every backoff, [0, jitter_ns]
    jitter_ns: int = 50_000
    #: wire latency charged per delivery attempt
    send_latency_ns: int = 1_000
    #: how long a crashed node agent stays down on the control clock
    crash_reboot_ns: int = 2_000_000
    #: extra rollback convergence sweeps for unreachable nodes
    rollback_sweeps: int = 3
    #: control-clock pause between rollback sweeps (lets partitions
    #: heal and crashed agents reboot)
    sweep_pause_ns: int = 2_000_000

    def backoff_ns(self, attempt: int, jitter: Random) -> int:
        """The backoff span after failed ``attempt`` (1-based), with
        seeded jitter."""
        span = self.base_backoff_ns * \
            (self.backoff_factor ** (attempt - 1))
        span = min(int(span), self.max_backoff_ns)
        if self.jitter_ns > 0:
            span += jitter.randrange(self.jitter_ns + 1)
        return span


@dataclass(frozen=True)
class RpcRequest:
    """One control-plane request envelope."""

    #: stable id, shared by every retry of the same logical operation
    request_id: str
    method: str
    node_id: str
    args: Tuple[object, ...] = ()


@dataclass(frozen=True)
class RpcOutcome:
    """What the client learned about one logical RPC."""

    request_id: str
    method: str
    node_id: str
    #: True when a reply arrived (possibly after retries)
    ok: bool
    #: the inner port method's return value (None when not ok)
    value: object = None
    #: machine-readable failure class ("" on success): ``unreachable``
    error: str = ""
    #: delivery attempts consumed
    attempts: int = 0

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form (journaled per op by the orchestrator)."""
        return {"request_id": self.request_id, "method": self.method,
                "node_id": self.node_id, "ok": self.ok,
                "error": self.error, "attempts": self.attempts}


@dataclass
class TransportStats:
    """Counters the transport keeps about its own behavior."""

    rpcs: int = 0
    attempts: int = 0
    retries: int = 0
    send_drops: int = 0
    reply_drops: int = 0
    duplicates: int = 0
    dedup_hits: int = 0
    partitioned: int = 0
    node_crashes: int = 0
    timeouts: int = 0
    unreachable: int = 0
    applied: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-able counters (stable keys)."""
        body = {k: getattr(self, k) for k in (
            "rpcs", "attempts", "retries", "send_drops", "reply_drops",
            "duplicates", "dedup_hits", "partitioned", "node_crashes",
            "timeouts", "unreachable")}
        body["applied"] = dict(sorted(self.applied.items()))
        return body


class FleetTransport:
    """Client + wire + server for the fleet control channel.

    Wraps an inner :class:`~repro.fleet.ports.FleetPort` (the "remote"
    side).  The orchestrator calls :meth:`call`; the transport runs
    the retry loop against the fault plane and hands the inner port
    the request at most once per distinct ``request_id`` — replays and
    duplicates are served from the reply cache.

    With no failpoints armed the transport is transparent: every call
    costs one ``send_latency_ns`` on the control clock and succeeds on
    the first attempt, so PR 8 scenarios behave exactly as before.
    """

    def __init__(self, inner: "object",
                 policy: Optional[RetryPolicy] = None,
                 clock: Optional[VirtualClock] = None,
                 plane: Optional[FaultPlane] = None,
                 seed: int = 0) -> None:
        """Wrap ``inner``; ``seed`` feeds the backoff jitter (the
        fault plane has its own seed via ``plane.enable``)."""
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.clock = clock or VirtualClock()
        self.plane = plane or FaultPlane(clock=self.clock)
        self.seed = seed
        self._jitter = Random(f"fleet-rpc-jitter:{seed}")
        #: durable server-side reply cache, by request id (the node
        #: agent's op journal — survives agent crashes)
        self._replies: Dict[str, RpcOutcome] = {}
        #: node-id -> control-clock time its crashed agent reboots
        self._down_until: Dict[str, int] = {}
        self.stats = TransportStats()
        #: every delivered outcome, in order (debugging/tests)
        self.log: List[RpcOutcome] = []

    # -- passthroughs (control-plane metadata, not node RPCs) ---------------

    def node_ids(self) -> List[str]:
        """The fleet membership list (served from the orchestrator's
        own directory, not over the per-node channel)."""
        return self.inner.node_ids()

    # -- the client ---------------------------------------------------------

    def call(self, request: RpcRequest) -> RpcOutcome:
        """Run one logical RPC through the retry loop.  Never raises
        for channel misbehavior — an unreachable node is an outcome,
        not an exception."""
        policy = self.policy
        self.stats.rpcs += 1
        attempt = 0
        while attempt < policy.max_attempts:
            attempt += 1
            self.stats.attempts += 1
            if attempt > 1:
                self.stats.retries += 1
            self.clock.advance(policy.send_latency_ns)
            if not self._deliver_request(request):
                self._give_up_attempt(attempt)
                continue
            reply = self._serve(request)
            if not self._deliver_reply(request):
                self._give_up_attempt(attempt)
                continue
            final = RpcOutcome(
                request_id=request.request_id, method=request.method,
                node_id=request.node_id, ok=reply.ok,
                value=reply.value, error=reply.error,
                attempts=attempt)
            self.log.append(final)
            return final
        self.stats.unreachable += 1
        final = RpcOutcome(
            request_id=request.request_id, method=request.method,
            node_id=request.node_id, ok=False, error="unreachable",
            attempts=attempt)
        self.log.append(final)
        return final

    def _give_up_attempt(self, attempt: int) -> None:
        """Burn the rest of the attempt's deadline, then back off."""
        self.stats.timeouts += 1
        self.clock.advance(self.policy.rpc_timeout_ns)
        if attempt < self.policy.max_attempts:
            self.clock.advance(
                self.policy.backoff_ns(attempt, self._jitter))

    # -- the wire -----------------------------------------------------------

    def _partitioned(self, node_id: str) -> bool:
        """One partition check; any armed action cuts the link."""
        action = self.plane.check(f"fleet.partition.{node_id}")
        if action is not None:
            self.stats.partitioned += 1
            return True
        return False

    def _node_down(self, node_id: str) -> bool:
        """True while the node's crashed agent is still rebooting."""
        until = self._down_until.get(node_id)
        if until is None:
            return False
        if self.clock.now_ns >= until:
            del self._down_until[node_id]
            return False
        return True

    def _deliver_request(self, request: RpcRequest) -> bool:
        """The request's trip to the node.  Returns False when the
        client will never see a reply for this attempt.  Sets
        ``_dup_request`` / ``_late_request`` side flags for
        :meth:`_serve`."""
        self._dup_request = False
        self._late_request = False
        node = request.node_id
        if not self.plane.armed:
            return True
        if self._partitioned(node):
            return False
        action = self.plane.check(f"fleet.rpc.send.{node}")
        if action is not None:
            if action.kind in ("errno", "panic"):
                self.stats.send_drops += 1
                return False
            if action.kind == "dup":
                self.stats.duplicates += 1
                self._dup_request = True
            elif action.kind == "delay" \
                    and action.delay_ns >= self.policy.rpc_timeout_ns:
                # the request limps in past the deadline: the node
                # will apply it, but this attempt already failed
                self._late_request = True
        if self._node_down(node):
            return False
        crash = self.plane.check(f"fleet.node.crash.{node}")
        if crash is not None and crash.kind == "panic":
            self.stats.node_crashes += 1
            self._down_until[node] = \
                self.clock.now_ns + self.policy.crash_reboot_ns
            return False  # in-flight request dies with the agent
        if self._late_request:
            self._serve(request)  # applied, but nobody is waiting
            return False
        return True

    def _deliver_reply(self, request: RpcRequest) -> bool:
        """The reply's trip back.  The request has already been
        applied — a dropped reply is what idempotent retry is for."""
        if not self.plane.armed:
            return True
        node = request.node_id
        if self._partitioned(node):
            return False
        action = self.plane.check(f"fleet.rpc.reply.{node}")
        if action is None:
            return True
        if action.kind in ("errno", "panic"):
            self.stats.reply_drops += 1
            return False
        if action.kind == "dup":
            # the client sees the same reply twice; the second copy
            # is ignored (same request id)
            self.stats.duplicates += 1
        elif action.kind == "delay" \
                and action.delay_ns >= self.policy.rpc_timeout_ns:
            return False  # reply arrives after the client gave up
        return True

    # -- the server (node agent) --------------------------------------------

    def _serve(self, request: RpcRequest) -> RpcOutcome:
        """Apply one delivered request, at most once per request id.
        A redelivery (retry after a lost reply, or a ``dup`` on the
        wire) returns the cached reply without re-applying."""
        if self._dup_request:
            self._dup_request = False
            self._serve(request)  # first copy lands normally
        cached = self._replies.get(request.request_id)
        if cached is not None:
            self.stats.dedup_hits += 1
            return cached
        method = getattr(self.inner, request.method)
        value = method(request.node_id, *request.args)
        self.stats.applied[request.method] = \
            self.stats.applied.get(request.method, 0) + 1
        reply = RpcOutcome(
            request_id=request.request_id, method=request.method,
            node_id=request.node_id, ok=True, value=value)
        self._replies[request.request_id] = reply
        return reply
