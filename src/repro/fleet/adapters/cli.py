"""The ``bpftool fleet`` driving adapter.

Each command boots a fresh canonical scenario
(:func:`~repro.fleet.adapters.sim.build_scenario`) — bpftool's
one-shot model — and exercises the control plane through the same
service API the demo and the tests use:

* ``fleet status``   — publish the releases, show the fleet census
* ``fleet rollout``  — stage a release through canary waves
* ``fleet rollback`` — the planted bad release: halt + auto-rollback
* ``fleet halt``     — operator stop after a chosen wave
* ``fleet resume``   — kill the orchestrator mid-rollout (armed
  ``fleet.orch.crash``), resume a **fresh** orchestrator from the
  on-disk write-ahead journal, and prove the finished report is
  bit-identical to an uninterrupted run

Output is text by default, ``--json`` for tooling; both are
deterministic under ``--seed``.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict

from repro.faultinject.chaos import FLEET_SCHEDULES
from repro.faultinject.plane import FaultAction, NthHit
from repro.fleet.adapters.sim import FleetScenario, build_scenario
from repro.fleet.journal import FileJournal, OrchestratorCrash
from repro.fleet.services.orchestrator import RolloutOrchestrator


def _scenario(args: object) -> FleetScenario:
    """Boot the canonical scenario from common CLI arguments."""
    return build_scenario(size=args.nodes, seed=args.seed,
                          engine=getattr(args, "engine", None))


def _pick_release(scenario: FleetScenario, which: str) -> object:
    """Map the CLI release keyword to a published release."""
    return {"baseline": scenario.baseline, "good": scenario.good,
            "bad": scenario.bad}[which]


def _census_line(census: Dict[str, int]) -> str:
    """Render a census dict as ``state:count`` pairs."""
    return " ".join(f"{state}:{count}"
                    for state, count in sorted(census.items()))


def _print_report(scenario: FleetScenario, report: object,
                  as_json: bool) -> None:
    """Render one rollout report (plus the fleet telemetry export
    under ``--json``)."""
    if as_json:
        body = report.as_dict()
        body["telemetry"] = scenario.telemetry.snapshot()
        print(json.dumps(body, indent=2, sort_keys=True))
        return
    print(report.render())


def cmd_fleet_status(args: object) -> int:
    """``bpftool fleet status``: the registry's releases and the
    fleet's current census (baseline installed, nothing rolled out)."""
    scenario = _scenario(args)
    fleet = scenario.fleet
    census: Dict[str, int] = {}
    for node_id in fleet.node_ids():
        state = fleet.census(node_id)
        census[state] = census.get(state, 0) + 1
    if args.json:
        print(json.dumps({
            "nodes": len(fleet.node_ids()),
            "census": census,
            "releases": [r.as_dict()
                         for r in scenario.registry.releases()],
        }, indent=2, sort_keys=True))
        return 0
    print(f"fleet: {len(fleet.node_ids())} nodes  "
          f"census: {_census_line(census)}")
    print("releases:")
    for release in scenario.registry.releases():
        running = sum(
            1 for node_id in fleet.node_ids()
            if fleet.current_release(node_id) == release.release_id)
        print(f"  {release.release_id:24s} "
              f"hash={release.content_hash[:12]} "
              f"sig={release.signature[:12]} running={running}")
    return 0


def cmd_fleet_rollout(args: object) -> int:
    """``bpftool fleet rollout``: stage ``--release`` through canary
    waves; exit 0 on completion, 1 when the canary rolled it back."""
    scenario = _scenario(args)
    release = _pick_release(scenario, args.release)
    report = scenario.orchestrator.rollout(release.release_id,
                                           seed=args.seed)
    _print_report(scenario, report, args.json)
    return 0 if report.outcome == "completed" else 1


def cmd_fleet_rollback(args: object) -> int:
    """``bpftool fleet rollback``: upgrade the fleet to the good
    release, then stage the planted bad one — demonstrating the
    canary halt and the automatic rollback to the prior release."""
    scenario = _scenario(args)
    first = scenario.orchestrator.rollout(
        scenario.good.release_id, seed=args.seed)
    report = scenario.orchestrator.rollout(
        scenario.bad.release_id, seed=args.seed)
    if not args.json:
        print(f"# prior rollout: {first.release_id} -> "
              f"{first.outcome} ({first.converged_nodes} nodes)")
    _print_report(scenario, report, args.json)
    return 0 if report.outcome == "rolled-back" else 1


def cmd_fleet_resume(args: object) -> int:
    """``bpftool fleet resume``: the durability demonstration.

    Runs the rollout twice under the same seed (and optional channel
    chaos): once uninterrupted for the reference signature, once with
    ``fleet.orch.crash`` armed to kill the orchestrator every
    ``--crash-after`` journal appends.  After each crash a **new**
    orchestrator object is built over the surviving fleet and the
    journal is re-read from disk — the dead control plane shares no
    Python state with its successor beyond the journal file and the
    world it already mutated.  Exit 0 iff the resumed report's
    signature is bit-identical to the uninterrupted one."""
    reference = _scenario(args)
    scenario = _scenario(args)
    if args.chaos:
        FLEET_SCHEDULES[args.chaos](reference.transport.plane)
        FLEET_SCHEDULES[args.chaos](scenario.transport.plane)
    release = _pick_release(reference, args.release)
    baseline = reference.orchestrator.rollout(release.release_id,
                                              seed=args.seed)
    path = args.journal
    if path is None:
        handle = tempfile.NamedTemporaryFile(
            prefix="fleet-journal-", suffix=".jsonl", delete=False)
        handle.close()
        path = handle.name
    if os.path.exists(path):
        os.remove(path)  # a stale journal is not this rollout's
    scenario.transport.plane.arm(
        "fleet.orch.crash", NthHit(args.crash_after, every=True),
        FaultAction.panic())
    release = _pick_release(scenario, args.release)
    report = None
    crashes = 0
    orchestrator = scenario.orchestrator
    while report is None:
        try:
            if crashes == 0:
                report = orchestrator.rollout(
                    release.release_id, seed=args.seed,
                    journal=FileJournal(path))
            else:
                report = orchestrator.resume(FileJournal(path))
        except OrchestratorCrash as crash:
            crashes += 1
            if crashes > 500:
                raise RuntimeError("crash/resume never converged")
            if not args.json:
                print(f"# crash {crashes}: {crash}")
            # the control plane died: its successor shares only the
            # journal file and the fleet it already acted on
            orchestrator = RolloutOrchestrator(
                scenario.fleet, scenario.registry,
                telemetry=scenario.telemetry,
                transport=scenario.transport)
    match = report.signature() == baseline.signature()
    if args.json:
        body = report.as_dict()
        body["crashes"] = crashes
        body["journal"] = path
        body["journal_records"] = len(FileJournal(path).records())
        body["reference_signature"] = baseline.signature()
        body["signature_match"] = match
        print(json.dumps(body, indent=2, sort_keys=True))
    else:
        print(report.render())
        print(f"# journal: {path} "
              f"({len(FileJournal(path).records())} records, "
              f"{crashes} crashes survived)")
        print(f"# uninterrupted signature: {baseline.signature()}")
        print(f"# resumed signature:       {report.signature()}")
        print(f"# bit-identical: {'yes' if match else 'NO'}")
    if args.journal is None:
        os.remove(path)
    return 0 if match and crashes > 0 else 1


def cmd_fleet_halt(args: object) -> int:
    """``bpftool fleet halt``: operator stop after ``--after-wave``;
    the fleet is left split between releases, which the census
    shows."""
    scenario = _scenario(args)
    release = _pick_release(scenario, args.release)
    report = scenario.orchestrator.rollout(
        release.release_id, seed=args.seed,
        halt_after=args.after_wave)
    _print_report(scenario, report, args.json)
    return 0 if report.outcome == "halted" else 1
