"""The ``bpftool fleet`` driving adapter.

Each command boots a fresh canonical scenario
(:func:`~repro.fleet.adapters.sim.build_scenario`) — bpftool's
one-shot model — and exercises the control plane through the same
service API the demo and the tests use:

* ``fleet status``   — publish the releases, show the fleet census
* ``fleet rollout``  — stage a release through canary waves
* ``fleet rollback`` — the planted bad release: halt + auto-rollback
* ``fleet halt``     — operator stop after a chosen wave

Output is text by default, ``--json`` for tooling; both are
deterministic under ``--seed``.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.fleet.adapters.sim import FleetScenario, build_scenario


def _scenario(args: object) -> FleetScenario:
    """Boot the canonical scenario from common CLI arguments."""
    return build_scenario(size=args.nodes, seed=args.seed,
                          engine=getattr(args, "engine", None))


def _pick_release(scenario: FleetScenario, which: str) -> object:
    """Map the CLI release keyword to a published release."""
    return {"baseline": scenario.baseline, "good": scenario.good,
            "bad": scenario.bad}[which]


def _census_line(census: Dict[str, int]) -> str:
    """Render a census dict as ``state:count`` pairs."""
    return " ".join(f"{state}:{count}"
                    for state, count in sorted(census.items()))


def _print_report(scenario: FleetScenario, report: object,
                  as_json: bool) -> None:
    """Render one rollout report (plus the fleet telemetry export
    under ``--json``)."""
    if as_json:
        body = report.as_dict()
        body["telemetry"] = scenario.telemetry.snapshot()
        print(json.dumps(body, indent=2, sort_keys=True))
        return
    print(report.render())


def cmd_fleet_status(args: object) -> int:
    """``bpftool fleet status``: the registry's releases and the
    fleet's current census (baseline installed, nothing rolled out)."""
    scenario = _scenario(args)
    fleet = scenario.fleet
    census: Dict[str, int] = {}
    for node_id in fleet.node_ids():
        state = fleet.census(node_id)
        census[state] = census.get(state, 0) + 1
    if args.json:
        print(json.dumps({
            "nodes": len(fleet.node_ids()),
            "census": census,
            "releases": [r.as_dict()
                         for r in scenario.registry.releases()],
        }, indent=2, sort_keys=True))
        return 0
    print(f"fleet: {len(fleet.node_ids())} nodes  "
          f"census: {_census_line(census)}")
    print("releases:")
    for release in scenario.registry.releases():
        running = sum(
            1 for node_id in fleet.node_ids()
            if fleet.current_release(node_id) == release.release_id)
        print(f"  {release.release_id:24s} "
              f"hash={release.content_hash[:12]} "
              f"sig={release.signature[:12]} running={running}")
    return 0


def cmd_fleet_rollout(args: object) -> int:
    """``bpftool fleet rollout``: stage ``--release`` through canary
    waves; exit 0 on completion, 1 when the canary rolled it back."""
    scenario = _scenario(args)
    release = _pick_release(scenario, args.release)
    report = scenario.orchestrator.rollout(release.release_id,
                                           seed=args.seed)
    _print_report(scenario, report, args.json)
    return 0 if report.outcome == "completed" else 1


def cmd_fleet_rollback(args: object) -> int:
    """``bpftool fleet rollback``: upgrade the fleet to the good
    release, then stage the planted bad one — demonstrating the
    canary halt and the automatic rollback to the prior release."""
    scenario = _scenario(args)
    first = scenario.orchestrator.rollout(
        scenario.good.release_id, seed=args.seed)
    report = scenario.orchestrator.rollout(
        scenario.bad.release_id, seed=args.seed)
    if not args.json:
        print(f"# prior rollout: {first.release_id} -> "
              f"{first.outcome} ({first.converged_nodes} nodes)")
    _print_report(scenario, report, args.json)
    return 0 if report.outcome == "rolled-back" else 1


def cmd_fleet_halt(args: object) -> int:
    """``bpftool fleet halt``: operator stop after ``--after-wave``;
    the fleet is left split between releases, which the census
    shows."""
    scenario = _scenario(args)
    release = _pick_release(scenario, args.release)
    report = scenario.orchestrator.rollout(
        release.release_id, seed=args.seed,
        halt_after=args.after_wave)
    _print_report(scenario, report, args.json)
    return 0 if report.outcome == "halted" else 1
