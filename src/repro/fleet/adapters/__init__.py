"""Fleet adapters: the concrete edges of the control plane.

* :mod:`~repro.fleet.adapters.node` / :mod:`~repro.fleet.adapters.sim`
  — the driven side: an in-process fleet of simulated kernels behind
  :class:`~repro.fleet.ports.FleetPort`, plus the canonical demo
  scenario (one good release, one planted bad release).
* :mod:`~repro.fleet.adapters.cli` — the driving side: what the
  ``bpftool fleet`` subcommands call.
"""

from repro.fleet.adapters.node import FleetNode
from repro.fleet.adapters.sim import FleetScenario, SimFleet

__all__ = ["FleetNode", "FleetScenario", "SimFleet"]
