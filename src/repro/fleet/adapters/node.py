"""One fleet node: a simulated kernel plus its deployment agent.

A :class:`FleetNode` owns one :class:`~repro.kernel.kernel.Kernel`
(stamped from the fleet's shared
:class:`~repro.kernel.spec.KernelSpec`) and the small amount of agent
state a real fleet daemon would keep: the trusted verification key,
the release currently running, the one before it (the rollback
target).  Health is *not* polled out of supervisor internals — the
node subscribes to its own kernel's event stream and tracks the last
``health`` transition for the running release's tag, exactly what an
external agent could see.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from repro.core.signing import SigningKey
from repro.ebpf.loader import BpfSubsystem
from repro.ebpf.progcache import insns_digest
from repro.errors import ReproError
from repro.fleet.ports import DeployResult
from repro.kernel import Kernel, KernelSpec


def soak_payload(run: int) -> bytes:
    """The canonical soak packet for run number ``run``: dst port 80
    (never the filtered port), a run-derived source id, a fixed body —
    deterministic and release-agnostic."""
    return struct.pack("<HB", 80, run & 0xFF) + b"fleet-soak"


class FleetNode:
    """One node of the simulated fleet."""

    def __init__(self, node_id: str, spec: KernelSpec,
                 trusted_key: SigningKey,
                 funcdb: Optional[object] = None) -> None:
        """Boot one node from the fleet image ``spec``; the node
        trusts releases signed by ``trusted_key``."""
        self.node_id = node_id
        self.kernel = Kernel.from_spec(spec, funcdb=funcdb)
        self.bpf = BpfSubsystem.from_spec(self.kernel)
        self.trusted_key = trusted_key
        #: the release currently attached (None before preinstall)
        self.current: Optional[object] = None
        #: the rollback target (the release ``current`` replaced)
        self.previous: Optional[object] = None
        self.deploy_failed = False
        #: set by :meth:`quarantine` (the orchestrator parking a node
        #: stuck mid-rollback); cleared by the next successful deploy
        self.operator_quarantined = False
        self._health = "healthy"
        self.kernel.events.subscribe(self._on_health,
                                     kinds=("health",))

    def _tag(self, release: object) -> str:
        """The supervisor/hook tag for a release's program."""
        return f"bpf:{release.name}"

    def _on_health(self, event: object) -> None:
        """Track the running release's supervisor state from the
        event stream (the agent's only health source)."""
        if self.current is not None \
                and event.source == self._tag(self.current):
            self._health = event.get("new")

    # -- deployment -----------------------------------------------------------

    def deploy(self, release: object) -> DeployResult:
        """Verify, load and attach one release.  The node re-checks
        the signature itself (§3.1's load-time check): a registry
        compromise upstream must not turn into code in this kernel."""
        if self.kernel.log.panicked:
            return DeployResult(self.node_id, release.release_id,
                                ok=False, error="dead",
                                detail="kernel panicked")
        if insns_digest(release.insns) != release.content_hash \
                or not self.trusted_key.verify(release.image_bytes(),
                                               release.signature):
            self.deploy_failed = True
            return DeployResult(self.node_id, release.release_id,
                                ok=False, error="signature",
                                detail="refused unsigned image")
        tag = self._tag(release)
        try:
            prog = self.bpf.load_program(
                list(release.insns), release.prog_type,
                name=release.name)
        except ReproError as exc:
            self.deploy_failed = True
            return DeployResult(self.node_id, release.release_id,
                                ok=False, error="verifier",
                                detail=type(exc).__name__)
        # replace whatever ran before: detach it and decommission its
        # breaker state — the incoming image deserves a fresh slate
        # even when it reuses the outgoing program's tag
        if self.current is not None \
                and self.current.release_id != release.release_id:
            old_tag = self._tag(self.current)
            self.kernel.hooks.detach_everywhere(old_tag)
            self.kernel.soft_reset(
                (old_tag,),
                reason=f"redeploy -> {release.release_id}")
        self.kernel.hooks.detach_everywhere(tag)
        self.bpf.attach_xdp(prog)
        if self.current is not None \
                and self.current.release_id != release.release_id:
            self.previous = self.current
        self.current = release
        self.deploy_failed = False
        self.operator_quarantined = False
        self._health = "healthy"
        return DeployResult(self.node_id, release.release_id, ok=True)

    def rollback(self) -> Optional[str]:
        """Restore the previous release; returns its id or None.

        The sequence matters: detach the suspect program, then
        ``soft_reset`` its tag — clearing the scoped taint *and* the
        supervisor's circuit breaker (half-open trial, quarantine
        backoff) so the restored program starts HEALTHY — then
        redeploy the prior image (a content-hash cache hit: no
        re-verification)."""
        if self.previous is None or self.kernel.log.panicked:
            return None
        suspect, target = self.current, self.previous
        if suspect is not None:
            tag = self._tag(suspect)
            self.kernel.hooks.detach_everywhere(tag)
            self.kernel.soft_reset(
                (tag,),
                reason=f"rollback {suspect.release_id} -> "
                       f"{target.release_id}")
            self.current = None  # decommissioned; deploy() starts clean
        result = self.deploy(target)
        if not result.ok:
            return None
        # a rolled-back node has no further fallback
        self.previous = None
        return target.release_id

    def quarantine(self, reason: str) -> bool:
        """Park this node: mark the agent operator-quarantined (census
        reports ``quarantined`` until a later deploy clears it) and,
        when the kernel is still alive, quarantine the running
        release's breaker through the supervisor so the program stops
        executing too."""
        self.operator_quarantined = True
        if self.kernel.recovery is not None \
                and self.current is not None \
                and not self.kernel.log.panicked:
            self.kernel.recovery.quarantine(
                self._tag(self.current), reason=reason)
        return True

    # -- observation ----------------------------------------------------------

    def soak(self, runs: int) -> None:
        """Drive ``runs`` canonical packets through the XDP chain
        (supervised dispatch: faults feed the circuit breaker)."""
        for run in range(runs):
            self.kernel.hooks.deliver_packet(soak_payload(run))

    def census(self) -> str:
        """This node's health classification (see
        :data:`~repro.fleet.ports.NODE_STATES`)."""
        if self.kernel.log.panicked or self.kernel.log.tainted:
            return "dead"
        if self.operator_quarantined:
            return "quarantined"
        if self.deploy_failed:
            return "deploy-failed"
        return self._health

    def snapshot(self) -> Dict[str, object]:
        """Compact roll-up for the fleet aggregator; also publishes a
        ``telemetry`` event on the node's stream (the kernel-side
        half of the census)."""
        event = self.kernel.emit_telemetry_snapshot()
        return {
            "node": self.node_id,
            "release": (self.current.release_id
                        if self.current else None),
            "health": self.census(),
            "oopses": event.get("oopses"),
            "contained": event.get("contained"),
            "clock_ns": event.get("clock_ns"),
        }
