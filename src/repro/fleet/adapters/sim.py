"""The in-process simulated fleet, and the canonical demo scenario.

:class:`SimFleet` implements :class:`~repro.fleet.ports.FleetPort`
over N :class:`~repro.fleet.adapters.node.FleetNode` instances, every
node stamped from the same :class:`~repro.kernel.spec.KernelSpec` —
one image, N machines.  :func:`build_scenario` assembles the whole
control plane around it with three published releases of the same
extension:

* ``xdp-filter@1.0.0`` — the preinstalled baseline (pass-all),
* ``xdp-filter@1.1.0`` — the good upgrade (port filter),
* ``xdp-filter@2.0.0`` — the planted bad release: it calls
  ``bpf_ktime_get_ns`` on every packet while the fleet image arms
  that helper site to panic, so every soak run oopses, the
  supervisor contains and quarantines it, and the canary wave fails.

The fault arm rides in the *spec* (the fleet's chaos schedule), not
the release: the same machines run the good release cleanly, which is
exactly what makes the canary signal differential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.signing import SigningKey
from repro.ebpf.asm import Asm
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0
from repro.ebpf.progs import ProgType
from repro.fleet.adapters.node import FleetNode
from repro.fleet.ports import DeployResult, FleetPort
from repro.fleet.services.aggregate import FleetTelemetry
from repro.fleet.services.orchestrator import RolloutOrchestrator
from repro.fleet.services.registry import Release, ReleaseRegistry
from repro.fleet.transport import FleetTransport, RetryPolicy
from repro.kernel import KernelSpec
from repro.net.programs import XDP_PASS, pass_all_prog, port_filter_prog

#: the helper site the fleet image arms as its planted failure mode
TRIGGER_SITE = "helper.bpf_ktime_get_ns"

#: the extension every scenario release versions
EXTENSION = "xdp-filter"


def bad_time_prog() -> List[object]:
    """The planted bad release's bytecode: reads the clock on every
    packet, then passes.  Verifier-clean — the badness only exists in
    production, where the fleet image's armed failpoint makes the
    helper call oops."""
    return (Asm()
            .call(ids.BPF_FUNC_ktime_get_ns)
            .mov64_imm(R0, XDP_PASS)
            .exit_()
            .program())


def default_fleet_spec(seed: int,
                       engine: Optional[object] = None) -> KernelSpec:
    """The fleet's node image: 2 CPUs, supervisor attached, the
    trigger site armed to panic on every hit (deterministically —
    no probability involved), seeded from the rollout seed."""
    return KernelSpec(
        nr_cpus=2, recovery=True, engine=engine,
    ).with_faults(seed, f"{TRIGGER_SITE}=every:1=panic")


class SimFleet(FleetPort):
    """N simulated kernels behind the fleet port."""

    def __init__(self, size: int, spec: KernelSpec,
                 trusted_key: SigningKey,
                 node_prefix: str = "node") -> None:
        """Stamp out ``size`` nodes from ``spec``; every node trusts
        releases signed by ``trusted_key``."""
        if size <= 0:
            raise ValueError(f"fleet size must be positive, got {size}")
        self._nodes: Dict[str, FleetNode] = {}
        for index in range(size):
            node_id = f"{node_prefix}-{index:03d}"
            self._nodes[node_id] = FleetNode(
                node_id, spec, trusted_key)

    def _node(self, node_id: str) -> FleetNode:
        """Resolve a node id, loudly."""
        node = self._nodes.get(node_id)
        if node is None:
            raise KeyError(f"unknown node {node_id!r}")
        return node

    def nodes(self) -> List[FleetNode]:
        """Every node object, in id order (tests iterate this for
        the kernel-isolation leak check)."""
        return [self._nodes[node_id] for node_id in self.node_ids()]

    def preinstall(self, release: Release) -> List[DeployResult]:
        """Day-0 image: deploy ``release`` to every node outside any
        rollout; raises if a node refuses (a fleet that cannot run
        its baseline is a broken scenario, not an outcome)."""
        results = [self._node(node_id).deploy(release)
                   for node_id in self.node_ids()]
        failed = [r for r in results if not r.ok]
        if failed:
            raise RuntimeError(
                f"baseline preinstall failed on {len(failed)} nodes "
                f"(first: {failed[0].as_dict()})")
        return results

    # -- FleetPort ------------------------------------------------------------

    def node_ids(self) -> List[str]:
        """Every node id, sorted."""
        return sorted(self._nodes)

    def deploy(self, node_id: str, release: Release) -> DeployResult:
        """Push a release to one node (see
        :meth:`~repro.fleet.adapters.node.FleetNode.deploy`)."""
        return self._node(node_id).deploy(release)

    def rollback(self, node_id: str) -> Optional[str]:
        """Restore one node's previous release."""
        return self._node(node_id).rollback()

    def quarantine(self, node_id: str, reason: str) -> bool:
        """Park one node (stuck mid-rollback: quarantined, not
        forgotten)."""
        return self._node(node_id).quarantine(reason)

    def soak(self, node_id: str, runs: int) -> None:
        """Drive canonical soak traffic through one node."""
        self._node(node_id).soak(runs)

    def census(self, node_id: str) -> str:
        """One node's health classification."""
        return self._node(node_id).census()

    def current_release(self, node_id: str) -> Optional[str]:
        """The release id a node currently runs."""
        node = self._node(node_id)
        return node.current.release_id if node.current else None

    def subscribe(self, node_id: str,
                  handler: Callable[[object], None],
                  kinds: Optional[Tuple[str, ...]] = None) -> object:
        """Subscribe to one node's kernel event stream."""
        return self._node(node_id).kernel.events.subscribe(
            handler, kinds=kinds)

    def snapshot(self, node_id: str) -> Dict[str, object]:
        """One node's telemetry roll-up."""
        return self._node(node_id).snapshot()


@dataclass
class FleetScenario:
    """Everything the demo, the CLI and the tests share: a wired
    control plane plus the three canonical releases."""

    fleet: SimFleet
    registry: ReleaseRegistry
    orchestrator: RolloutOrchestrator
    telemetry: FleetTelemetry
    baseline: Release
    good: Release
    bad: Release
    #: the control channel (arm chaos on ``transport.plane``)
    transport: FleetTransport


def build_scenario(size: int, seed: int,
                   engine: Optional[object] = None,
                   retry_policy: Optional[RetryPolicy] = None,
                   ) -> FleetScenario:
    """Assemble the canonical fleet: publish the three releases,
    stamp the fleet from :func:`default_fleet_spec`, preinstall the
    baseline, attach the telemetry aggregator, wire the control
    channel and the orchestrator.  The transport's fault plane is
    seeded and enabled (but unarmed — arm a schedule on
    ``scenario.transport.plane`` to put the channel under fire)."""
    registry = ReleaseRegistry()
    baseline = registry.publish(EXTENSION, "1.0.0",
                                pass_all_prog(), ProgType.XDP)
    good = registry.publish(EXTENSION, "1.1.0",
                            port_filter_prog(), ProgType.XDP)
    bad = registry.publish(EXTENSION, "2.0.0",
                           bad_time_prog(), ProgType.XDP)
    fleet = SimFleet(size, default_fleet_spec(seed, engine=engine),
                     trusted_key=registry.key)
    fleet.preinstall(baseline)
    telemetry = FleetTelemetry()
    telemetry.observe(fleet)
    transport = FleetTransport(fleet, policy=retry_policy, seed=seed)
    transport.plane.enable(seed)
    orchestrator = RolloutOrchestrator(fleet, registry,
                                       telemetry=telemetry,
                                       transport=transport)
    return FleetScenario(
        fleet=fleet, registry=registry, orchestrator=orchestrator,
        telemetry=telemetry, baseline=baseline, good=good, bad=bad,
        transport=transport)
