"""The fleet acceptance demo: ``python -m repro.fleet.demo``.

Runs the canonical scenario twice over the same fleet size and seed —
the good release must converge to 100% of the fleet, the planted bad
release must fail its canary wave and be fully rolled back — and then
asserts the two invocations were *bit-identical*: same rollout-log
signatures, same fleet telemetry export.  ``make fleet`` runs this
small; the acceptance configuration is the default 200 nodes.

Exit code 0 means every check held; any broken invariant (bad release
escaping its canary wave, a node left on the bad release, divergent
signatures) exits 1 with the failing check named.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.fleet.adapters.sim import build_scenario


def run_scenario(nodes: int, seed: int,
                 engine: Optional[str] = None) -> Dict[str, object]:
    """One full scenario pass: good rollout, bad rollout, exports.
    Returns a JSON-able result document (the determinism unit)."""
    scenario = build_scenario(size=nodes, seed=seed, engine=engine)
    good = scenario.orchestrator.rollout(
        scenario.good.release_id, seed=seed)
    bad = scenario.orchestrator.rollout(
        scenario.bad.release_id, seed=seed)
    on_bad = sum(
        1 for node_id in scenario.fleet.node_ids()
        if scenario.fleet.current_release(node_id)
        == scenario.bad.release_id)
    return {
        "nodes": nodes,
        "seed": seed,
        "good": good.as_dict(),
        "bad": bad.as_dict(),
        "nodes_on_bad_release": on_bad,
        "telemetry": scenario.telemetry.snapshot(),
        "prometheus": scenario.telemetry.to_prometheus(),
    }


def check_result(result: Dict[str, object]) -> List[str]:
    """The demo's invariants; returns failure strings (empty = pass)."""
    failures: List[str] = []
    good, bad = result["good"], result["bad"]
    if good["outcome"] != "completed":
        failures.append(
            f"good release did not complete: {good['outcome']}")
    if good["converged_nodes"] != result["nodes"]:
        failures.append(
            f"good release reached {good['converged_nodes']}"
            f"/{result['nodes']} nodes")
    if bad["outcome"] != "rolled-back":
        failures.append(
            f"bad release was not rolled back: {bad['outcome']}")
    if bad["waves"] != 1:
        failures.append(
            f"bad release survived past its canary wave "
            f"({bad['waves']} waves ran)")
    if result["nodes_on_bad_release"] != 0:
        failures.append(
            f"{result['nodes_on_bad_release']} nodes still run the "
            "bad release after rollback")
    census = bad["final_census"]
    if census.get("healthy", 0) != result["nodes"]:
        failures.append(
            f"fleet not fully healthy after rollback: {census}")
    if not result["telemetry"]["waves"]:
        failures.append("telemetry export captured no wave censuses")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    """Demo entry point (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro.fleet.demo",
        description="staged-rollout acceptance demo")
    parser.add_argument("--nodes", type=int, default=200,
                        help="fleet size (default 200)")
    parser.add_argument("--seed", type=int, default=7,
                        help="rollout seed (default 7)")
    parser.add_argument("--engine", default=None,
                        help="execution tier for every node")
    parser.add_argument("--json-out", metavar="PATH", default=None,
                        help="write the first pass's result document "
                             "to PATH")
    args = parser.parse_args(argv)

    first = run_scenario(args.nodes, args.seed, engine=args.engine)
    second = run_scenario(args.nodes, args.seed, engine=args.engine)

    failures = check_result(first)
    pairs: Tuple[Tuple[str, str, str], ...] = (
        ("good", "signature", "good rollout signature"),
        ("bad", "signature", "bad rollout signature"),
    )
    for section, key, label in pairs:
        if first[section][key] != second[section][key]:
            failures.append(f"{label} diverged between invocations")
    if first["telemetry"] != second["telemetry"]:
        failures.append("telemetry export diverged between "
                        "invocations")

    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(first, fh, indent=2, sort_keys=True)
            fh.write("\n")

    print(f"fleet demo: {args.nodes} nodes seed={args.seed}")
    print(f"  good  {first['good']['outcome']:12s} "
          f"converged={first['good']['converged_nodes']} "
          f"sig={first['good']['signature'][:16]}")
    print(f"  bad   {first['bad']['outcome']:12s} "
          f"waves={first['bad']['waves']} "
          f"census={first['bad']['final_census']} "
          f"sig={first['bad']['signature'][:16]}")
    print(f"  events {first['telemetry']['events']}")
    if failures:
        for failure in failures:
            print(f"  FAIL: {failure}")
        return 1
    print("  determinism: two invocations bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
