"""Fleet under fire: rollouts over an unreliable control channel.

``make fleet`` proves the control plane works when the network does.
This harness replays the canonical scenario while the *channel*
misbehaves: every schedule in
:data:`~repro.faultinject.chaos.FLEET_SCHEDULES` arms the transport's
fault plane — drops, duplicates, delays past the RPC deadline,
partitions, crashing node agents — and both the good and the planted
bad release are rolled out under it.  For every replay the harness
checks:

1. **Outcome sanity** — the bad release never completes: either its
   canary census or the wave's unreachable budget halts it, and the
   rollout ends ``rolled-back``.
2. **No node left behind** — after a rolled-back rollout, any node
   still running the withdrawn release is *accounted for*: listed
   ``unreachable`` (the operator's queue) or quarantined as stuck —
   parked, not forgotten.  Reachable nodes never keep the bad bits.
3. **Fleet integrity** — every node kernel passes the isolation
   invariants and the taint/oops books balance, exactly as in
   ``make chaos``.
4. **Crash + resume** — per schedule, the rollout is additionally run
   with ``fleet.orch.crash`` armed: the orchestrator dies at a
   journal-append boundary, ``resume()`` picks the journal up
   (repeatedly, if the crash schedule keeps firing), and the finished
   report's signature must be **bit-identical** to the uninterrupted
   run's.
5. **Determinism** — ``--check-determinism`` replays the whole
   harness twice and compares report signatures (``make fleet-chaos``
   does this by default).

``REPRO_FLEET_SMOKE=1`` (CI) shrinks the fleet and the schedule list.

Run it: ``PYTHONPATH=src python -m repro.fleet.chaos``.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.faultinject.chaos import FLEET_SCHEDULES, case_seed
from repro.faultinject.invariants import (
    collect_violations,
    panic_path_consistent,
)
from repro.faultinject.plane import FaultAction, NthHit
from repro.fleet.adapters.sim import FleetScenario, build_scenario
from repro.fleet.journal import MemoryJournal, OrchestratorCrash

DEFAULT_SEED = 20230622  # HotOS'23
DEFAULT_SIZE = 24
SMOKE_SIZE = 10
#: the schedules the CI smoke run keeps (cheapest + the kitchen sink)
SMOKE_SCHEDULES = ("rpc-drops", "fleet-pressure")
#: journal-append ordinals the crash leg kills the orchestrator at
#: (a recurring schedule: the *resumed* orchestrator crashes again
#: every CRASH_EVERY live appends until the rollout finally lands)
CRASH_EVERY = 23
#: safety valve for the resume loop — far above any real replay
MAX_RESUMES = 200


@dataclass
class FleetCaseResult:
    """One (schedule × release) rollout under fire."""

    schedule: str
    release: str
    outcome: str
    signature: str
    rpc_retries: int
    rpc_unreachable: int
    stuck: int
    unreachable: int
    resumes: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every invariant held for this replay."""
        return not self.violations


@dataclass
class FleetChaosReport:
    """One full fleet-under-fire replay."""

    seed: int
    size: int
    results: List[FleetCaseResult]

    @property
    def violations(self) -> List[str]:
        """Every violation, labeled by schedule and release."""
        return [f"{r.schedule} × {r.release}: {v}"
                for r in self.results for v in r.violations]

    @property
    def clean(self) -> bool:
        """True when the whole replay held every invariant."""
        return not self.violations

    def signature(self) -> str:
        """Digest over every rollout signature — the determinism
        pin for whole-harness comparisons."""
        digest = hashlib.sha256()
        for r in self.results:
            digest.update(
                f"{r.schedule}:{r.release}:{r.outcome}:"
                f"{r.signature}:{r.resumes}".encode())
        return digest.hexdigest()


def _check_fleet(scenario: FleetScenario, report: object,
                 bad_release: bool) -> List[str]:
    """The god's-eye invariants: the harness may inspect nodes
    directly — the orchestrator may not."""
    violations: List[str] = []
    target = report.release_id
    accounted = set(report.stuck_nodes) | set(report.unreachable_nodes)
    for node in scenario.fleet.nodes():
        running = (node.current.release_id
                   if node.current is not None else None)
        if report.outcome == "rolled-back" and running == target:
            if node.node_id not in accounted:
                violations.append(
                    f"{node.node_id} still runs withdrawn {target} "
                    "but is neither unreachable nor quarantined")
            elif node.node_id in report.stuck_nodes \
                    and node.census() not in ("quarantined", "dead"):
                violations.append(
                    f"stuck node {node.node_id} was not parked "
                    f"(census={node.census()})")
        for problem in collect_violations(node.kernel):
            violations.append(f"{node.node_id}: {problem}")
        if not panic_path_consistent(node.kernel):
            violations.append(
                f"{node.node_id}: taint/oops mismatch")
    if bad_release and report.outcome == "completed":
        violations.append(
            "the planted bad release completed a full rollout")
    return violations


def run_fleet_case(schedule: str, release: str, seed: int,
                   size: int) -> FleetCaseResult:
    """One rollout of ``release`` under one channel schedule."""
    scenario = build_scenario(size, seed=seed)
    FLEET_SCHEDULES[schedule](scenario.transport.plane)
    target = (scenario.bad if release == "bad"
              else scenario.good)
    violations: List[str] = []
    try:
        report = scenario.orchestrator.rollout(
            target.release_id, seed=seed)
    except Exception as exc:  # noqa: BLE001 — the point of the harness
        return FleetCaseResult(
            schedule=schedule, release=release,
            outcome=f"escaped:{type(exc).__name__}", signature="",
            rpc_retries=0, rpc_unreachable=0, stuck=0, unreachable=0,
            violations=[
                "exception escaped the rollout under channel chaos: "
                f"{type(exc).__name__}: {exc}"])
    violations.extend(
        _check_fleet(scenario, report, bad_release=(release == "bad")))
    return FleetCaseResult(
        schedule=schedule, release=release, outcome=report.outcome,
        signature=report.signature(),
        rpc_retries=report.rpc_retries,
        rpc_unreachable=report.rpc_unreachable,
        stuck=len(report.stuck_nodes),
        unreachable=len(report.unreachable_nodes),
        violations=violations)


def run_crash_resume_case(schedule: str, release: str, seed: int,
                          size: int) -> FleetCaseResult:
    """The durability leg: same rollout, but the orchestrator is
    killed every :data:`CRASH_EVERY` journal appends and resumed from
    the journal until it lands — the finished signature must be
    bit-identical to the uninterrupted run's."""
    baseline = run_fleet_case(schedule, release, seed, size)
    scenario = build_scenario(size, seed=seed)
    FLEET_SCHEDULES[schedule](scenario.transport.plane)
    scenario.transport.plane.arm(
        "fleet.orch.crash", NthHit(CRASH_EVERY, every=True),
        FaultAction.panic())
    target = (scenario.bad if release == "bad"
              else scenario.good)
    journal = MemoryJournal()
    violations: List[str] = list(baseline.violations)
    report = None
    resumes = 0
    try:
        while report is None:
            try:
                if resumes == 0:
                    report = scenario.orchestrator.rollout(
                        target.release_id, seed=seed, journal=journal)
                else:
                    report = scenario.orchestrator.resume(journal)
            except OrchestratorCrash:
                resumes += 1
                if resumes > MAX_RESUMES:
                    raise RuntimeError(
                        "crash/resume loop never converged")
    except Exception as exc:  # noqa: BLE001 — the point of the harness
        return FleetCaseResult(
            schedule=schedule, release=release,
            outcome=f"escaped:{type(exc).__name__}", signature="",
            rpc_retries=0, rpc_unreachable=0, stuck=0, unreachable=0,
            resumes=resumes,
            violations=violations + [
                "exception escaped the crash/resume leg: "
                f"{type(exc).__name__}: {exc}"])
    if resumes == 0:
        violations.append(
            "crash leg never crashed — fleet.orch.crash is dead "
            "wiring")
    if not journal.complete():
        violations.append(
            "resumed rollout finished but its journal is not "
            "complete")
    if report.signature() != baseline.signature:
        violations.append(
            f"resumed signature {report.signature()[:16]} != "
            f"uninterrupted {baseline.signature[:16]} — the journal "
            "replay diverged")
    return FleetCaseResult(
        schedule=schedule, release=release,
        outcome=f"{report.outcome}+resumed", signature=baseline.signature,
        rpc_retries=report.rpc_retries,
        rpc_unreachable=report.rpc_unreachable,
        stuck=len(report.stuck_nodes),
        unreachable=len(report.unreachable_nodes),
        resumes=resumes, violations=violations)


def run_fleet_chaos(seed: int = DEFAULT_SEED,
                    size: int = DEFAULT_SIZE,
                    schedules: Optional[Sequence[str]] = None,
                    ) -> FleetChaosReport:
    """Replay both releases under every requested channel schedule,
    plus the crash/resume leg per pair."""
    names = list(schedules or FLEET_SCHEDULES)
    for name in names:
        if name not in FLEET_SCHEDULES:
            raise ValueError(
                f"unknown fleet schedule {name!r} "
                f"(have: {', '.join(FLEET_SCHEDULES)})")
    results: List[FleetCaseResult] = []
    for name in names:
        for release in ("good", "bad"):
            rollout_seed = case_seed(seed, f"fleet-{release}", name)
            results.append(run_fleet_case(
                name, release, rollout_seed, size))
            results.append(run_crash_resume_case(
                name, release, rollout_seed, size))
    return FleetChaosReport(seed=seed, size=size, results=results)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``make fleet-chaos``); returns exit status."""
    smoke = os.environ.get("REPRO_FLEET_SMOKE") == "1"
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.chaos",
        description="Roll releases out over an unreliable control "
                    "channel and check the fleet invariants.")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="master seed (default %(default)s)")
    parser.add_argument("--size", type=int,
                        default=SMOKE_SIZE if smoke else DEFAULT_SIZE,
                        help="fleet size per rollout "
                             "(default %(default)s)")
    parser.add_argument("--schedule", action="append", default=None,
                        choices=sorted(FLEET_SCHEDULES),
                        help="channel schedule to replay "
                             "(repeatable; default: all)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="replay twice and require identical "
                             "report signatures")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every replay result")
    args = parser.parse_args(argv)
    schedules = args.schedule or (
        list(SMOKE_SCHEDULES) if smoke else None)

    report = run_fleet_chaos(args.seed, args.size, schedules)
    if args.verbose:
        for r in report.results:
            mark = "ok " if r.ok else "BAD"
            print(f"  {mark} {r.schedule:>14} {r.release:<4} "
                  f"{r.outcome:<22} retries={r.rpc_retries:<3} "
                  f"unreachable={r.unreachable} stuck={r.stuck} "
                  f"resumes={r.resumes}")
    print(f"fleet-chaos: {len(report.results)} rollouts over "
          f"{report.size} nodes, {len(report.violations)} violations "
          f"(seed {report.seed})")
    status = 0
    for violation in report.violations:
        print(f"fleet-chaos: VIOLATION: {violation}")
        status = 1
    if args.check_determinism:
        again = run_fleet_chaos(args.seed, args.size, schedules)
        if again.signature() != report.signature():
            print("fleet-chaos: NONDETERMINISM: second replay "
                  "produced different rollout signatures")
            status = 1
        else:
            print("fleet-chaos: determinism check passed "
                  f"(signature {report.signature()[:16]}…)")
    return status


if __name__ == "__main__":
    sys.exit(main())
