"""The port the rollout services drive the fleet through.

Hexagonal boundary: everything in :mod:`repro.fleet.services` talks to
nodes exclusively via :class:`FleetPort` — deploy, soak, census,
rollback, subscribe — and never imports a :class:`Kernel`.  The
in-process simulated fleet (:mod:`repro.fleet.adapters.sim`) is the
one implementation today; the seam is what makes the orchestrator
testable against a handful of nodes and runnable against hundreds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

#: the health census vocabulary, in escalating order of trouble.
#: ``healthy``/``degraded``/``quarantined`` mirror the supervisor's
#: :class:`~repro.recovery.supervisor.HealthState`; ``deploy-failed``
#: marks a node that refused or failed the release (bad signature,
#: verifier rejection); ``unreachable`` marks a node the control
#: channel could not raise within its retry budget (a *transport*
#: verdict the orchestrator assigns — the node itself may be fine on
#: the far side of a partition); ``dead`` marks a panicked or tainted
#: kernel.
NODE_STATES: Tuple[str, ...] = (
    "healthy", "degraded", "quarantined", "deploy-failed",
    "unreachable", "dead")

#: census states the canary counts against a release's *health*;
#: ``unreachable`` is deliberately not here — it counts against the
#: wave's separate unreachable budget (you cannot blame a release for
#: a partition, but you also cannot certify a wave you cannot see)
UNHEALTHY_STATES: Tuple[str, ...] = (
    "degraded", "quarantined", "deploy-failed", "dead")


@dataclass(frozen=True)
class DeployResult:
    """Outcome of pushing one release to one node."""

    node_id: str
    release_id: str
    ok: bool
    #: machine-readable failure class ("" on success): ``signature``,
    #: ``verifier``, ``dead``
    error: str = ""
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form for the rollout log."""
        return {"node_id": self.node_id, "release_id": self.release_id,
                "ok": self.ok, "error": self.error,
                "detail": self.detail}


class FleetPort:
    """What the control plane may do to a fleet (driven port).

    Implementations must be deterministic: :meth:`node_ids` has a
    stable order, and every method's effect is a pure function of the
    call sequence and the nodes' seeds.
    """

    def node_ids(self) -> List[str]:
        """Every node in the fleet, in stable (sorted) order."""
        raise NotImplementedError

    def deploy(self, node_id: str, release: object) -> DeployResult:
        """Push a signed release to one node: verify the signature,
        load through the node's pipeline, attach.  Never raises —
        failures come back in the :class:`DeployResult`."""
        raise NotImplementedError

    def rollback(self, node_id: str) -> Optional[str]:
        """Revert one node to the release it ran before the current
        one; returns the restored release id, or None when the node
        has nothing to roll back to (or is dead)."""
        raise NotImplementedError

    def quarantine(self, node_id: str, reason: str) -> bool:
        """Park one node: quarantine its running release's breaker via
        the node's supervisor and mark the node agent quarantined (its
        census reports ``quarantined`` until the operator intervenes).
        The orchestrator uses this for nodes stuck mid-rollback —
        quarantined, not forgotten.  Returns True when the node
        acknowledged."""
        raise NotImplementedError

    def soak(self, node_id: str, runs: int) -> None:
        """Drive ``runs`` representative invocations through the
        node's hook chain so the supervisor can observe the release."""
        raise NotImplementedError

    def census(self, node_id: str) -> str:
        """The node's health classification (one of
        :data:`NODE_STATES`) for its current release."""
        raise NotImplementedError

    def current_release(self, node_id: str) -> Optional[str]:
        """The release id the node currently runs (None pre-install)."""
        raise NotImplementedError

    def subscribe(self, node_id: str,
                  handler: Callable[[object], None],
                  kinds: Optional[Tuple[str, ...]] = None) -> object:
        """Subscribe to one node's kernel event stream (see
        :class:`~repro.kernel.events.EventBus`); returns the
        subscription handle."""
        raise NotImplementedError

    def snapshot(self, node_id: str) -> Dict[str, object]:
        """A compact telemetry roll-up for one node (the aggregator's
        per-node census source)."""
        raise NotImplementedError
