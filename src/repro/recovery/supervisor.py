"""The recovery supervisor: health states, circuit breaker, escalation.

Per supervised program the supervisor keeps a health-state machine —

    HEALTHY -> DEGRADED -> QUARANTINED -> (half-open trial) -> HEALTHY

driven by a sliding-window fault counter on the virtual clock.  A
quarantined program is auto-detached from every hook chain and its
runs are refused with ``-EAGAIN`` until the breaker half-opens; then
it is auto-reloaded through the load cache (an identical-bytecode
reload skips the verifier) and given one trial run.  Transient
negative-errno failures injected by the fault plane are retried with
exponential backoff before they count as faults at all.

Containment of an oops goes through the program's
:class:`~repro.recovery.domain.FaultDomain`: unwind, verify the
containment invariant, then :meth:`~repro.kernel.kernel.Kernel.soft_reset`
clears the scoped taint.  If the invariant fails — a lock survived the
unwind, RCU stayed unbalanced, the pool leaked — or the kernel-wide
oops budget is exhausted, the supervisor *escalates*: a real panic
(:class:`~repro.errors.KernelPanic`), taint forever.

Everything the supervisor decides is appended to an audit trail
(mirrored into the kernel log and the telemetry trace ring) whose
content is a pure function of the fault-plane seed — determinism is
part of the recovery contract, and ``tests/recovery`` enforces it.
"""

from __future__ import annotations

import enum
import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import (
    KernelOops,
    KernelPanic,
    KernelSafetyViolation,
    ReproError,
    VerifierError,
)
from repro.recovery.domain import FaultDomain, UnwindReport

#: errnos the supervisor itself speaks
EAGAIN = 11
EFAULT = 14

_U64 = (1 << 64) - 1


def _to_u64(value: int) -> int:
    return value & _U64


def _to_s64(value: int) -> int:
    value &= _U64
    return value - (1 << 64) if value >= (1 << 63) else value


def _is_errno(value: int) -> bool:
    """True when a u64 return value decodes to a negative errno."""
    return -4095 <= _to_s64(value) <= -1


class HealthState(enum.Enum):
    """Per-program health, in escalating order of distrust."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"


@dataclass
class RecoveryPolicy:
    """Tunables for the supervisor (all time in virtual ns)."""

    #: sliding window the circuit breaker counts faults over
    window_ns: int = 1_000_000_000
    #: faults in window that mark a program DEGRADED
    degrade_threshold: int = 1
    #: faults in window that trip the breaker (auto-detach + quarantine)
    quarantine_threshold: int = 3
    #: first retry backoff for injected transient errno failures
    backoff_base_ns: int = 10_000
    #: backoff multiplier per retry / per consecutive quarantine
    backoff_factor: int = 2
    #: transient-errno retries per invocation before the failure counts
    max_retries: int = 2
    #: how long the breaker stays open before half-opening
    quarantine_ns: int = 2_000_000
    #: contained oopses the whole kernel will absorb before the
    #: supervisor stops trusting itself and escalates to a panic
    oops_budget: int = 64


@dataclass
class AuditEvent:
    """One supervisor decision, stamped on the virtual clock."""

    timestamp_ns: int
    kind: str
    tag: str
    detail: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """One audit-trail line."""
        parts = " ".join(f"{k}={v}" for k, v in
                         sorted(self.detail.items()))
        return (f"[{self.timestamp_ns}] {self.kind} {self.tag}"
                + (f" {parts}" if parts else ""))

    def signature_bytes(self) -> bytes:
        """Stable serialization for determinism digests."""
        return repr((self.timestamp_ns, self.kind, self.tag,
                     sorted(self.detail.items()))).encode()


@dataclass
class ProgramHealth:
    """Supervisor-side state for one program tag."""

    tag: str
    state: HealthState = HealthState.HEALTHY
    #: (timestamp_ns, kind) of recent faults, pruned to the window
    fault_log: Deque[Tuple[int, str]] = field(default_factory=deque)
    faults_total: int = 0
    retries: int = 0
    refusals: int = 0
    quarantines: int = 0
    consecutive_quarantines: int = 0
    reloads: int = 0
    contained: int = 0
    release_at_ns: Optional[int] = None
    #: half-open: the next run is a trial; success -> HEALTHY,
    #: any fault -> straight back to quarantine with a longer window
    trial: bool = False

    @property
    def framework(self) -> str:
        """Which framework the tag belongs to."""
        return self.tag.split(":", 1)[0]

    @property
    def name(self) -> str:
        """Program name without the framework prefix."""
        return self.tag.split(":", 1)[-1]

    def as_dict(self) -> Dict[str, object]:
        """bpftool-facing snapshot."""
        return {
            "tag": self.tag,
            "state": self.state.value,
            "faults_in_window": len(self.fault_log),
            "faults_total": self.faults_total,
            "retries": self.retries,
            "refusals": self.refusals,
            "quarantines": self.quarantines,
            "reloads": self.reloads,
            "contained": self.contained,
            "release_at_ns": self.release_at_ns,
            "trial": self.trial,
        }


class Supervisor:
    """Fault containment and health management for one kernel."""

    def __init__(self, kernel: object,
                 policy: Optional[RecoveryPolicy] = None) -> None:
        self.kernel = kernel
        self.policy = policy or RecoveryPolicy()
        #: dispatch paths consult this; False parks the supervisor
        #: without tearing down its state
        self.active = True
        self._health: Dict[str, ProgramHealth] = {}
        self.audit: List[AuditEvent] = []
        self.contained_total = 0
        self.escalations = 0

    # -- bookkeeping --------------------------------------------------------

    def health(self, tag: str) -> ProgramHealth:
        """The health record for one program tag (created on demand)."""
        record = self._health.get(tag)
        if record is None:
            record = ProgramHealth(tag=tag)
            self._health[tag] = record
        return record

    def statuses(self) -> List[Dict[str, object]]:
        """Every supervised program's health snapshot, stable order."""
        return [self._health[tag].as_dict()
                for tag in sorted(self._health)]

    def _audit_event(self, kind: str, tag: str,
                     **detail: object) -> None:
        now = self.kernel.clock.now_ns
        event = AuditEvent(now, kind, tag, detail)
        self.audit.append(event)
        self.kernel.log.log(now, f"recovery: {event.render()}",
                            level="warn")
        self.kernel.telemetry.record_recovery_event(kind, tag, detail)

    def audit_signature(self) -> str:
        """SHA-256 over the audit trail: same seed, same decisions."""
        digest = hashlib.sha256()
        for event in self.audit:
            digest.update(event.signature_bytes())
        return digest.hexdigest()

    def audit_for(self, tag: str) -> List[AuditEvent]:
        """The audit trail restricted to one program."""
        return [e for e in self.audit if e.tag == tag]

    # -- health-state machine ------------------------------------------------

    def _set_state(self, record: ProgramHealth,
                   new_state: HealthState, reason: str) -> None:
        """The one place health state changes: updates the record and
        publishes the transition on the kernel event stream, so fleet
        orchestrators see every canary-relevant move without reading
        supervisor internals."""
        old = record.state
        if old is new_state:
            return
        record.state = new_state
        self.kernel.events.publish(
            "health", source=record.tag, old=old.value,
            new=new_state.value, reason=reason)

    def _prune_window(self, record: ProgramHealth, now_ns: int) -> None:
        horizon = now_ns - self.policy.window_ns
        while record.fault_log and record.fault_log[0][0] < horizon:
            record.fault_log.popleft()

    def note_fault(self, tag: str, kind: str) -> HealthState:
        """Fold one fault into the breaker; returns the new state."""
        record = self.health(tag)
        now = self.kernel.clock.now_ns
        record.fault_log.append((now, kind))
        record.faults_total += 1
        self._prune_window(record, now)
        in_window = len(record.fault_log)
        if record.trial:
            self._quarantine(record,
                             reason=f"half-open trial failed ({kind})")
        elif record.state is HealthState.QUARANTINED:
            pass  # already parked; nothing escalates from here
        elif in_window >= self.policy.quarantine_threshold:
            self._quarantine(
                record, reason=f"{in_window} faults within "
                f"{self.policy.window_ns}ns ({kind})")
        elif record.state is HealthState.HEALTHY \
                and in_window >= self.policy.degrade_threshold:
            self._set_state(record, HealthState.DEGRADED,
                            reason=f"fault:{kind}")
            self._audit_event("degraded", tag, fault=kind,
                              faults_in_window=in_window)
        return record.state

    def note_success(self, tag: str) -> None:
        """A clean run: closes a half-open trial, heals a degraded
        program whose fault window has emptied."""
        record = self.health(tag)
        now = self.kernel.clock.now_ns
        self._prune_window(record, now)
        if record.trial:
            record.trial = False
            self._set_state(record, HealthState.HEALTHY,
                            reason="trial-success")
            record.consecutive_quarantines = 0
            record.fault_log.clear()
            self._audit_event("recovered", tag,
                              reloads=record.reloads)
        elif record.state is HealthState.DEGRADED \
                and not record.fault_log:
            self._set_state(record, HealthState.HEALTHY,
                            reason="window-empty")
            self._audit_event("healed", tag)

    def _quarantine_span_ns(self, record: ProgramHealth) -> int:
        exponent = max(0, record.consecutive_quarantines - 1)
        return self.policy.quarantine_ns * \
            (self.policy.backoff_factor ** exponent)

    def _quarantine(self, record: ProgramHealth, reason: str) -> None:
        self._set_state(record, HealthState.QUARANTINED,
                        reason=reason)
        record.trial = False
        record.quarantines += 1
        record.consecutive_quarantines += 1
        now = self.kernel.clock.now_ns
        record.release_at_ns = now + self._quarantine_span_ns(record)
        detached = self.kernel.hooks.detach_everywhere(record.tag)
        self._audit_event(
            "quarantine", record.tag, reason=reason,
            detached_hooks=detached,
            release_at_ns=record.release_at_ns)

    def quarantine(self, tag: str, reason: str = "manual") -> None:
        """Operator-initiated quarantine (``bpftool prog quarantine``)."""
        self._quarantine(self.health(tag), reason=reason)

    def reset_breakers(self, sources, reason: str = "soft-reset",
                       ) -> int:
        """Reset the circuit breaker for every tag in ``sources``:
        clear the half-open trial flag, the consecutive-quarantine
        backoff, the fault window and the release deadline, and put
        the program back to HEALTHY.  Called by
        :meth:`~repro.kernel.kernel.Kernel.soft_reset` so a node
        rolled back to a prior release starts clean — note it does
        *not* reattach anything quarantine detached; redeploying the
        program is the caller's job.  Returns how many records were
        actually reset."""
        if isinstance(sources, str):
            sources = (sources,)
        reset = 0
        for tag in sorted(set(sources)):
            record = self._health.get(tag)
            if record is None:
                continue
            dirty = (record.trial or record.fault_log
                     or record.consecutive_quarantines
                     or record.release_at_ns is not None
                     or record.state is not HealthState.HEALTHY)
            if not dirty:
                continue
            record.trial = False
            record.consecutive_quarantines = 0
            record.fault_log.clear()
            record.release_at_ns = None
            self._set_state(record, HealthState.HEALTHY,
                            reason=f"breaker-reset ({reason})")
            self._audit_event("breaker-reset", tag, reason=reason)
            reset += 1
        return reset

    # -- gate: refusal and half-open ------------------------------------------

    def gate(self, tag: str,
             reloader: Optional[Callable[[], Optional[object]]] = None,
             ) -> bool:
        """Pre-dispatch check.  Returns True when the run must be
        *refused* (breaker open); on half-open it auto-reloads through
        ``reloader`` and admits a trial run."""
        record = self.health(tag)
        if record.state is not HealthState.QUARANTINED:
            return False
        now = self.kernel.clock.now_ns
        if record.release_at_ns is not None \
                and now < record.release_at_ns:
            record.refusals += 1
            if record.refusals == 1 or record.refusals % 64 == 0:
                # audit the first refusal (and a heartbeat), not all
                self._audit_event("refused", tag,
                                  refusals=record.refusals,
                                  release_at_ns=record.release_at_ns)
            return True
        # breaker half-opens: reload, then admit one trial run
        self._audit_event("half-open", tag)
        if reloader is not None and reloader() is None:
            # reload failed; stay quarantined, extend the window
            record.release_at_ns = now + self._quarantine_span_ns(record)
            self._audit_event("reload-failed", tag,
                              release_at_ns=record.release_at_ns)
            return True
        self._set_state(record, HealthState.DEGRADED,
                        reason="half-open")
        record.trial = True
        return False

    # -- containment ----------------------------------------------------------

    def contain(self, tag: str, exc: BaseException,
                domain: FaultDomain) -> UnwindReport:
        """Unwind the fault domain, verify the containment invariant,
        clear the scoped taint.  Raises
        :class:`~repro.errors.KernelPanic` when containment itself
        fails or the oops budget is exhausted."""
        report = domain.unwind()
        problems = domain.verify()
        if problems:
            self._escalate(
                f"containment invariant failed for {tag}: "
                + "; ".join(problems), source=tag)
        self.contained_total += 1
        record = self.health(tag)
        record.contained += 1
        if self.contained_total > self.policy.oops_budget:
            self._escalate(
                f"oops budget ({self.policy.oops_budget}) exhausted "
                f"containing {tag}", source=tag)
        # every oops recorded during this supervised invocation belongs
        # to the domain, whatever source string it was stamped with
        sources = {tag, getattr(exc, "source", tag)}
        sources.update(
            oops.source for oops in
            self.kernel.log.oopses[domain.oops_mark:]
            if not oops.contained)
        # breakers=False: mid-containment the breaker state *is* the
        # health signal — note_fault right after this must see it
        cleared = self.kernel.soft_reset(
            sources,
            reason=f"fault domain unwound "
                   f"({report.total_actions} actions)",
            breakers=False)
        category = getattr(exc, "category", type(exc).__name__)
        detail = report.as_dict()
        detail.pop("tag", None)
        self._audit_event("contain", tag, category=category,
                          oopses_cleared=cleared, **detail)
        self.kernel.telemetry.record_containment(tag, category)
        return report

    def _escalate(self, reason: str, source: str) -> None:
        self.escalations += 1
        self._audit_event("escalate", source, reason=reason)
        self.kernel.log.panic(self.kernel.clock.now_ns, reason,
                              source=source)
        raise KernelPanic(reason, source=source)

    # -- supervised eBPF dispatch ----------------------------------------------

    def run_ebpf(self, subsystem: object, prog: object,
                 thunk: Callable[[], int]) -> int:
        """One supervised program invocation: quarantine gate,
        transient-errno retry with exponential backoff, containment of
        anything that oopses."""
        tag = f"bpf:{prog.name}"
        if self.gate(tag, reloader=lambda: self._reload_ebpf(
                subsystem, prog, tag)):
            return _to_u64(-EAGAIN)
        plane = self.kernel.faults
        record = self.health(tag)
        attempt = 0
        while True:
            domain = FaultDomain(self.kernel, tag)
            mark = len(plane.records)
            try:
                value = thunk()
            except KernelSafetyViolation as exc:
                self.contain(tag, exc, domain)
                self.note_fault(
                    tag, f"oops:{getattr(exc, 'category', 'oops')}")
                return _to_u64(-EFAULT)
            injected_errno = any(
                r.kind == "errno" for r in plane.records[mark:])
            if injected_errno and _is_errno(value) \
                    and attempt < self.policy.max_retries:
                attempt += 1
                record.retries += 1
                backoff = self.policy.backoff_base_ns * \
                    (self.policy.backoff_factor ** (attempt - 1))
                self._audit_event(
                    "retry", tag, attempt=attempt,
                    backoff_ns=backoff, errno=-_to_s64(value))
                self.kernel.clock.advance(backoff)
                continue
            if injected_errno and _is_errno(value):
                # retries exhausted: the transient failure is now real
                self.note_fault(tag, f"errno:{-_to_s64(value)}")
            else:
                self.note_success(tag)
            return value

    def _reload_ebpf(self, subsystem: object, prog: object,
                     tag: str) -> Optional[object]:
        """Half-open auto-reload: push the accepted bytecode back
        through the load pipeline (an identical reload is a cache hit
        and skips the verifier entirely)."""
        cache = subsystem.load_cache
        hits_before = cache.hits if cache is not None else 0
        try:
            reloaded = subsystem.load_program(
                prog.insns, prog.prog_type, name=prog.name)
        except ReproError as exc:
            self._audit_event("reload-error", tag,
                              error=type(exc).__name__)
            return None
        record = self.health(tag)
        record.reloads += 1
        self._audit_event(
            "reload", tag, prog_id=reloaded.prog_id,
            cache_hit=(cache is not None
                       and cache.hits > hits_before))
        return reloaded

    # -- supervised eBPF loading -----------------------------------------------

    def load_ebpf(self, subsystem: object, name: str,
                  thunk: Callable[[], object]) -> object:
        """Supervised trip through the load pipeline: transient
        injected load errnos are retried with backoff; a verifier
        crash ([54] class) is contained — there is no run state to
        unwind — and surfaces as a plain rejection."""
        tag = f"bpf:{name}"
        plane = self.kernel.faults
        record = self.health(tag)
        attempt = 0
        while True:
            domain = FaultDomain(self.kernel, tag)
            mark = len(plane.records)
            try:
                return thunk()
            except KernelOops as exc:
                self.contain(tag, exc, domain)
                self.note_fault(tag, "load-oops")
                raise VerifierError(
                    f"verifier fault contained during load of "
                    f"({name}): {exc}") from exc
            except VerifierError as exc:
                injected = any(
                    r.kind == "errno" and r.site.startswith("load.")
                    for r in plane.records[mark:])
                if injected and attempt < self.policy.max_retries:
                    attempt += 1
                    record.retries += 1
                    backoff = self.policy.backoff_base_ns * \
                        (self.policy.backoff_factor ** (attempt - 1))
                    self._audit_event("retry", tag, attempt=attempt,
                                      backoff_ns=backoff, stage="load")
                    self.kernel.clock.advance(backoff)
                    continue
                if injected:
                    self.note_fault(tag, "load-errno")
                raise
