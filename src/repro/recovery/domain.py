"""Per-program fault domains: what a program holds, and how to unwind it.

A domain is snapshotted at dispatch entry (RCU nesting, per-CPU
preempt/irq counts) and records the program's attribution tag plus any
framework-side state (the SafeLang cleanup list and memory pool).
Everything else the program can hold — spinlocks, refcounts, program
stacks, ringbuf reservations — is already tracked *by tag* in the
kernel substrate, so the unwind needs no shadow bookkeeping: it asks
the registries.

``unwind()`` releases exactly the domain's state, in the order real
recovery code would: trusted destructors first (they release in LIFO
order and must not fail), then force-release of anything the
destructors did not cover, then control-state rebalancing (RCU,
preemption) back to the entry snapshot.  ``verify()`` afterwards is
the containment invariant: if the domain still holds anything, the
supervisor refuses to clear the taint and escalates instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

_RINGBUF_REC = re.compile(r"ringbuf\d+_rec$")


@dataclass
class UnwindReport:
    """What one domain unwind actually did (audit-trail payload)."""

    tag: str
    destructors_run: int = 0
    locks_released: int = 0
    rcu_rebalanced: int = 0
    preempt_rebalanced: int = 0
    irq_rebalanced: int = 0
    refs_reclaimed: int = 0
    allocs_freed: int = 0
    pool_bytes_freed: int = 0

    def as_dict(self) -> Dict[str, object]:
        """Audit/trace payload."""
        return {
            "tag": self.tag,
            "destructors_run": self.destructors_run,
            "locks_released": self.locks_released,
            "rcu_rebalanced": self.rcu_rebalanced,
            "preempt_rebalanced": self.preempt_rebalanced,
            "irq_rebalanced": self.irq_rebalanced,
            "refs_reclaimed": self.refs_reclaimed,
            "allocs_freed": self.allocs_freed,
            "pool_bytes_freed": self.pool_bytes_freed,
        }

    @property
    def total_actions(self) -> int:
        """How many resources the unwind actually touched."""
        return (self.destructors_run + self.locks_released
                + self.rcu_rebalanced + self.preempt_rebalanced
                + self.irq_rebalanced + self.refs_reclaimed
                + self.allocs_freed)


class FaultDomain:
    """One supervised program invocation's resource scope."""

    def __init__(self, kernel: object, tag: str,
                 cleanup: Optional[object] = None,
                 pool: Optional[object] = None) -> None:
        self.kernel = kernel
        #: attribution tag (``bpf:{name}`` / ``safelang:{name}``) —
        #: the same string every registry tracks holders by
        self.tag = tag
        #: the SafeLang trusted-cleanup list, when the framework has one
        self.cleanup = cleanup
        #: the per-CPU pool the invocation allocates from, if any
        self.pool = pool
        # entry snapshot: unwind rebalances *down to* this, so a
        # domain entered inside an outer critical section never
        # releases state it does not own
        self._rcu_nesting = kernel.rcu._nesting
        self._preempt = {cpu.cpu_id: cpu._preempt_count
                         for cpu in kernel.cpus}
        self._irq = {cpu.cpu_id: cpu._irq_depth
                     for cpu in kernel.cpus}
        #: oops-log high-water mark: every oops recorded after this
        #: index happened inside the supervised invocation and is
        #: attributable to the domain regardless of its source string
        self.oops_mark = len(kernel.log.oopses)

    # -- unwind -------------------------------------------------------------

    def unwind(self) -> UnwindReport:
        """Release everything the domain holds; idempotent and safe on
        an already-clean domain (every step is a no-op then)."""
        kernel = self.kernel
        report = UnwindReport(tag=self.tag)

        # 1. trusted destructors (LIFO, must-not-fail by construction)
        if self.cleanup is not None:
            report.destructors_run = self.cleanup.teardown()
        if self.pool is not None:
            report.pool_bytes_freed = self.pool.used
            self.pool.reset()

        # 2. force-release what the destructors did not cover
        for lock in kernel.locks.held_by(self.tag):
            lock.force_unlock(source=f"unwind({self.tag})")
            report.locks_released += 1
        report.refs_reclaimed = kernel.refs.reclaim(self.tag)
        for alloc in list(kernel.mem.live_allocations()):
            if alloc.owner != self.tag:
                continue
            if alloc.type_name == "bpf_stack" \
                    or _RINGBUF_REC.match(alloc.type_name):
                kernel.mem.kfree(alloc)
                report.allocs_freed += 1

        # 3. rebalance control state back to the entry snapshot
        rcu = kernel.rcu
        while rcu._nesting > self._rcu_nesting:
            rcu.read_unlock()
            report.rcu_rebalanced += 1
        for cpu in kernel.cpus:
            while cpu._preempt_count > self._preempt[cpu.cpu_id]:
                cpu.preempt_enable()
                report.preempt_rebalanced += 1
            while cpu._irq_depth > self._irq[cpu.cpu_id]:
                cpu.irq_exit()
                report.irq_rebalanced += 1
        return report

    # -- containment invariant ----------------------------------------------

    def verify(self) -> List[str]:
        """Post-unwind containment invariant: the domain must hold
        nothing.  A non-empty answer means containment *failed* and
        the supervisor escalates to a panic instead of clearing taint."""
        kernel = self.kernel
        problems: List[str] = []
        held = kernel.locks.held_by(self.tag)
        if held:
            names = ", ".join(lk.name for lk in held)
            problems.append(f"leaked lock(s) after unwind: {names}")
        if kernel.rcu._nesting > self._rcu_nesting:
            problems.append(
                f"unbalanced RCU after unwind: nesting "
                f"{kernel.rcu._nesting} > entry {self._rcu_nesting}")
        for cpu in kernel.cpus:
            if cpu._preempt_count > self._preempt[cpu.cpu_id]:
                problems.append(
                    f"cpu{cpu.cpu_id} preempt_count "
                    f"{cpu._preempt_count} above entry snapshot")
        if kernel.refs.outstanding_for(self.tag):
            problems.append(
                f"{self.tag} still holds references after unwind")
        if self.pool is not None and self.pool.used != 0:
            problems.append(
                f"pool leak after unwind: {self.pool.used} bytes")
        if self.cleanup is not None and not self.cleanup.torn_down:
            problems.append("cleanup record block not returned to pool")
        for alloc in kernel.mem.live_allocations():
            if alloc.owner == self.tag and (
                    alloc.type_name == "bpf_stack"
                    or _RINGBUF_REC.match(alloc.type_name)):
                problems.append(
                    f"live {alloc.type_name} at {alloc.base:#x} "
                    "after unwind")
        return problems
