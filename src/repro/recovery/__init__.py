"""Supervised fault containment: domains, health states, soft reset.

The paper's §3 bet is that runtime mechanisms can replace static
verification; this package completes the bet by making extension
failure *recoverable*.  Every supervised program runs inside a
:class:`FaultDomain` that knows exactly what the program holds; when
it oopses, the :class:`Supervisor` unwinds only that domain, clears
the scoped taint (:meth:`~repro.kernel.kernel.Kernel.soft_reset`),
and manages the program's health — degrade, quarantine behind a
sliding-window circuit breaker, auto-reload from the load cache when
the breaker half-opens — escalating to a real panic only when a
containment invariant fails or the oops budget runs out.
"""

from repro.recovery.domain import FaultDomain, UnwindReport
from repro.recovery.supervisor import (
    AuditEvent,
    HealthState,
    ProgramHealth,
    RecoveryPolicy,
    Supervisor,
)

__all__ = [
    "AuditEvent",
    "FaultDomain",
    "HealthState",
    "ProgramHealth",
    "RecoveryPolicy",
    "Supervisor",
    "UnwindReport",
]
