"""Shared exception hierarchy for the reproduction.

Three families of failures exist in the modeled system, mirroring the
paper's taxonomy:

* :class:`KernelSafetyViolation` — a safety property was violated at
  runtime inside the simulated kernel (the events the eBPF verifier is
  supposed to make impossible, per paper §2).  These model crashes,
  stalls and leaks; they are raised by the kernel substrate itself.
* :class:`VerifierError` — the in-kernel eBPF verifier rejected a
  program at load time (paper §2.1).
* :class:`SafeLangError` — the trusted userspace toolchain of the
  proposed framework rejected a program at compile time (paper §3.1).

Keeping them in one module lets experiments classify outcomes uniformly
("rejected statically" / "contained at runtime" / "kernel compromised").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Kernel-side safety events
# ---------------------------------------------------------------------------

class KernelSafetyViolation(ReproError):
    """A safety property of the simulated kernel was violated.

    Instances carry enough context for experiments to attribute the
    violation to a component (extension code, helper, verifier, JIT).
    """

    #: short machine-readable category, e.g. ``"null-deref"``
    category: str = "generic"

    def __init__(self, message: str, *, source: str = "unknown") -> None:
        super().__init__(message)
        #: which component triggered the violation
        self.source = source


class KernelOops(KernelSafetyViolation):
    """The kernel oopsed: an unrecoverable fault in kernel context.

    Models a Linux oops/panic — e.g. the NULL-pointer dereference the
    paper triggers through ``bpf_sys_bpf`` (§2.2, CVE-2022-2785).
    """

    category = "oops"


class KernelPanic(KernelOops):
    """The kernel gave up for real: containment failed (a recovery
    invariant was violated) or the oops budget ran out, and the
    supervisor escalated the soft failure to a hard panic.  Unlike a
    plain oops this is never contained — it is the end state."""

    category = "panic"


class MemoryFault(KernelOops):
    """Access to an unmapped, freed, or out-of-bounds kernel address."""

    category = "memory-fault"

    def __init__(self, message: str, *, address: int = 0,
                 source: str = "unknown") -> None:
        super().__init__(message, source=source)
        self.address = address


class NullDereference(MemoryFault):
    """Dereference of a NULL (or near-NULL) pointer in kernel context."""

    category = "null-deref"


class UseAfterFree(MemoryFault):
    """Access to a kernel allocation after it was freed."""

    category = "use-after-free"


class OutOfBoundsAccess(MemoryFault):
    """Access beyond the bounds of a live kernel allocation."""

    category = "out-of-bounds"


class RcuStall(KernelSafetyViolation):
    """An RCU read-side critical section exceeded the stall timeout.

    Models the RCU stalls the paper provokes with nested ``bpf_loop``
    calls (§2.2, the termination-violation experiment).
    """

    category = "rcu-stall"


class KernelDeadlock(KernelSafetyViolation):
    """A lock-ordering violation or self-deadlock was detected."""

    category = "deadlock"


class ResourceLeak(KernelSafetyViolation):
    """A kernel resource (refcount, lock, memory) outlived its owner."""

    category = "resource-leak"


class WatchdogTimeout(KernelSafetyViolation):
    """The runtime watchdog of the proposed framework fired.

    Unlike the other violations, a watchdog timeout is *containment*:
    the extension is terminated safely and the kernel survives.
    """

    category = "watchdog-timeout"


class StackOverflow(KernelSafetyViolation):
    """Extension exceeded its stack budget (caught by stack protection)."""

    category = "stack-overflow"


class ProtectionKeyFault(KernelSafetyViolation):
    """A write violated a memory-protection-key domain (§4's
    lightweight hardware protection [27, 30, 33]).

    Unlike a plain memory fault, a pkey fault is *containment*: the
    errant write was stopped before corrupting the protected region.
    """

    category = "pkey-fault"

    def __init__(self, message: str, *, address: int = 0,
                 pkey: int = 0, source: str = "unknown") -> None:
        super().__init__(message, source=source)
        self.address = address
        self.pkey = pkey


# ---------------------------------------------------------------------------
# eBPF load-time and run-time errors
# ---------------------------------------------------------------------------

class BpfError(ReproError):
    """Base class for errors in the modeled eBPF subsystem."""


class VerifierError(BpfError):
    """The in-kernel verifier rejected a program.

    ``log`` carries the verifier's textual log, as the real verifier
    reports to userspace.
    """

    def __init__(self, message: str, *, log: str = "") -> None:
        super().__init__(message)
        self.log = log


class VerifierLimitExceeded(VerifierError):
    """Program exceeded a verifier complexity cap (size, states, paths)."""


class BpfRuntimeError(BpfError):
    """An eBPF program faulted at run time in a *recoverable* way.

    Recoverable errors (e.g. a helper returning ``-EINVAL``) are normal;
    unrecoverable ones surface as :class:`KernelSafetyViolation`.
    """


class InvalidProgram(BpfError):
    """Malformed bytecode that fails basic structural checks."""


# ---------------------------------------------------------------------------
# Proposed-framework (SafeLang) errors
# ---------------------------------------------------------------------------

class SafeLangError(ReproError):
    """Base class for errors in the proposed extension framework."""


class LexError(SafeLangError):
    """Tokenization failure in SafeLang source."""

    def __init__(self, message: str, *, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class ParseError(SafeLangError):
    """Syntax error in SafeLang source."""

    def __init__(self, message: str, *, line: int = 0, col: int = 0) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class TypeCheckError(SafeLangError):
    """Static type error in SafeLang source."""


class BorrowCheckError(SafeLangError):
    """Ownership/borrow rule violation in SafeLang source."""


class UnsafeCodeError(SafeLangError):
    """SafeLang source contains an ``unsafe`` block, which extensions
    are forbidden to use (paper §3.1: "only use safe Rust")."""


class SignatureError(SafeLangError):
    """Load-time signature validation failed (paper §3.1 / Fig. 5)."""


class ExtensionPanic(SafeLangError):
    """A SafeLang extension panicked at run time (checked arithmetic,
    explicit panic, ...).  Contained by the runtime: trusted cleanup
    runs and the kernel survives."""

    def __init__(self, message: str, *, cleanup_ok: bool = True) -> None:
        super().__init__(message)
        self.cleanup_ok = cleanup_ok
