"""The structured trace ring: bounded, overwriting, exportable.

Models the kernel's tracing ring buffers (``trace_pipe``, the BPF
ringbuf used by observability tools): a fixed-capacity in-memory ring
of structured events.  When the ring is full the *oldest* event is
overwritten and counted as dropped — readers that fall behind lose
history, never the writer (the same policy as the kernel's per-CPU
trace buffers).

Events are plain data; sinks are pluggable callables so tests (or a
future wire exporter) can observe events as they are emitted without
changing the emitters.  JSONL export/import round-trips every field.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

#: event kinds emitted by the instrumented subsystems
EVENT_KINDS = ("load", "run", "helper", "watchdog_kill", "oops",
               "map_op", "ringbuf_drop", "panic")


@dataclass
class TraceEvent:
    """One structured telemetry event."""

    ts_ns: int
    kind: str
    framework: str = ""
    prog: str = ""
    data: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        """One JSONL line for this event."""
        return json.dumps({"ts_ns": self.ts_ns, "kind": self.kind,
                           "framework": self.framework,
                           "prog": self.prog, "data": self.data},
                          sort_keys=True)

    @staticmethod
    def from_json(line: str) -> "TraceEvent":
        """Parse one JSONL line back into an event."""
        raw = json.loads(line)
        return TraceEvent(ts_ns=raw["ts_ns"], kind=raw["kind"],
                          framework=raw.get("framework", ""),
                          prog=raw.get("prog", ""),
                          data=raw.get("data", {}))


class TraceRing:
    """Bounded ring of :class:`TraceEvent` with pluggable sinks."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("trace ring capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        #: events overwritten because the ring was full
        self.dropped = 0
        #: every event ever emitted (dropped ones included)
        self.emitted = 0
        self._sinks: Dict[str, Callable[[TraceEvent], None]] = {}

    def __len__(self) -> int:
        return len(self._ring)

    def emit(self, event: TraceEvent) -> None:
        """Append an event, overwriting (and counting) the oldest
        when full, then fan out to every sink."""
        self.emitted += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        for sink in self._sinks.values():
            sink(event)

    def add_sink(self, name: str,
                 sink: Callable[[TraceEvent], None]) -> None:
        """Register ``sink(event)`` to observe every emission."""
        self._sinks[name] = sink

    def remove_sink(self, name: str) -> None:
        """Unregister a sink (no-op when absent)."""
        self._sinks.pop(name, None)

    def events(self, kind: Optional[str] = None,
               limit: Optional[int] = None) -> List[TraceEvent]:
        """Events currently held, oldest first, optionally filtered
        by ``kind`` and truncated to the last ``limit``."""
        out = [e for e in self._ring
               if kind is None or e.kind == kind]
        if limit is not None:
            out = out[-limit:]
        return out

    def clear(self) -> None:
        """Drop every held event (counters are kept)."""
        self._ring.clear()

    def to_jsonl(self) -> str:
        """The held events as JSON-lines text (trailing newline when
        non-empty)."""
        lines = [event.to_json() for event in self._ring]
        return "\n".join(lines) + ("\n" if lines else "")


def parse_jsonl(text: str) -> List[TraceEvent]:
    """Parse JSONL text (as produced by :meth:`TraceRing.to_jsonl`)
    back into events."""
    return [TraceEvent.from_json(line)
            for line in text.splitlines() if line.strip()]
