"""The kernel-wide telemetry hub.

One :class:`Telemetry` instance hangs off each simulated
:class:`~repro.kernel.kernel.Kernel` and is shared by *both* extension
frameworks — the eBPF baseline and the paper's SafeLang proposal — so
experiments can compare them over identical metric names.

The ``stats_enabled`` toggle models ``kernel.bpf_stats_enabled``: the
per-run hot-path accounting (``run_cnt``, ``run_time_ns``, insns,
helper counts, run trace events) is recorded only while it is on, so
the dispatch loop pays a single attribute test when it is off.
Failure accounting — watchdog fires, contained panics, kernel oopses,
ringbuf/perf drops, pool exhaustion — is *always* on, exactly like the
kernel's own drop counters: losing the record of a failure because a
sysctl was off would defeat the point of having it.

Load-pipeline accounting (verify / JIT / predecode timings, cache
hits, verifier work) is also always on: loading is control plane, not
hot path, and the §2.1 verification-cost argument needs those numbers
unconditionally.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry

#: per-packet latency bucket bounds (virtual ns): fine sub-µs steps
#: where XDP verdicts land, stretching to ms for queue-wait tails
NET_LATENCY_BUCKETS = (
    250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000,
    250000, 500000, 1000000, 4000000, 16000000)
from repro.telemetry.stats import ProgStats, ProgStatsTable
from repro.telemetry.trace import TraceEvent, TraceRing


class Telemetry:
    """Metrics registry + per-program stats + trace ring for one
    kernel."""

    def __init__(self, clock: Optional[object] = None,
                 stats_enabled: bool = False,
                 trace_capacity: int = 1024) -> None:
        #: the ``kernel.bpf_stats_enabled`` analogue
        self.stats_enabled = stats_enabled
        self.registry = MetricsRegistry()
        self.progs = ProgStatsTable()
        self.trace = TraceRing(capacity=trace_capacity)
        self._clock = clock

        reg = self.registry
        # run-side families (recorded only while stats_enabled)
        self._runs = reg.counter(
            "repro_prog_runs_total",
            "Invocations per program (run_cnt)",
            ("framework", "prog"))
        self._run_time = reg.counter(
            "repro_prog_run_time_ns_total",
            "Cumulative virtual run time per program (run_time_ns)",
            ("framework", "prog"))
        self._insns = reg.counter(
            "repro_prog_insns_total",
            "Instructions/steps executed per program",
            ("framework", "prog"))
        self._helper_calls = reg.counter(
            "repro_helper_calls_total",
            "Crossings into unverified kernel code, by symbol",
            ("framework", "helper"))
        self._run_time_hist = reg.histogram(
            "repro_run_time_ns",
            "Distribution of per-invocation virtual run time",
            ("framework",))
        # load pipeline (always recorded)
        self._loads = reg.counter(
            "repro_loads_total",
            "Programs through the load pipeline, by cache outcome",
            ("framework", "cache"))
        self._stage_ns = reg.counter(
            "repro_load_stage_ns_total",
            "Host wall time spent per load-pipeline stage",
            ("framework", "stage"))
        self._verifier_work = reg.counter(
            "repro_verifier_work_total",
            "Verifier effort, by unit (insns_processed / states)",
            ("unit",))
        self._verify_hist = reg.histogram(
            "repro_verifier_insns_processed",
            "Distribution of verifier insns processed per load", ())
        # failure accounting (always recorded)
        self._watchdog = reg.counter(
            "repro_watchdog_fires_total",
            "Watchdog budget exhaustions", ("framework", "prog"))
        self._panics = reg.counter(
            "repro_panics_total",
            "Contained extension panics", ("framework", "prog"))
        self._oops = reg.counter(
            "repro_oops_total",
            "Kernel oopses, by category and attributed source",
            ("category", "source"))
        self._rb_drops = reg.counter(
            "repro_ringbuf_drops_total",
            "Ring buffer records refused with -ENOSPC", ("map_fd",))
        self._rb_drop_bytes = reg.counter(
            "repro_ringbuf_dropped_bytes_total",
            "Bytes refused by full ring buffers", ("map_fd",))
        self._pe_drops = reg.counter(
            "repro_perf_event_drops_total",
            "Per-CPU perf buffer records lost", ("map_fd", "cpu"))
        self._pool_failures = reg.counter(
            "repro_pool_alloc_failures_total",
            "Per-CPU pool exhaustion events", ("cpu",))
        self._faults = reg.counter(
            "repro_faults_injected_total",
            "Faults delivered by the injection plane, by site and "
            "action", ("site", "action"))
        # data plane (always on: verdicts and drops are the product)
        self._net_verdicts = reg.counter(
            "repro_net_verdicts_total",
            "XDP program verdicts per NIC (aborted / drop / pass / "
            "tx / redirect)", ("nic", "verdict"))
        self._net_rx_drops = reg.counter(
            "repro_net_rx_drops_total",
            "Packets lost outside a program verdict, by reason "
            "(nic_drop / oversize / queue_overflow / redirect_gone)",
            ("nic", "reason"))
        self._net_latency = reg.histogram(
            "repro_net_latency_ns",
            "Per-packet virtual latency from NIC receive to verdict",
            ("nic",), buckets=NET_LATENCY_BUCKETS)
        # deterministic SMP (always on; idle while no run is active)
        self._smp_contention = reg.counter(
            "repro_smp_lock_contention_total",
            "Contended spinlock acquisitions under the deterministic "
            "SMP scheduler, by lock and spinning CPU",
            ("lock", "cpu"))
        self._smp_races = reg.counter(
            "repro_smp_races_total",
            "Data races flagged by the happens-before/lockset "
            "detector, by storage type", ("type_name",))
        self._smp_switches = reg.counter(
            "repro_smp_switches_total",
            "Cross-CPU task switches performed by interleaving "
            "schedules", ())
        # recovery accounting (always on; idle when no supervisor)
        self._recovery_events = reg.counter(
            "repro_recovery_events_total",
            "Supervisor decisions, by kind (retry / degraded / "
            "quarantine / contain / recovered / escalate / ...)",
            ("kind",))
        self._contained = reg.counter(
            "repro_oops_contained_total",
            "Kernel oopses contained by fault-domain unwind, by "
            "attributed source and category", ("source", "category"))
        # population gauges
        self._maps_live = reg.gauge(
            "repro_maps_live", "Live maps by type", ("type",))
        self._progs_loaded = reg.gauge(
            "repro_progs_loaded", "Loaded programs", ("framework",))

    # -- toggles ------------------------------------------------------------

    def enable(self) -> None:
        """Turn run-stats collection on (``bpf_stats_enabled=1``)."""
        self.stats_enabled = True

    def disable(self) -> None:
        """Turn run-stats collection off (``bpf_stats_enabled=0``)."""
        self.stats_enabled = False

    def _now(self) -> int:
        return self._clock.now_ns if self._clock is not None else 0

    # -- per-program rows ----------------------------------------------------

    def prog(self, framework: str, name: str,
             prog_id: Optional[int] = None) -> ProgStats:
        """The stats row for one program (created on first use)."""
        return self.progs.get(framework, name, prog_id)

    # -- run side (call only when stats_enabled) ------------------------------

    def record_run(self, framework: str, name: str, *,
                   run_time_ns: int, insns: int,
                   helper_calls: int) -> None:
        """Fold one invocation into the program's run stats and the
        registry, and trace it."""
        self.prog(framework, name).record_run(run_time_ns, insns,
                                              helper_calls)
        self._runs.labels(framework, name).inc()
        self._run_time.labels(framework, name).inc(run_time_ns)
        self._insns.labels(framework, name).inc(insns)
        self._run_time_hist.labels(framework).observe(run_time_ns)
        self.trace.emit(TraceEvent(
            self._now(), "run", framework, name,
            {"run_time_ns": run_time_ns, "insns": insns,
             "helper_calls": helper_calls}))

    def record_helper(self, framework: str, name: str,
                      symbol: str) -> None:
        """Count one helper/kcrate call and trace it."""
        self.prog(framework, name).record_helper(symbol)
        self._helper_calls.labels(framework, symbol).inc()
        self.trace.emit(TraceEvent(
            self._now(), "helper", framework, name,
            {"symbol": symbol}))

    # -- load pipeline (always on) ---------------------------------------------

    def record_load(self, framework: str, name: str, *,
                    prog_id: int = 0, cache_hit: bool = False,
                    verify_ns: int = 0, jit_ns: int = 0,
                    predecode_ns: int = 0, compile_ns: int = 0,
                    insns: int = 0,
                    insns_processed: int = 0,
                    states_explored: int = 0) -> None:
        """Record one trip through a framework's loading pipeline."""
        self.prog(framework, name, prog_id).record_load(
            cache_hit=cache_hit, verify_ns=verify_ns, jit_ns=jit_ns,
            predecode_ns=predecode_ns, compile_ns=compile_ns,
            insns_processed=insns_processed,
            states_explored=states_explored)
        self._loads.labels(
            framework, "hit" if cache_hit else "miss").inc()
        self._stage_ns.labels(framework, "verify").inc(verify_ns)
        self._stage_ns.labels(framework, "jit").inc(jit_ns)
        self._stage_ns.labels(framework, "predecode").inc(predecode_ns)
        self._stage_ns.labels(framework, "compile").inc(compile_ns)
        if not cache_hit:
            self._verifier_work.labels("insns_processed").inc(
                insns_processed)
            self._verifier_work.labels("states_explored").inc(
                states_explored)
            self._verify_hist.labels().observe(insns_processed)
        self._progs_loaded.labels(framework).inc()
        self.trace.emit(TraceEvent(
            self._now(), "load", framework, name,
            {"prog_id": prog_id, "cache_hit": cache_hit,
             "insns": insns, "verify_ns": verify_ns, "jit_ns": jit_ns,
             "predecode_ns": predecode_ns, "compile_ns": compile_ns,
             "insns_processed": insns_processed,
             "states_explored": states_explored}))

    # -- failure accounting (always on) ------------------------------------------

    def record_watchdog_fire(self, framework: str, name: str,
                             budget_ns: int) -> None:
        """Count a watchdog budget exhaustion and trace the kill."""
        self.prog(framework, name).watchdog_fires += 1
        self._watchdog.labels(framework, name).inc()
        self.trace.emit(TraceEvent(
            self._now(), "watchdog_kill", framework, name,
            {"budget_ns": budget_ns}))

    def record_panic(self, framework: str, name: str,
                     reason: str) -> None:
        """Count a contained extension panic."""
        self.prog(framework, name).panics += 1
        self._panics.labels(framework, name).inc()
        self.trace.emit(TraceEvent(
            self._now(), "panic", framework, name,
            {"reason": reason}))

    def record_oops(self, ts_ns: int, category: str,
                    source: str) -> None:
        """Count a kernel oops, attributing it to the responsible
        program when the source tag resolves to one."""
        self._oops.labels(category, source).inc()
        row = self.progs.by_source_tag(source)
        if row is not None:
            row.oopses += 1
        self.trace.emit(TraceEvent(
            ts_ns, "oops", "", source, {"category": category}))

    def record_ringbuf_drop(self, map_fd: int, requested: int, *,
                            cpu: Optional[int] = None) -> None:
        """Count one refused ring/perf-buffer record."""
        key = str(map_fd)
        if cpu is None:
            self._rb_drops.labels(key).inc()
            self._rb_drop_bytes.labels(key).inc(requested)
        else:
            self._pe_drops.labels(key, cpu).inc()
        self.trace.emit(TraceEvent(
            self._now(), "ringbuf_drop", "", "",
            {"map_fd": map_fd, "requested": requested, "cpu": cpu}))

    # -- data plane (always on) ----------------------------------------------------

    def net_verdict_counter(self, nic: str, verdict: str):
        """The verdict counter for one (nic, verdict) — hot-path
        callers cache the returned instrument across a batch."""
        return self._net_verdicts.labels(nic, verdict)

    def net_latency_histogram(self, nic: str):
        """The latency histogram for one NIC — likewise cached by the
        pipeline, observed once per packet."""
        return self._net_latency.labels(nic)

    def record_net_rx_drop(self, nic: str, reason: str,
                           count: int = 1) -> None:
        """Count packets lost outside a program verdict (NIC-level
        drop, RX queue overflow, vanished redirect target)."""
        self._net_rx_drops.labels(nic, reason).inc(count)

    # -- deterministic SMP (always on) ---------------------------------------------

    def record_lock_contention(self, lock: str, cpu: int) -> None:
        """Count one contended spinlock acquisition (a CPU genuinely
        spun waiting for another CPU's holder)."""
        self._smp_contention.labels(lock, cpu).inc()

    def record_race(self, type_name: str) -> None:
        """Count one detector-confirmed data race."""
        self._smp_races.labels(type_name).inc()

    def record_smp_switches(self, count: int) -> None:
        """Fold one SMP run's cross-CPU task switches in."""
        if count:
            self._smp_switches.labels().inc(count)

    def record_recovery_event(
            self, kind: str, tag: str,
            detail: Optional[Dict[str, object]] = None) -> None:
        """Count one supervisor decision and trace it."""
        self._recovery_events.labels(kind).inc()
        payload: Dict[str, object] = {"decision": kind}
        if detail:
            payload.update(detail)
        self.trace.emit(TraceEvent(
            self._now(), "recovery", "", tag, payload))

    def record_containment(self, source: str, category: str) -> None:
        """Count one contained oops, attributed to its domain."""
        self._contained.labels(source, category).inc()
        row = self.progs.by_source_tag(source)
        if row is not None:
            row.contained += 1

    def record_pool_failure(self, cpu_id: int) -> None:
        """Count a per-CPU pool exhaustion event."""
        self._pool_failures.labels(cpu_id).inc()

    def record_fault(self, site: str, action: str,
                     detail: Optional[Dict[str, object]] = None) -> None:
        """Count one injected fault and trace its delivery."""
        self._faults.labels(site, action).inc()
        payload: Dict[str, object] = {"action": action}
        if detail:
            payload.update(detail)
        self.trace.emit(TraceEvent(
            self._now(), "fault", "", site, payload))

    # -- population ---------------------------------------------------------------

    def record_map_created(self, map_type: str, map_fd: int) -> None:
        """Track a map creation (gauge + trace)."""
        self._maps_live.labels(map_type).inc()
        self.trace.emit(TraceEvent(
            self._now(), "map_op", "", "",
            {"op": "create", "type": map_type, "map_fd": map_fd}))

    def record_map_destroyed(self, map_type: str, map_fd: int) -> None:
        """Track a map teardown (gauge + trace)."""
        self._maps_live.labels(map_type).dec()
        self.trace.emit(TraceEvent(
            self._now(), "map_op", "", "",
            {"op": "destroy", "type": map_type, "map_fd": map_fd}))

    # -- snapshot -------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view of everything the hub holds."""
        families: List[Dict[str, object]] = []
        for family in self.registry.families():
            samples = []
            for label_values, inst in family.samples():
                labels = dict(zip(family.label_names, label_values))
                if family.kind == "histogram":
                    samples.append({
                        "labels": labels, "count": inst.count,
                        "sum": inst.total,
                        "p50": inst.quantile(0.5),
                        "p99": inst.quantile(0.99),
                        "p999": inst.quantile(0.999),
                        "buckets": [[bound, cum] for bound, cum
                                    in inst.cumulative()]})
                else:
                    samples.append({"labels": labels,
                                    "value": inst.value})
            families.append({"name": family.name, "kind": family.kind,
                             "help": family.help_text,
                             "samples": samples})
        return {
            "stats_enabled": self.stats_enabled,
            "metrics": families,
            "progs": [row.as_dict() for row in self.progs.rows()],
            "trace": {"capacity": self.trace.capacity,
                      "held": len(self.trace),
                      "emitted": self.trace.emitted,
                      "dropped": self.trace.dropped},
        }
