"""Per-program runtime and load-pipeline statistics.

The run-side fields mirror what ``kernel.bpf_stats_enabled`` makes
visible on real Linux (``run_cnt``/``run_time_ns`` in
``bpf_prog_info``) plus the simulation's richer view: instructions
executed, helper/kcrate boundary crossings, watchdog fires, contained
panics and oops attribution.  The load-side fields record where the
loading pipeline spent its host wall time (verify / JIT / predecode /
cache hit) and how hard the verifier worked — the §2.1 cost metrics,
captured per program instead of per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class ProgStats:
    """Cumulative statistics for one named program in one framework."""

    framework: str
    name: str
    prog_id: int = 0

    # -- run stats (gated by stats_enabled) --------------------------------
    run_cnt: int = 0
    run_time_ns: int = 0
    insns: int = 0
    helper_calls: int = 0
    #: helper/kcrate symbol -> call count
    helper_counts: Dict[str, int] = field(default_factory=dict)

    # -- failure accounting (always on) ------------------------------------
    watchdog_fires: int = 0
    panics: int = 0
    oopses: int = 0
    #: oopses contained by the recovery supervisor's domain unwind
    contained: int = 0

    # -- load pipeline (recorded at every load) ----------------------------
    loads: int = 0
    cache_hits: int = 0
    verify_ns: int = 0
    jit_ns: int = 0
    predecode_ns: int = 0
    compile_ns: int = 0
    verifier_insns_processed: int = 0
    verifier_states_explored: int = 0

    def record_run(self, run_time_ns: int, insns: int,
                   helper_calls: int) -> None:
        """Fold one invocation into the cumulative run stats."""
        self.run_cnt += 1
        self.run_time_ns += run_time_ns
        self.insns += insns
        self.helper_calls += helper_calls

    def record_helper(self, symbol: str) -> None:
        """Count one helper/kcrate call by symbol name."""
        self.helper_counts[symbol] = \
            self.helper_counts.get(symbol, 0) + 1

    def record_load(self, *, cache_hit: bool, verify_ns: int = 0,
                    jit_ns: int = 0, predecode_ns: int = 0,
                    compile_ns: int = 0, insns_processed: int = 0,
                    states_explored: int = 0) -> None:
        """Fold one trip through the load pipeline into the stats."""
        self.loads += 1
        if cache_hit:
            self.cache_hits += 1
        self.verify_ns += verify_ns
        self.jit_ns += jit_ns
        self.predecode_ns += predecode_ns
        self.compile_ns += compile_ns
        self.verifier_insns_processed += insns_processed
        self.verifier_states_explored += states_explored

    @property
    def avg_run_time_ns(self) -> float:
        """Mean virtual nanoseconds per run (0.0 before any run)."""
        return self.run_time_ns / self.run_cnt if self.run_cnt else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of every field."""
        return {
            "framework": self.framework,
            "name": self.name,
            "prog_id": self.prog_id,
            "run_cnt": self.run_cnt,
            "run_time_ns": self.run_time_ns,
            "avg_run_time_ns": self.avg_run_time_ns,
            "insns": self.insns,
            "helper_calls": self.helper_calls,
            "helper_counts": dict(sorted(self.helper_counts.items())),
            "watchdog_fires": self.watchdog_fires,
            "panics": self.panics,
            "oopses": self.oopses,
            "contained": self.contained,
            "loads": self.loads,
            "cache_hits": self.cache_hits,
            "verify_ns": self.verify_ns,
            "jit_ns": self.jit_ns,
            "predecode_ns": self.predecode_ns,
            "compile_ns": self.compile_ns,
            "verifier_insns_processed": self.verifier_insns_processed,
            "verifier_states_explored": self.verifier_states_explored,
        }


class ProgStatsTable:
    """All per-program stats, keyed by ``framework:name``."""

    def __init__(self) -> None:
        self._stats: Dict[str, ProgStats] = {}

    def get(self, framework: str, name: str,
            prog_id: Optional[int] = None) -> ProgStats:
        """The stats row for one program, created on first use."""
        key = f"{framework}:{name}"
        row = self._stats.get(key)
        if row is None:
            row = ProgStats(framework=framework, name=name)
            self._stats[key] = row
        if prog_id is not None:
            row.prog_id = prog_id
        return row

    def lookup(self, framework: str, name: str) -> Optional[ProgStats]:
        """The stats row if the program has ever been seen."""
        return self._stats.get(f"{framework}:{name}")

    def by_source_tag(self, source: str) -> Optional[ProgStats]:
        """Resolve an attribution tag (``bpf:name`` /
        ``safelang:name``) to its stats row, if registered."""
        if ":" not in source:
            return None
        framework, name = source.split(":", 1)
        if framework == "bpf":
            framework = "ebpf"
        return self._stats.get(f"{framework}:{name}")

    def rows(self) -> "list[ProgStats]":
        """Every stats row, sorted by key for deterministic output."""
        return [self._stats[key] for key in sorted(self._stats)]

    def __len__(self) -> int:
        return len(self._stats)
