"""Metric primitives: counters, gauges, fixed-bucket histograms.

The registry is deliberately shaped like the kernel's own stats
surfaces rather than a general TSDB client: metric families carry a
name, help text and a fixed label schema, and instruments are cheap
plain-attribute objects so the hot path pays one dict lookup at most —
and usually zero, because callers cache the instrument once (the way
``bpf_prog_inc_misses_counter`` holds a pointer, not a name).

Everything here is framework-agnostic; gating on the
``kernel.bpf_stats_enabled`` analogue happens in the callers (see
:mod:`repro.telemetry.core`), never inside the instruments.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: default histogram bucket upper bounds (ns-scale work): powers of 4
DEFAULT_BUCKETS = (64, 256, 1024, 4096, 16384, 65536, 262144,
                   1048576, 4194304)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter decrement ({amount}) forbidden")
        self.value += amount


class Gauge:
    """A value that can go up and down (pool usage, live programs)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int) -> None:
        """Set the gauge to ``value``."""
        self.value = value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` to the gauge."""
        self.value += amount

    def dec(self, amount: int = 1) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount


class Histogram:
    """A fixed-bucket histogram (cumulative on export, like
    Prometheus ``le`` buckets)."""

    __slots__ = ("bounds", "bucket_counts", "count", "total")

    def __init__(self, bounds: Sequence[int] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly "
                             f"increasing: {bounds!r}")
        self.bounds: Tuple[int, ...] = tuple(bounds)
        #: per-bucket (non-cumulative) observation counts; the last
        #: slot is the +Inf overflow bucket
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0

    def observe(self, value: int) -> None:
        """Record one observation.

        Bucket selection is a binary search over the bounds — the data
        plane observes per-packet latencies millions of times per bench
        run, so the linear scan this replaced was measurable."""
        self.count += 1
        self.total += value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1) from the buckets.

        Prometheus ``histogram_quantile`` semantics: find the bucket
        holding the target rank and interpolate linearly inside it.
        Observations beyond the last finite bound clamp to that bound;
        an empty histogram answers 0.0.  Deterministic — same
        observations, same answer — which is what lets bench runs
        assert bit-identical p50/p99/p999 across repeats."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile {q} outside (0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            in_bucket = self.bucket_counts[index]
            if cumulative + in_bucket >= rank:
                lower = self.bounds[index - 1] if index else 0
                if in_bucket == 0:
                    return float(bound)
                return lower + (bound - lower) * \
                    (rank - cumulative) / in_bucket
            cumulative += in_bucket
        return float(self.bounds[-1])

    def cumulative(self) -> List[Tuple[Optional[int], int]]:
        """``(upper_bound, cumulative_count)`` pairs; the final pair's
        bound is ``None`` meaning +Inf."""
        out: List[Tuple[Optional[int], int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((None, running + self.bucket_counts[-1]))
        return out

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class MetricFamily:
    """One named metric with a fixed label schema and one instrument
    per label-value combination."""

    def __init__(self, name: str, help_text: str, kind: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[int] = DEFAULT_BUCKETS) -> None:
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.help_text = help_text
        self.kind = kind
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets)
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, *values: object) -> object:
        """The instrument for one label-value combination,
        creating it on first use."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: got {len(values)} label values for "
                f"schema {self.label_names!r}")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self.buckets)
            self._children[key] = child
        return child

    def samples(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        """Every ``(label_values, instrument)`` pair, sorted by
        labels for deterministic export."""
        return sorted(self._children.items())

    def __len__(self) -> int:
        return len(self._children)


class MetricsRegistry:
    """The process-wide (here: kernel-wide) collection of metric
    families."""

    def __init__(self) -> None:
        self._families: "Dict[str, MetricFamily]" = {}

    def _family(self, name: str, help_text: str, kind: str,
                label_names: Sequence[str],
                buckets: Sequence[int]) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, help_text, kind, label_names,
                                  buckets)
            self._families[name] = family
            return family
        if family.kind != kind or family.label_names != tuple(label_names):
            raise ValueError(
                f"metric {name!r} re-registered with a different "
                f"kind/schema ({family.kind}/{family.label_names} vs "
                f"{kind}/{tuple(label_names)})")
        return family

    def counter(self, name: str, help_text: str = "",
                label_names: Sequence[str] = ()) -> MetricFamily:
        """Get or create a counter family."""
        return self._family(name, help_text, "counter", label_names,
                            DEFAULT_BUCKETS)

    def gauge(self, name: str, help_text: str = "",
              label_names: Sequence[str] = ()) -> MetricFamily:
        """Get or create a gauge family."""
        return self._family(name, help_text, "gauge", label_names,
                            DEFAULT_BUCKETS)

    def histogram(self, name: str, help_text: str = "",
                  label_names: Sequence[str] = (),
                  buckets: Sequence[int] = DEFAULT_BUCKETS
                  ) -> MetricFamily:
        """Get or create a histogram family."""
        return self._family(name, help_text, "histogram", label_names,
                            buckets)

    def families(self) -> List[MetricFamily]:
        """All registered families, sorted by name."""
        return [self._families[name]
                for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, if any."""
        return self._families.get(name)

    def __len__(self) -> int:
        return len(self._families)
