"""Exporters: JSON snapshot and Prometheus text exposition format.

Two serializations of the same :class:`~repro.telemetry.core.Telemetry`
hub, matching the two ways real deployments consume kernel stats —
``bpftool prog show --json`` style snapshots for tooling, and a
Prometheus scrape body for fleet dashboards.  Both come with parsers
so round-tripping is testable (and so a future multi-kernel aggregator
can re-ingest its own output).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.telemetry.core import Telemetry


def to_json(telemetry: Telemetry, indent: int = 2) -> str:
    """The full telemetry snapshot as a JSON document."""
    return json.dumps(telemetry.snapshot(), indent=indent,
                      sort_keys=True) + "\n"


def parse_json(text: str) -> Dict[str, object]:
    """Parse a :func:`to_json` document back into a dict."""
    return json.loads(text)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
                .replace("\n", "\\n")


def _render_labels(names: Tuple[str, ...], values: Tuple[str, ...],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{_escape_label(v)}"'
             for n, v in list(zip(names, values)) + list(extra)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def to_prometheus(telemetry: Telemetry) -> str:
    """One kernel's metrics registry in Prometheus text exposition
    format (``# HELP`` / ``# TYPE`` headers, cumulative ``le``
    buckets)."""
    return registry_to_prometheus(telemetry.registry)


def registry_to_prometheus(registry: object) -> str:
    """Render any :class:`~repro.telemetry.metrics.MetricsRegistry`
    in Prometheus text exposition format — shared by the per-kernel
    exporter above and the fleet-wide aggregator
    (:class:`~repro.fleet.services.aggregate.FleetTelemetry`), so one
    scrape config consumes both."""
    lines: List[str] = []
    for family in registry.families():
        if len(family) == 0:
            continue
        lines.append(f"# HELP {family.name} {family.help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for label_values, inst in family.samples():
            base = _render_labels(family.label_names, label_values)
            if family.kind in ("counter", "gauge"):
                lines.append(f"{family.name}{base} {inst.value}")
                continue
            for bound, cumulative in inst.cumulative():
                le = "+Inf" if bound is None else str(bound)
                labels = _render_labels(family.label_names,
                                        label_values, (("le", le),))
                lines.append(
                    f"{family.name}_bucket{labels} {cumulative}")
            lines.append(f"{family.name}_sum{base} {inst.total}")
            lines.append(f"{family.name}_count{base} {inst.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse Prometheus text format into ``{sample_line_key: value}``
    where the key is the full series name including its label set
    (exactly as rendered).  Comment lines are skipped."""
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, raw_value = line.rpartition(" ")
        out[series] = float(raw_value)
    return out
