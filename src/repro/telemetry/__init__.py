"""Telemetry: the observability subsystem shared by both frameworks.

What the reproduction previously could not do — measure itself — lives
here.  The package mirrors the operational surface real kernels grew
around eBPF (``kernel.bpf_stats_enabled`` run stats, ``bpftool prog
profile`` style per-program numbers, drop counters, trace rings) and
makes the same surface available to the paper's proposed framework:

* :mod:`repro.telemetry.metrics` — counters, gauges, fixed-bucket
  histograms in a labeled registry;
* :mod:`repro.telemetry.stats` — per-program run and load-pipeline
  statistics;
* :mod:`repro.telemetry.trace` — the bounded structured-event ring
  with pluggable sinks and JSONL round-trip;
* :mod:`repro.telemetry.core` — the per-kernel hub wiring it all
  together behind the ``stats_enabled`` toggle;
* :mod:`repro.telemetry.export` — JSON and Prometheus text
  serialization (with parsers).
"""

from repro.telemetry.core import Telemetry
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.telemetry.stats import ProgStats, ProgStatsTable
from repro.telemetry.trace import TraceEvent, TraceRing, parse_jsonl
from repro.telemetry.export import (
    parse_json,
    parse_prometheus,
    to_json,
    to_prometheus,
)

__all__ = [
    "Telemetry",
    "Counter", "Gauge", "Histogram", "MetricFamily",
    "MetricsRegistry",
    "ProgStats", "ProgStatsTable",
    "TraceEvent", "TraceRing", "parse_jsonl",
    "parse_json", "parse_prometheus", "to_json", "to_prometheus",
]
