"""An XDP-style firewall in both frameworks (the paper's networking
motivation [23]), driven through the simulated data plane.

Policy: drop TCP packets to blocked ports and rate-limit by source
(every 4th packet from the noisy source is dropped).  The same policy
is implemented twice:

* eBPF — :func:`repro.net.programs.firewall_prog`: note the
  contortions — explicit packet bounds checks before every access, no
  real loops, verifier-friendly control flow.  It attaches to a
  simulated NIC and sees traffic the way real XDP does: batched NAPI
  polls off per-CPU RX queues, with PASS packets delivered through
  per-CPU ring buffers.
* SafeLang — the bounds checks live in the kcrate's ``load_*``
  methods and the rate limiter is a plain loop over state.

The run has two acts: a seeded load-generator profile pushed through
the data plane (verdict counters, tail latencies), then the canonical
hand-written traffic through *both* frameworks to assert they enforce
the same policy.

Run: ``python examples/packet_filter.py``
"""

import struct

from repro.core import SafeExtensionFramework
from repro.ebpf import BpfSubsystem, ProgType
from repro.kernel import Kernel
from repro.net import DataPlane, LoadGen
from repro.net.programs import BLOCKED_PORT, XDP_DROP, firewall_prog

#: packet model: [dst_port u16][src_id u8][payload...]
def make_packet(dst_port: int, src_id: int, payload: bytes) -> bytes:
    return struct.pack("<HB", dst_port, src_id) + payload


TRAFFIC = (
    [make_packet(80, 1, b"GET /")] * 5
    + [make_packet(BLOCKED_PORT, 2, b"telnet!")] * 3
    + [make_packet(443, 3, b"tls")] * 8
)

SAFELANG_FIREWALL = """
fn prog(ctx: XdpCtx) -> i64 {
    let port = match_u16(&ctx, 0);
    if port == 23 {
        count(1);
        return 1;   // drop: blocked port
    }
    match ctx.load_u8(2) {
        Some(src) => {
            if src == 3 {
                // rate limit: drop every 4th packet of source 3
                match map_lookup(0, 2) {
                    Some(seen) => {
                        map_update(0, 2, seen + 1);
                        if (seen + 1) & 3 == 0 {
                            count(1);
                            return 1;
                        }
                    },
                    None => { map_update(0, 2, 1); },
                }
            }
        },
        None => { },
    }
    count(0);
    return 2;       // pass
}

fn match_u16(ctx: &XdpCtx, off: u64) -> u64 {
    match ctx.load_u16(off) {
        Some(v) => { return v; },
        None => { return 0; },
    }
    return 0;
}

fn count(slot: u64) -> i64 {
    match map_lookup(0, slot) {
        Some(v) => { return map_update(0, slot, v + 1); },
        None => { return map_update(0, slot, 1); },
    }
    return 0;
}
"""


def build_plane(kernel: Kernel):
    """Stand up NIC + data plane with the firewall attached."""
    bpf = BpfSubsystem(kernel, engine="compiled")
    stats = bpf.create_map("array", key_size=4, value_size=8,
                           max_entries=4)
    plane = DataPlane(kernel, bpf)
    nic = plane.create_nic(1, "fw0", queue_depth=512)
    prog = bpf.load_program(firewall_prog(stats.map_fd),
                            ProgType.XDP, "ebpf_firewall")
    plane.attach(prog, nic)
    return bpf, plane, nic, prog


def safelang_firewall(kernel: Kernel):
    """The same policy in the proposed framework."""
    framework = SafeExtensionFramework(kernel)
    bpf = BpfSubsystem(kernel)
    stats = bpf.create_map("array", key_size=4, value_size=8,
                           max_entries=4)
    loaded = framework.install(SAFELANG_FIREWALL, "sl_firewall",
                               maps=[stats])
    return framework, loaded, stats


def main() -> None:
    kernel = Kernel()
    bpf, plane, nic, prog = build_plane(kernel)

    # act 1: a seeded profile through the batched pipeline
    gen = LoadGen(kernel, "heavy_hitter", seed=42)
    gen.drive(nic, 5000, plane=plane)
    plane.process_all()
    delivered = len(plane.drain())
    hist = kernel.telemetry.net_latency_histogram(nic.name)
    print(f"[dataplane] heavy_hitter x5000 via {nic.name}: "
          + ", ".join(f"{name}={count}" for name, count
                      in sorted(plane.verdicts.items()) if count))
    print(f"[dataplane] delivered {delivered} to userspace rings "
          f"({plane.delivery_drops} dropped at full rings); "
          f"latency p50={hist.quantile(0.5):.0f}ns "
          f"p99={hist.quantile(0.99):.0f}ns "
          f"p999={hist.quantile(0.999):.0f}ns "
          f"(program: {len(prog.insns)} insns, verified in "
          f"{prog.verifier_stats.insns_processed} steps)")

    # act 2: the canonical traffic through both frameworks
    verdict_base = dict(plane.verdicts)
    for pkt in TRAFFIC:
        nic.receive(pkt)
    plane.process_all()
    dropped = plane.verdicts["drop"] - verdict_base["drop"]
    print(f"[ebpf]     {len(TRAFFIC)} packets: {dropped} dropped, "
          f"{len(TRAFFIC) - dropped} passed")

    framework, loaded, sl_stats = safelang_firewall(kernel)
    results = [framework.run_on_packet(loaded, pkt).value
               for pkt in TRAFFIC]
    sl_dropped = sum(1 for v in results if v == XDP_DROP)
    drops = struct.unpack("<Q", sl_stats.read_value(1))[0]
    print(f"[safelang] {len(TRAFFIC)} packets: {sl_dropped} dropped, "
          f"{len(TRAFFIC) - sl_dropped} passed "
          f"(per-map drop counter: {drops})")

    assert dropped == sl_dropped, "the two implementations disagree"
    print(f"both frameworks enforce the same policy; "
          f"kernel healthy: {kernel.healthy}")


if __name__ == "__main__":
    main()
