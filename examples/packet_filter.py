"""An XDP-style firewall in both frameworks (the paper's networking
motivation [23]).

Policy: drop TCP packets to blocked ports, count per-verdict totals,
and rate-limit by source (every Nth packet from a noisy source is
dropped).  The same policy is implemented twice:

* eBPF — note the contortions: explicit packet bounds checks before
  every access, no real loops, verifier-friendly control flow;
* SafeLang — the bounds checks live in the kcrate's ``load_*``
  methods and the rate limiter is a plain loop over state.

Run: ``python examples/packet_filter.py``
"""

import struct

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R4, R5, R6, R10
from repro.kernel import Kernel

XDP_DROP, XDP_PASS = 1, 2
BLOCKED_PORT = 23  # telnet

#: packet model: [dst_port u16][src_id u8][payload...]
def make_packet(dst_port: int, src_id: int, payload: bytes) -> bytes:
    return struct.pack("<HB", dst_port, src_id) + payload


TRAFFIC = (
    [make_packet(80, 1, b"GET /")] * 5
    + [make_packet(BLOCKED_PORT, 2, b"telnet!")] * 3
    + [make_packet(443, 3, b"tls")] * 8
)


def ebpf_firewall(kernel: Kernel):
    """The policy as verifier-friendly bytecode."""
    bpf = BpfSubsystem(kernel)
    stats = bpf.create_map("array", key_size=4, value_size=8,
                           max_entries=4)

    asm = (Asm()
           # bounds-check 3 bytes of header before touching them
           .ldx(8, R2, R1, 8)            # data
           .ldx(8, R3, R1, 16)           # data_end
           .mov64_reg(R4, R2).alu64_imm("add", R4, 3)
           .jmp_reg("jgt", R4, R3, "pass")
           .ldx(2, R5, R2, 0)            # dst_port
           .jmp_imm("jeq", R5, BLOCKED_PORT, "drop")
           # rate limit src 3: count its packets, drop every 4th
           .ldx(1, R6, R2, 2)            # src_id
           .jmp_imm("jne", R6, 3, "pass")
           .st_imm(4, R10, -4, 2)        # stats slot 2: src-3 counter
           .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
           .ld_map_fd(R1, stats.map_fd)
           .call(ids.BPF_FUNC_map_lookup_elem)
           .jmp_imm("jeq", R0, 0, "pass")
           .ldx(8, R1, R0, 0)
           .alu64_imm("add", R1, 1)
           .stx(8, R0, 0, R1)
           .alu64_imm("and", R1, 3)
           .jmp_imm("jeq", R1, 0, "drop")
           .label("pass")
           .mov64_imm(R0, XDP_PASS)
           .exit_()
           .label("drop")
           .mov64_imm(R0, XDP_DROP)
           .exit_())

    prog = bpf.load_program(asm.program(), ProgType.XDP,
                            "ebpf_firewall")
    return bpf, prog, stats


SAFELANG_FIREWALL = """
fn prog(ctx: XdpCtx) -> i64 {
    let port = match_u16(&ctx, 0);
    if port == 23 {
        count(1);
        return 1;   // drop: blocked port
    }
    match ctx.load_u8(2) {
        Some(src) => {
            if src == 3 {
                // rate limit: drop every 4th packet of source 3
                match map_lookup(0, 2) {
                    Some(seen) => {
                        map_update(0, 2, seen + 1);
                        if (seen + 1) & 3 == 0 {
                            count(1);
                            return 1;
                        }
                    },
                    None => { map_update(0, 2, 1); },
                }
            }
        },
        None => { },
    }
    count(0);
    return 2;       // pass
}

fn match_u16(ctx: &XdpCtx, off: u64) -> u64 {
    match ctx.load_u16(off) {
        Some(v) => { return v; },
        None => { return 0; },
    }
    return 0;
}

fn count(slot: u64) -> i64 {
    match map_lookup(0, slot) {
        Some(v) => { return map_update(0, slot, v + 1); },
        None => { return map_update(0, slot, 1); },
    }
    return 0;
}
"""


def safelang_firewall(kernel: Kernel):
    """The same policy in the proposed framework."""
    framework = SafeExtensionFramework(kernel)
    bpf = BpfSubsystem(kernel)
    stats = bpf.create_map("array", key_size=4, value_size=8,
                           max_entries=4)
    loaded = framework.install(SAFELANG_FIREWALL, "sl_firewall",
                               maps=[stats])
    return framework, loaded, stats


def main() -> None:
    kernel = Kernel()

    bpf, prog, ebpf_stats = ebpf_firewall(kernel)
    verdicts = [bpf.run_on_packet(prog, pkt) for pkt in TRAFFIC]
    dropped = sum(1 for v in verdicts if v == XDP_DROP)
    print(f"[ebpf]     {len(TRAFFIC)} packets: {dropped} dropped, "
          f"{len(TRAFFIC) - dropped} passed "
          f"(program: {len(prog.insns)} insns, verified in "
          f"{prog.verifier_stats.insns_processed} steps)")

    framework, loaded, sl_stats = safelang_firewall(kernel)
    results = [framework.run_on_packet(loaded, pkt).value
               for pkt in TRAFFIC]
    sl_dropped = sum(1 for v in results if v == XDP_DROP)
    drops = struct.unpack("<Q", sl_stats.read_value(1))[0]
    print(f"[safelang] {len(TRAFFIC)} packets: {sl_dropped} dropped, "
          f"{len(TRAFFIC) - sl_dropped} passed "
          f"(per-map drop counter: {drops})")

    assert dropped == sl_dropped, "the two implementations disagree"
    print(f"both frameworks enforce the same policy; "
          f"kernel healthy: {kernel.healthy}")


if __name__ == "__main__":
    main()
