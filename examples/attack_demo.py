"""The paper's §2.2 attacks, end to end — and their fate under the
proposed framework.

1. **Safety**: a verified eBPF program crashes the kernel through
   ``bpf_sys_bpf`` (CVE-2022-2785).  The SafeLang equivalent cannot
   even express the bad input.
2. **Termination**: nested ``bpf_loop`` runs for weeks of virtual
   time under the RCU read lock (first stall warning at 21 s).  The
   SafeLang infinite loop is dead within its 1 ms watchdog budget.

Run: ``python examples/attack_demo.py``
"""

from repro.attacks import Outcome, build_corpus, run_case
from repro.core import SafeExtensionFramework
from repro.experiments import exp_crash_sys_bpf, exp_rcu_stall
from repro.kernel import Kernel


def crash_attack() -> None:
    print("=" * 70)
    print("Attack 1: kernel crash through a verified program (§2.2)")
    print("=" * 70)
    case = next(c for c in build_corpus()
                if c.case_id == "ebpf-sys-bpf-crash")
    kernel = Kernel()
    outcome = run_case(case, kernel=kernel)
    oops = kernel.log.last_oops()
    print(f"eBPF: program VERIFIED, then: {outcome.value}")
    print(f"  oops: {oops.category}: {oops.reason}")
    print("  dmesg tail:")
    for line in kernel.log.dmesg().splitlines()[-3:]:
        print(f"    {line}")
    print()
    result = exp_crash_sys_bpf.run()
    print(f"patched kernel: {result.patched_outcome.value}")
    print(f"proposed framework (wrapped interface): rc="
          f"{result.safelang_value}, kernel healthy="
          f"{result.safelang_kernel_healthy}")
    print()


def stall_attack() -> None:
    print("=" * 70)
    print("Attack 2: RCU stall through nested bpf_loop (§2.2)")
    print("=" * 70)
    result = exp_rcu_stall.run(sample_limit=32)
    print(f"runtime is linear in nr_loops: "
          f"{result.ns_per_iteration:.0f} ns/iteration "
          f"(max fit error {result.max_fit_error:.1%})")
    print(f"depth-2 nesting held the RCU read lock for "
          f"{result.long_run_seconds:,.0f} virtual seconds")
    print(f"first RCU stall warning after "
          f"{result.first_stall_after_s:.0f} s "
          f"({result.long_run_stalls} warnings total)")
    print("projected runtime by nesting depth:")
    for depth, years in result.projections:
        print(f"  depth {depth}: {years:.3g} years")
    print()
    print(f"proposed framework: watchdog terminated the same loop "
          f"after {result.safelang_runtime_ns / 1e6:.2f} ms; "
          f"RCU stalls: {result.safelang_stalls}; kernel healthy: "
          f"{result.safelang_kernel_healthy}")
    print()


def scoreboard() -> None:
    print("=" * 70)
    print("Full attack-corpus scoreboard (buggy-era kernel)")
    print("=" * 70)
    for case in build_corpus():
        outcome = run_case(case)
        print(f"  {case.framework:8s} {case.case_id:24s} "
              f"{outcome.value}")
    print()


def main() -> None:
    crash_attack()
    stall_attack()
    scoreboard()


if __name__ == "__main__":
    main()
