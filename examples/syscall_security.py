"""Programmable syscall security (the paper's security motivation
[26] — seccomp-style filtering as a kernel extension).

A simulated syscall dispatcher consults an extension for every
syscall: the event record carries the syscall number and first
argument; the extension returns 0 (allow) or 1 (deny).  Policy: deny
``ptrace`` outright, deny ``open`` of "secret" fds, rate-count
everything per syscall number.

Implemented in both frameworks on one kernel; both must produce the
same verdict sequence.

Run: ``python examples/syscall_security.py``
"""

import struct

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R4, R5, R10
from repro.kernel import Kernel

SYS_READ, SYS_OPEN, SYS_PTRACE, SYS_CLONE = 0, 2, 101, 56
SECRET_FD = 777

WORKLOAD = [
    (SYS_READ, 3), (SYS_OPEN, 4), (SYS_OPEN, SECRET_FD),
    (SYS_PTRACE, 1234), (SYS_CLONE, 0), (SYS_READ, 5),
    (SYS_PTRACE, 1), (SYS_OPEN, SECRET_FD),
]


def event(nr: int, arg: int) -> bytes:
    """A syscall event record: [nr u16][arg u32]."""
    return struct.pack("<HI", nr, arg)


def ebpf_filter(kernel: Kernel):
    """The policy as bytecode attached to the syscall entry hook."""
    bpf = BpfSubsystem(kernel)
    counts = bpf.create_map("hash", key_size=4, value_size=8,
                            max_entries=64)
    # an eBPF pain point this program has to engineer around: after
    # every helper call the scratch registers r1-r5 are dead,
    # including the ctx pointer — so ctx is stashed in callee-saved r6
    # up front, the way real programs do.
    from repro.ebpf.isa import R6, R7
    asm = (Asm()
           .mov64_reg(R6, R1)             # ctx survives helper calls
           .ldx(8, R2, R6, 8)
           .ldx(8, R3, R6, 16)
           .mov64_reg(R5, R2).alu64_imm("add", R5, 6)
           .jmp_reg("jgt", R5, R3, "allow")
           .ldx(2, R7, R2, 0)             # syscall nr (callee-saved)
           # count it: lookup, then atomic increment (or first insert)
           .stx(4, R10, -4, R7)
           .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
           .ld_map_fd(R1, counts.map_fd)
           .call(ids.BPF_FUNC_map_lookup_elem)
           .jmp_imm("jne", R0, 0, "bump")
           .st_imm(8, R10, -16, 1)        # miss: insert count = 1
           .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
           .mov64_reg(R3, R10).alu64_imm("add", R3, -16)
           .ld_map_fd(R1, counts.map_fd)
           .mov64_imm(R4, 0)
           .call(ids.BPF_FUNC_map_update_elem)
           .ja("counted")
           .label("bump")
           .mov64_imm(R2, 1)
           .atomic_add(8, R0, 0, R2)      # hit: atomic increment
           .label("counted")
           # deny ptrace
           .jmp_imm("jeq", R7, SYS_PTRACE, "deny")
           # deny open(SECRET_FD)
           .jmp_imm("jne", R7, SYS_OPEN, "allow")
           .ldx(8, R2, R6, 8)
           .ldx(8, R3, R6, 16)
           .mov64_reg(R5, R2).alu64_imm("add", R5, 6)
           .jmp_reg("jgt", R5, R3, "allow")
           .ldx(4, R5, R2, 2)             # arg
           .jmp_imm("jeq", R5, SECRET_FD, "deny")
           .label("allow")
           .mov64_imm(R0, 0)
           .exit_()
           .label("deny")
           .mov64_imm(R0, 1)
           .exit_()
           .program())
    prog = bpf.load_program(asm, ProgType.SOCKET_FILTER, "seccomp")
    return bpf, prog, counts


SAFELANG_FILTER = """
fn prog(ctx: XdpCtx) -> i64 {
    let mut nr: u64 = 0;
    match ctx.load_u16(0) {
        Some(v) => { nr = v; },
        None => { return 0; },
    }
    count(nr);
    if nr == 101 { return 1; }          // ptrace: always deny
    if nr == 2 {                         // open: check the fd arg
        match ctx.load_u32(2) {
            Some(fd) => { if fd == 777 { return 1; } },
            None => { },
        }
    }
    return 0;
}

fn count(nr: u64) -> i64 {
    match map_lookup(0, nr) {
        Some(v) => { return map_update(0, nr, v + 1); },
        None => { return map_update(0, nr, 1); },
    }
    return 0;
}
"""


def safelang_filter(kernel: Kernel):
    framework = SafeExtensionFramework(kernel)
    bpf = BpfSubsystem(kernel)
    counts = bpf.create_map("hash", key_size=4, value_size=8,
                            max_entries=64)
    loaded = framework.install(SAFELANG_FILTER, "sl_seccomp",
                               maps=[counts])
    return framework, loaded, counts


def main() -> None:
    kernel = Kernel()
    bpf, ebpf_prog, ebpf_counts = ebpf_filter(kernel)
    framework, sl_prog, sl_counts = safelang_filter(kernel)

    names = {SYS_READ: "read", SYS_OPEN: "open",
             SYS_PTRACE: "ptrace", SYS_CLONE: "clone"}
    print(f"{'syscall':10s} {'arg':>6s}  ebpf      safelang")
    agreements = 0
    for nr, arg in WORKLOAD:
        record = event(nr, arg)
        ebpf_verdict = bpf.run_on_packet(ebpf_prog, record)
        sl_verdict = framework.run_on_packet(sl_prog, record).value
        mark = "DENY " if ebpf_verdict else "allow"
        sl_mark = "DENY " if sl_verdict else "allow"
        print(f"{names[nr]:10s} {arg:6d}  {mark}     {sl_mark}")
        agreements += ebpf_verdict == sl_verdict
    assert agreements == len(WORKLOAD), "frameworks disagree!"

    print()
    for counts, label in ((ebpf_counts, "ebpf"),
                          (sl_counts, "safelang")):
        per_syscall = {}
        for nr in names:
            value = counts.read_value(struct.pack("<I", nr))
            if value is not None:
                per_syscall[names[nr]] = struct.unpack("<Q", value)[0]
        print(f"[{label}] syscalls observed: {per_syscall}")
    print(f"kernel healthy: {kernel.healthy}")


if __name__ == "__main__":
    main()
