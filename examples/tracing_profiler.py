"""A kprobe-style tracing profiler (the paper's observability
motivation [21]).

Hooks a simulated syscall entry/exit pair and records per-task latency
histograms.  The SafeLang version leans on exactly the features §3
promises: an RAII task handle (refcount held precisely while used),
per-task storage through a never-NULL reference, string parsing with
``parse_i64`` instead of ``bpf_strtol``, and a pool-backed ``Vec`` for
the histogram (§4's dynamic allocation).

Run: ``python examples/tracing_profiler.py``
"""

import struct

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R4, R6, R10
from repro.kernel import Kernel

NSEC_PER_USEC = 1_000


def ebpf_profiler(kernel: Kernel):
    """Entry/exit pair: store t0 in a hash map keyed by pid, compute
    the delta at exit and bump a log2 histogram bucket."""
    bpf = BpfSubsystem(kernel)
    starts = bpf.create_map("hash", key_size=4, value_size=8,
                            max_entries=64)
    hist = bpf.create_map("array", key_size=4, value_size=8,
                          max_entries=16)

    entry = (Asm()
             .call(ids.BPF_FUNC_get_current_pid_tgid)
             .alu64_imm("and", R0, 0xFFFF)
             .stx(4, R10, -4, R0)          # key = pid
             .call(ids.BPF_FUNC_ktime_get_ns)
             .stx(8, R10, -16, R0)         # value = now
             .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
             .mov64_reg(R3, R10).alu64_imm("add", R3, -16)
             .ld_map_fd(R1, starts.map_fd)
             .mov64_imm(R4, 0)
             .call(ids.BPF_FUNC_map_update_elem)
             .mov64_imm(R0, 0)
             .exit_())

    exit_prog = (Asm()
                 .call(ids.BPF_FUNC_get_current_pid_tgid)
                 .alu64_imm("and", R0, 0xFFFF)
                 .stx(4, R10, -4, R0)
                 .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
                 .ld_map_fd(R1, starts.map_fd)
                 .call(ids.BPF_FUNC_map_lookup_elem)
                 .jmp_imm("jne", R0, 0, "have")
                 .mov64_imm(R0, 0).exit_()
                 .label("have")
                 .ldx(8, R6, R0, 0)            # t0
                 .call(ids.BPF_FUNC_ktime_get_ns)
                 .alu64_reg("sub", R0, R6)     # delta
                 .alu64_imm("rsh", R0, 10)     # ~usec
                 # crude log2 bucket: clamp to [0, 15]
                 .jmp_imm("jle", R0, 15, "bucket")
                 .mov64_imm(R0, 15)
                 .label("bucket")
                 .stx(4, R10, -8, R0)
                 .mov64_reg(R2, R10).alu64_imm("add", R2, -8)
                 .ld_map_fd(R1, hist.map_fd)
                 .call(ids.BPF_FUNC_map_lookup_elem)
                 .jmp_imm("jne", R0, 0, "bump")
                 .mov64_imm(R0, 0).exit_()
                 .label("bump")
                 .ldx(8, R1, R0, 0)
                 .alu64_imm("add", R1, 1)
                 .stx(8, R0, 0, R1)
                 .mov64_imm(R0, 0)
                 .exit_())

    entry_loaded = bpf.load_program(entry.program(), ProgType.KPROBE,
                                    "lat_entry")
    exit_loaded = bpf.load_program(exit_prog.program(),
                                   ProgType.KPROBE, "lat_exit")
    return bpf, entry_loaded, exit_loaded, hist


SAFELANG_PROFILER = """
fn prog(ctx: XdpCtx) -> i64 {
    // RAII: the task reference is held exactly while profiling
    let task = current_task();
    let mut t0: u64 = 0;
    match task_storage_get(&task, 1) {
        Some(v) => { t0 = v; },
        None => { },
    }
    let now = ktime_ns();
    if t0 == 0 {
        task_storage_set(&task, 1, now);
        return 0;
    }
    task_storage_set(&task, 1, 0);
    let delta_us = (now - t0) >> 10;
    let mut bucket = delta_us;
    if bucket > 15 { bucket = 15; }
    match map_lookup(0, bucket) {
        Some(v) => { map_update(0, bucket, v + 1); },
        None => { map_update(0, bucket, 1); },
    }
    return 0;
}
"""


def safelang_profiler(kernel: Kernel):
    """Same profiler on the proposed framework (one program handles
    both entry and exit via task-local state)."""
    framework = SafeExtensionFramework(kernel)
    bpf = BpfSubsystem(kernel)
    hist = bpf.create_map("array", key_size=4, value_size=8,
                          max_entries=16)
    storage = bpf.create_map("task_storage", value_size=8)
    loaded = framework.install(SAFELANG_PROFILER, "sl_profiler",
                               maps=[hist, storage])
    return framework, loaded, hist


def simulate_syscalls(kernel: Kernel, fire_entry, fire_exit,
                      durations_ns) -> None:
    """Drive entry/exit pairs with controlled latencies."""
    for duration in durations_ns:
        fire_entry()
        kernel.clock.advance(duration)
        fire_exit()


def render_histogram(hist) -> str:
    rows = []
    for bucket in range(16):
        count = struct.unpack("<Q", hist.read_value(bucket))[0]
        if count:
            rows.append(f"    ~{1 << bucket:5d} us: "
                        f"{'#' * count} ({count})")
    return "\n".join(rows) if rows else "    (empty)"


def main() -> None:
    durations = [3_000, 5_000, 900_000, 2_000_000, 7_000,
                 12_000_000, 4_000]

    kernel = Kernel()
    bpf, entry, exit_prog, hist = ebpf_profiler(kernel)
    simulate_syscalls(
        kernel,
        lambda: bpf.run_on_current_task(entry),
        lambda: bpf.run_on_current_task(exit_prog),
        durations)
    print("[ebpf] latency histogram (2 programs, hash map rendezvous):")
    print(render_histogram(hist))

    kernel2 = Kernel()
    framework, loaded, sl_hist = safelang_profiler(kernel2)
    simulate_syscalls(
        kernel2,
        lambda: framework.run_on_packet(loaded, b""),
        lambda: framework.run_on_packet(loaded, b""),
        durations)
    print("[safelang] latency histogram (1 program, task storage, "
          "RAII task handle):")
    print(render_histogram(sl_hist))

    leaks = kernel2.refs.outstanding_for("safelang:sl_profiler")
    print(f"outstanding task references after "
          f"{2 * len(durations)} runs: {len(leaks)}")


if __name__ == "__main__":
    main()
