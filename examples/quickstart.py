"""Quickstart: the same extension in both frameworks.

Boots a simulated kernel, then counts packets two ways:

1. as an **eBPF program** — assembled bytecode, checked by the
   in-kernel verifier, executed by the bytecode VM;
2. as a **SafeLang extension** (the paper's proposal) — checked and
   signed by the trusted toolchain, loaded after signature validation
   only, executed under watchdog/cleanup protection.

Run: ``python examples/quickstart.py``
"""

import struct

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R10
from repro.kernel import Kernel

PACKETS = [b"GET / HTTP/1.1", b"\x16\x03\x01 TLS hello", b"ping", b"pong"]


def ebpf_packet_counter(kernel: Kernel) -> None:
    """Count packets in a map, the eBPF way."""
    bpf = BpfSubsystem(kernel)
    counter = bpf.create_map("array", key_size=4, value_size=8,
                             max_entries=1)

    asm = (Asm()
           .st_imm(4, R10, -4, 0)                     # key = 0
           .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
           .ld_map_fd(R1, counter.map_fd)
           .call(ids.BPF_FUNC_map_lookup_elem)
           .jmp_imm("jne", R0, 0, "hit")
           .mov64_imm(R0, 2).exit_()                  # XDP_PASS
           .label("hit")
           .ldx(8, R1, R0, 0)
           .alu64_imm("add", R1, 1)
           .stx(8, R0, 0, R1)                         # *value += 1
           .mov64_imm(R0, 2)
           .exit_())

    prog = bpf.load_program(asm.program(), ProgType.XDP, "quickstart")
    print(f"[ebpf] verified in "
          f"{prog.verifier_stats.insns_processed} verifier steps, "
          f"{prog.verifier_stats.states_explored} states stored")
    for payload in PACKETS:
        verdict = bpf.run_on_packet(prog, payload)
        assert verdict == 2
    count = struct.unpack("<Q", counter.read_value(0))[0]
    print(f"[ebpf] counted {count} packets")


def safelang_packet_counter(kernel: Kernel) -> None:
    """Count packets the proposed-framework way."""
    framework = SafeExtensionFramework(kernel)
    bpf = BpfSubsystem(kernel)
    counter = bpf.create_map("array", key_size=4, value_size=8,
                             max_entries=1)

    source = """
    fn prog(ctx: XdpCtx) -> i64 {
        match map_lookup(0, 0) {
            Some(count) => { map_update(0, 0, count + 1); },
            None => { map_update(0, 0, 1); },
        }
        return 2;   // pass
    }
    """
    compiled = framework.compile(source, "quickstart")
    print(f"[safelang] toolchain checked+signed in "
          f"{compiled.compile_time_s * 1e3:.2f} ms "
          f"(key {compiled.key_id}, digest {compiled.image_digest()})")
    loaded = framework.load(compiled, maps=[counter])
    print(f"[safelang] kernel validated the signature and fixed up "
          f"{len(loaded.symbols)} kcrate symbols in "
          f"{loaded.load_time_s * 1e3:.2f} ms — no in-kernel analysis")
    for payload in PACKETS:
        result = framework.run(loaded,
                               ctx=_ctx_for(framework, payload))
        assert result.value == 2
    count = struct.unpack("<Q", counter.read_value(0))[0]
    print(f"[safelang] counted {count} packets")


def _ctx_for(framework: SafeExtensionFramework, payload: bytes):
    from repro.core.kcrate.resources import KernelResource
    skb = framework.kernel.create_skb(payload)
    return KernelResource("xdp_ctx", "skb", lambda: None, payload=skb)


def main() -> None:
    kernel = Kernel()
    ebpf_packet_counter(kernel)
    safelang_packet_counter(kernel)
    print(f"kernel healthy after both runs: {kernel.healthy}")


if __name__ == "__main__":
    main()
