"""BMC-style in-kernel request caching (the paper's storage
motivation [20]: "Accelerating Memcached using Safe In-kernel Caching
and Pre-stack Processing").

A GET/SET protocol rides our packet model:

    SET: 'S' [key u32] [value u32]
    GET: 'G' [key u32]

The extension intercepts packets at the XDP-style hook: SETs populate
an in-kernel cache map; GETs that hit the cache are answered without
ever reaching "userspace" (verdict DROP after writing the answer back
into the packet); misses PASS up the stack.  Userspace (the Python
driver here) serves misses and measures the offload rate.

Implemented in both frameworks; each must produce the same hit pattern
and cached answers.

Run: ``python examples/kernel_cache.py``
"""

import random
import struct

from repro.core import SafeExtensionFramework
from repro.ebpf import Asm, BpfSubsystem, ProgType
from repro.ebpf.helpers import ids
from repro.ebpf.isa import R0, R1, R2, R3, R4, R6, R7, R10
from repro.kernel import Kernel

XDP_DROP, XDP_PASS = 1, 2
OP_GET, OP_SET = ord("G"), ord("S")


def get_packet(key: int) -> bytes:
    return struct.pack("<BI", OP_GET, key) + b"\x00\x00\x00\x00"


def set_packet(key: int, value: int) -> bytes:
    return struct.pack("<BII", OP_SET, key, value)


def ebpf_cache(kernel: Kernel):
    """The cache in bytecode.

    Note the eBPF reality the paper's §2.1 complains about: nine
    bounds checks and register shuffles for what is logically four
    lines of code."""
    bpf = BpfSubsystem(kernel)
    cache = bpf.create_map("hash", key_size=4, value_size=4,
                           max_entries=64)
    asm = (Asm()
           .mov64_reg(R6, R1)                 # ctx in callee-saved
           .ldx(8, R2, R6, 8)                 # data
           .ldx(8, R3, R6, 16)                # data_end
           .mov64_reg(R4, R2).alu64_imm("add", R4, 9)
           .jmp_reg("jgt", R4, R3, "pass")    # need 9 bytes
           .ldx(1, R7, R2, 0)                 # opcode
           .ldx(4, R0, R2, 1)                 # key
           .stx(4, R10, -4, R0)               # key -> stack
           .jmp_imm("jeq", R7, OP_SET, "set")
           .jmp_imm("jne", R7, OP_GET, "pass")
           # GET: lookup
           .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
           .ld_map_fd(R1, cache.map_fd)
           .call(ids.BPF_FUNC_map_lookup_elem)
           .jmp_imm("jeq", R0, 0, "pass")     # miss -> userspace
           # hit: write the value into the reply bytes (off 5..9)
           .ldx(4, R7, R0, 0)                 # cached value
           .ldx(8, R2, R6, 8)
           .ldx(8, R3, R6, 16)
           .mov64_reg(R4, R2).alu64_imm("add", R4, 9)
           .jmp_reg("jgt", R4, R3, "pass")
           .stx(4, R2, 5, R7)
           .mov64_imm(R0, XDP_DROP)           # answered in kernel
           .exit_()
           .label("set")
           # SET: value from packet -> stack -> map
           .ldx(8, R2, R6, 8)
           .ldx(8, R3, R6, 16)
           .mov64_reg(R4, R2).alu64_imm("add", R4, 9)
           .jmp_reg("jgt", R4, R3, "pass")
           .ldx(4, R0, R2, 5)
           .stx(4, R10, -8, R0)
           .mov64_reg(R2, R10).alu64_imm("add", R2, -4)
           .mov64_reg(R3, R10).alu64_imm("add", R3, -8)
           .ld_map_fd(R1, cache.map_fd)
           .mov64_imm(R4, 0)
           .call(ids.BPF_FUNC_map_update_elem)
           .mov64_imm(R0, XDP_DROP)
           .exit_()
           .label("pass")
           .mov64_imm(R0, XDP_PASS)
           .exit_())
    prog = bpf.load_program(asm.program(), ProgType.XDP, "kcache")
    return bpf, prog, cache


SAFELANG_CACHE = """
fn prog(ctx: XdpCtx) -> i64 {
    let mut op: u64 = 0;
    match ctx.load_u8(0) {
        Some(b) => { op = b; },
        None => { return 2; },
    }
    let mut key: u64 = 0;
    match ctx.load_u32(1) {
        Some(k) => { key = k; },
        None => { return 2; },
    }
    if op == 83 {              // 'S': populate the cache
        match ctx.load_u32(5) {
            Some(value) => {
                map_update(0, key, value);
                return 1;
            },
            None => { return 2; },
        }
    }
    if op == 71 {              // 'G': serve from the cache if we can
        match map_lookup(0, key) {
            Some(value) => {
                store_u32(&ctx, 5, value);
                return 1;      // answered in kernel
            },
            None => { return 2; },   // miss: up to userspace
        }
    }
    return 2;
}

fn store_u32(ctx: &XdpCtx, off: u64, value: u64) {
    // byte-wise store through the safe API
    ctx.store_u8(off, value & 255);
    ctx.store_u8(off + 1, (value >> 8) & 255);
    ctx.store_u8(off + 2, (value >> 16) & 255);
    ctx.store_u8(off + 3, (value >> 24) & 255);
}
"""


def safelang_cache(kernel: Kernel):
    framework = SafeExtensionFramework(kernel)
    bpf = BpfSubsystem(kernel)
    cache = bpf.create_map("hash", key_size=4, value_size=4,
                           max_entries=64)
    loaded = framework.install(SAFELANG_CACHE, "sl_kcache",
                               maps=[cache])
    return framework, loaded, cache


def drive(run_packet, reply_value, workload):
    """Run the workload; returns (kernel hits, userspace serves)."""
    hits = misses = 0
    backing = {}
    for op, key, value in workload:
        if op == "set":
            verdict, __ = run_packet(set_packet(key, value))
            backing[key] = value
            assert verdict == XDP_DROP
            continue
        verdict, answered = run_packet(get_packet(key))
        if verdict == XDP_DROP:
            hits += 1
            assert answered == backing[key], (key, answered)
        else:
            misses += 1
    return hits, misses


def make_workload(rng: random.Random, n: int = 200):
    ops = []
    hot_keys = list(range(8))
    for __ in range(n):
        if rng.random() < 0.25:
            ops.append(("set", rng.choice(hot_keys),
                        rng.randint(1, 10**6)))
        else:
            # zipf-ish: mostly hot keys, some cold (always missing)
            key = rng.choice(hot_keys) if rng.random() < 0.8 \
                else rng.randint(100, 200)
            ops.append(("get", key, 0))
    return ops


def main() -> None:
    rng = random.Random(42)
    workload = make_workload(rng)

    kernel = Kernel()
    bpf, prog, __cache = ebpf_cache(kernel)

    def run_ebpf(packet: bytes):
        skb = kernel.create_skb(packet)
        verdict = bpf.vm.run(prog, skb.address)
        answered = struct.unpack(
            "<I", kernel.mem.read(skb.data + 5, 4))[0]
        return verdict, answered

    ebpf_hits, ebpf_misses = drive(run_ebpf, None, workload)
    total_gets = ebpf_hits + ebpf_misses
    print(f"[ebpf]     {total_gets} GETs: {ebpf_hits} served "
          f"in-kernel ({ebpf_hits / total_gets:.0%}), "
          f"{ebpf_misses} up to userspace "
          f"(program: {len(prog.insns)} insns)")

    kernel2 = Kernel()
    framework, loaded, __c2 = safelang_cache(kernel2)

    def run_sl(packet: bytes):
        from repro.core.kcrate.resources import KernelResource
        skb = kernel2.create_skb(packet)
        ctx = KernelResource("xdp_ctx", "skb", lambda: None,
                             payload=skb)
        verdict = framework.run(loaded, ctx).value
        answered = struct.unpack(
            "<I", kernel2.mem.read(skb.data + 5, 4))[0]
        return verdict, answered

    sl_hits, sl_misses = drive(run_sl, None, workload)
    print(f"[safelang] {total_gets} GETs: {sl_hits} served in-kernel "
          f"({sl_hits / total_gets:.0%}), {sl_misses} up to userspace")

    assert (ebpf_hits, ebpf_misses) == (sl_hits, sl_misses), \
        "cache behaviour diverged"
    print(f"identical hit patterns; kernels healthy: "
          f"{kernel.healthy and kernel2.healthy}")


if __name__ == "__main__":
    main()
