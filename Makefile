# Convenience targets; everything runs with PYTHONPATH=src.

.PHONY: test bench bench-all

# Tier-1 suite (must stay green).
test:
	PYTHONPATH=src python -m pytest -x -q

# Interpreter/load-cache throughput plus telemetry overhead. Writes
# BENCH_throughput.json (fast-path speedup ratio gated at 80% of
# benchmarks/throughput_baseline.json) and BENCH_obs_overhead.json
# (stats-off dispatch ratio gated at 95% of
# benchmarks/obs_overhead_baseline.json — the "telemetry is free when
# off" contract).
bench:
	PYTHONPATH=src python -m pytest benchmarks/test_bench_throughput.py \
		benchmarks/test_bench_obs_overhead.py -q

# Every paper figure/table benchmark.
bench-all:
	PYTHONPATH=src python -m pytest benchmarks -q
