# Convenience targets; everything runs with PYTHONPATH=src.
# Beyond `make test`: `make coverage` for a line-coverage gate and
# `make chaos` for the fault-injection corpus replay.

.PHONY: test bench bench-net bench-all coverage chaos recover race fleet fleet-chaos

# Tier-1 suite (must stay green).
test:
	PYTHONPATH=src python -m pytest -x -q

# Tier-1 suite under pytest-cov with a line floor.  The environment
# ships without pytest-cov on purpose (no runtime deps); when it is
# absent this target explains itself instead of failing.
coverage:
	@PYTHONPATH=src python -c "import pytest_cov" 2>/dev/null \
		&& PYTHONPATH=src python -m pytest -x -q \
			--cov=repro --cov-report=term --cov-fail-under=80 \
		|| echo "coverage: pytest-cov not installed; skipping" \
			"(pip install pytest-cov to enable)"

# Replay the attack corpus under every canned fault schedule, check
# the isolation invariants, and prove the replay is a pure function
# of the seed by running it twice.
chaos:
	PYTHONPATH=src python -m repro.faultinject.chaos \
		--check-determinism

# Same corpus replay with the recovery supervisor enabled: every case
# must leave the kernel alive (oopses contained, taint clear), plus a
# per-schedule demonstration that a crashing program is quarantined
# and auto-reloaded back to health — deterministically per seed.
recover:
	PYTHONPATH=src python -m repro.faultinject.chaos \
		--recover --check-determinism

# Deterministic race hunt: explore seeded multi-CPU interleavings
# until both planted concurrency bugs (lock-discipline, RCU
# use-after-grace) are found with replayable seeds, then prove the
# race-free corpus clean (zero detector findings) and bit-identical
# across nproc=1/2/4.  REPRO_RACE_SMOKE=1 shrinks the budgets for CI.
race:
	PYTHONPATH=src python -m repro.faultinject.interleave

# Staged-rollout acceptance demo: a 200-node simulated fleet must
# take the good release to 100%, halt the planted bad release at its
# canary wave and roll every node back, and produce bit-identical
# rollout signatures + telemetry exports across two invocations of
# the same seed.  FLEET_NODES/FLEET_SEED override the defaults.
fleet:
	PYTHONPATH=src python -m repro.fleet.demo \
		--nodes $(or $(FLEET_NODES),200) \
		--seed $(or $(FLEET_SEED),7)

# Fleet under fire: both canonical releases rolled out under every
# control-channel chaos schedule (drops, dups, delays past the RPC
# deadline, partitions, crashing node agents), plus a crash/resume
# leg per pair — the orchestrator is killed at journal-append
# boundaries and resumed until the rollout lands, and the resumed
# report signature must be bit-identical to the uninterrupted run's.
# Runs twice to prove the whole harness is a pure function of the
# seed.  REPRO_FLEET_SMOKE=1 shrinks the fleet and schedules for CI.
fleet-chaos:
	PYTHONPATH=src python -m repro.fleet.chaos --check-determinism

# Interpreter/load-cache throughput plus telemetry overhead. Writes
# BENCH_throughput.json (fast-path speedup ratio gated at 80% of
# benchmarks/throughput_baseline.json) and BENCH_obs_overhead.json
# (stats-off dispatch ratio gated at 95% of
# benchmarks/obs_overhead_baseline.json — the "telemetry is free when
# off" contract).
bench:
	PYTHONPATH=src python -m pytest benchmarks/test_bench_throughput.py \
		benchmarks/test_bench_obs_overhead.py -q

# Data-plane packet rates: >= 1M seeded packets through the batched
# XDP pipeline, two runs per tier.  Writes BENCH_dataplane.json and
# gates on compiled-strictly-fastest, per-tier bit-identical
# signatures, and pps ratios at 80% of
# benchmarks/dataplane_baseline.json.  REPRO_BENCH_SMOKE=1 shrinks
# the legs for CI.
bench-net:
	PYTHONPATH=src python -m pytest benchmarks/test_bench_dataplane.py -q

# Every paper figure/table benchmark.
bench-all:
	PYTHONPATH=src python -m pytest benchmarks -q
