# Convenience targets; everything runs with PYTHONPATH=src.

.PHONY: test bench bench-all

# Tier-1 suite (must stay green).
test:
	PYTHONPATH=src python -m pytest -x -q

# Interpreter/load-cache throughput. Writes BENCH_throughput.json and
# FAILS if the fast-path speedup ratio regresses more than 20% below
# benchmarks/throughput_baseline.json.
bench:
	PYTHONPATH=src python -m pytest benchmarks/test_bench_throughput.py -q

# Every paper figure/table benchmark.
bench-all:
	PYTHONPATH=src python -m pytest benchmarks -q
